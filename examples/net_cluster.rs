//! FDA over real TCP sockets — and the proof it changes nothing.
//!
//! Runs the same tiny LeNet job twice: once on the sequential in-process
//! simulator, once as a K-worker TCP cluster over loopback (workers here
//! are threads speaking the real socket protocol; `fda_node demo
//! --workers 4` runs the identical loop with OS processes). The two
//! trajectories must agree bit-for-bit, and the bytes measured on the
//! sockets must equal the bytes the simulator charges.
//!
//! Run with: `cargo run --release --example net_cluster`

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::strategy::Strategy;
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::net::run_with_thread_workers;

fn main() {
    let spec = JobSpec {
        cluster: ClusterConfig::small_test(4),
        fda: FdaConfig::sketch_auto(0.02),
        codec: fda::comm::CodecSpec::Dense,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps: 12,
        synth: SynthSpec {
            n_train: 480,
            n_test: 120,
            ..SynthSpec::synth_mnist()
        },
        task_name: "net-example".to_string(),
    };

    println!("== TCP cluster (K = 4, loopback) ==");
    let report = run_with_thread_workers(&spec).expect("net run");
    println!("syncs: {} / {} steps", report.syncs, spec.steps);
    println!(
        "decisions: {}",
        report
            .decisions
            .iter()
            .map(|d| if *d { '1' } else { '0' })
            .collect::<String>()
    );
    println!(
        "charged bytes (simulator convention): {}",
        report.charged_bytes
    );
    println!(
        "measured payload bytes on the wire:   {}",
        report.measured_payload_bytes
    );
    println!(
        "raw socket bytes (frames + control):  {} tx / {} rx",
        report.raw_tx_bytes, report.raw_rx_bytes
    );

    println!("\n== sequential simulator, same job ==");
    let task = spec.synth.generate(&spec.task_name);
    let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
    let decisions: Vec<bool> = (0..spec.steps).map(|_| sim.step().synced).collect();
    println!("syncs: {} / {} steps", sim.syncs(), spec.steps);
    println!("charged bytes: {}", sim.comm_bytes());

    assert_eq!(report.decisions, decisions, "sync schedules must agree");
    assert_eq!(report.charged_bytes, sim.comm_bytes());
    assert_eq!(report.measured_payload_bytes, report.charged_bytes);
    for k in 0..spec.cluster.workers {
        assert_eq!(
            report.worker_params[k],
            sim.cluster().worker(k).params(),
            "worker {k} replica diverged"
        );
    }
    println!("\nTCP run is bit-identical to the simulator; measured == charged.");
}
