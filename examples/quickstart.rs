//! Quickstart: train one model with FDA and compare against Synchronous.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the five-minute tour of the public API: build a task, configure
//! a cluster, pick a strategy, run to an accuracy target, read the two
//! costs the paper reports (communication bytes, in-parallel steps).

use fda::core::baselines::Synchronous;
use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::harness::{run_to_target, RunConfig};
use fda::core::strategy::Strategy;
use fda::data::synth;
use fda::data::Partition;
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn main() {
    // 1. A task: the MNIST stand-in (synthetic; see DESIGN.md §4).
    let task = synth::synth_mnist();

    // 2. A cluster: K = 6 workers, LeNet-5 analogue, IID shards, Adam.
    let cluster = ClusterConfig {
        model: ModelId::Lenet5,
        workers: 6,
        batch_size: 32,
        optimizer: OptimizerKind::paper_adam(),
        partition: Partition::Iid,
        seed: 42,
        parallel: false,
    };

    // 3. The stopping rule: run until 90% test accuracy (or 3000 steps).
    let run = RunConfig::to_target(0.90, 3_000);

    // 4a. FDA (Linear variant) with a variance threshold Θ.
    let mut fda = Fda::new(FdaConfig::linear(0.5), cluster.clone(), &task);
    let fda_result = run_to_target(&mut fda, &task, &run);

    // 4b. The Synchronous baseline (sync after every step).
    let mut sync = Synchronous::new(cluster, &task);
    let sync_result = run_to_target(&mut sync, &task, &run);

    // 5. Compare.
    println!("target test accuracy: 0.90 on {}", task.name);
    for r in [&fda_result, &sync_result] {
        println!(
            "  {:<12} reached={} steps={:>5} syncs={:>5} comm={:>12} bytes",
            r.strategy, r.reached, r.steps, r.syncs, r.comm_bytes
        );
    }
    let savings = sync_result.comm_bytes as f64 / fda_result.comm_bytes.max(1) as f64;
    println!(
        "\nFDA transmitted {savings:.1}x less data than Synchronous \
         (paper reports 1-2 orders of magnitude at scale)."
    );
    assert!(fda.syncs() <= sync.syncs());
}
