//! Non-IID robustness demo (the paper's §4.3 "FDA is resilient to data
//! heterogeneity").
//!
//! ```sh
//! cargo run --release --example heterogeneity
//! ```
//!
//! Runs LinearFDA under the paper's three data distributions — IID,
//! Non-IID 60% (sorted fraction), Non-IID Label "0" — and prints the cost
//! of reaching the same accuracy target under each. The paper's finding:
//! FDA's costs barely move across heterogeneity settings.

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::harness::{run_to_target, RunConfig};
use fda::data::partition::label_skew;
use fda::data::synth;
use fda::data::Partition;
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn main() {
    let task = synth::synth_mnist();
    let partitions = [
        Partition::Iid,
        Partition::NonIidPercent(0.6),
        Partition::NonIidLabel(0),
    ];

    println!("LinearFDA, K = 6, Θ = 0.5, target accuracy 0.88\n");
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>14}",
        "distribution", "skew", "steps", "syncs", "comm (bytes)"
    );
    for partition in partitions {
        let cluster = ClusterConfig {
            model: ModelId::Lenet5,
            workers: 6,
            batch_size: 32,
            optimizer: OptimizerKind::paper_adam(),
            partition,
            seed: 42,
            parallel: false,
        };
        // Report the induced label skew so readers can see the settings
        // really differ.
        let shards = partition.shards(&task.train, 6, 42);
        let skew = label_skew(&task.train, &shards);

        let mut fda = Fda::new(FdaConfig::linear(0.5), cluster, &task);
        let r = run_to_target(&mut fda, &task, &RunConfig::to_target(0.88, 4_000));
        println!(
            "{:<22} {:>10.3} {:>8} {:>8} {:>14}{}",
            partition.label(),
            skew,
            r.steps,
            r.syncs,
            r.comm_bytes,
            if r.reached { "" } else { "  (cap hit)" }
        );
    }
    println!(
        "\nExpected shape (paper Fig. 3): costs stay within the same\n\
         ballpark across all three distributions."
    );
}
