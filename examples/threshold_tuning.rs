//! Θ tuning demo (the paper's §4.3 "Dependence on Θ" and "Choice of Θ").
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```
//!
//! Sweeps the variance threshold and prints the communication/computation
//! trade-off plus the modelled wall-time under the paper's three
//! deployment regimes (FL / Balanced / HPC), showing why bandwidth-starved
//! settings favour larger Θ.

use fda::comm::Environment;
use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::harness::{run_to_target, RunConfig};
use fda::data::synth;
use fda::data::Partition;
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn main() {
    let task = synth::synth_mnist();
    let thetas = [0.05f32, 0.15, 0.5, 1.5, 5.0];
    let envs = Environment::all();

    println!("SketchFDA, K = 6, target accuracy 0.88\n");
    println!(
        "{:>7} {:>7} {:>7} {:>13} {:>11} {:>11} {:>11}",
        "Θ", "steps", "syncs", "comm (bytes)", "t_FL (s)", "t_Bal (s)", "t_HPC (s)"
    );
    for theta in thetas {
        let cluster = ClusterConfig {
            model: ModelId::Lenet5,
            workers: 6,
            batch_size: 32,
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            seed: 7,
            parallel: false,
        };
        let mut fda = Fda::new(FdaConfig::sketch(theta), cluster, &task);
        let r = run_to_target(&mut fda, &task, &RunConfig::to_target(0.88, 4_000));
        if !r.reached {
            println!("{theta:>7} did not converge within the step cap — beyond the workable range");
            continue;
        }
        let per_worker = r.comm_bytes / 6;
        let msgs = r.steps + r.syncs;
        let times: Vec<f64> = envs
            .iter()
            .map(|e| e.wall_time(per_worker, r.steps, msgs))
            .collect();
        println!(
            "{theta:>7} {:>7} {:>7} {:>13} {:>11.2} {:>11.2} {:>11.2}",
            r.steps, r.syncs, r.comm_bytes, times[0], times[1], times[2]
        );
    }
    println!(
        "\nExpected shape (paper Fig. 8-12): communication falls as Θ rises,\n\
         computation rises mildly; the FL regime's optimum sits at larger Θ\n\
         than the HPC regime's."
    );
}
