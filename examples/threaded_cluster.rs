//! FDA on real OS threads — one thread per worker, rendezvous AllReduce.
//!
//! ```sh
//! cargo run --release --example threaded_cluster
//! ```
//!
//! The figure benches use the sequential simulator (byte accounting is
//! identical either way); this example runs the same protocol with true
//! concurrency to show nothing depends on the simulator: workers exchange
//! real state buffers, agree on every synchronization decision from the
//! shared averaged state, and end bit-identical after each sync.

use fda::core::threaded::{run_threaded_fda, ThreadedFdaConfig, ThreadedVariant};
use fda::data::{synth, Partition};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn main() {
    let task = synth::synth_mnist();
    for (variant, label) in [
        (ThreadedVariant::Linear, "LinearFDA"),
        (ThreadedVariant::Sketch, "SketchFDA"),
    ] {
        let config = ThreadedFdaConfig {
            model: ModelId::Lenet5,
            workers: 4,
            batch_size: 32,
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            theta: 0.05,
            variant,
            steps: 400,
            seed: 42,
        };
        let report = run_threaded_fda(config, &task);
        let mut eval = ModelId::Lenet5.build(0, 0);
        eval.load_params(&report.final_params);
        let acc = eval.evaluate_batched(task.test.features(), task.test.labels(), 256);
        println!(
            "{label:<10} 4 threads x 400 steps: syncs={:<3} comm={:>9} bytes  test acc={acc:.3}",
            report.syncs, report.comm_bytes
        );
    }
    println!(
        "\nBoth variants ran the Algorithm-1 loop over genuinely concurrent\n\
         workers (scoped OS threads + rendezvous AllReduce), with consistent\n\
         sync decisions and no coordinator."
    );
}
