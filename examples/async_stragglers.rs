//! Asynchronous FDA with stragglers (the paper's §3.3).
//!
//! ```sh
//! cargo run --release --example async_stragglers
//! ```
//!
//! Demonstrates the coordinator-based asynchronous mode: workers run at
//! different speeds, push their tiny local states as they finish steps,
//! and the coordinator triggers synchronization from the most recent
//! states. Fast workers are not blocked by slow ones between syncs.

use fda::core::async_fda::AsyncFda;
use fda::core::cluster::ClusterConfig;
use fda::core::monitor::LinearMonitor;
use fda::data::synth;
use fda::data::Partition;
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn main() {
    let task = synth::synth_mnist();
    for (label, spread) in [
        ("homogeneous (spread 0.0)", 0.0),
        ("stragglers (spread 2.0)", 2.0),
    ] {
        let cluster = ClusterConfig {
            model: ModelId::Lenet5,
            workers: 5,
            batch_size: 32,
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            seed: 21,
            parallel: false,
        };
        let mut runner = AsyncFda::new(Box::new(LinearMonitor::new()), 0.5, spread, cluster, &task);
        let report = runner.run(120);
        println!("--- {label} ---");
        println!("  steps per worker: {:?}", report.steps_per_worker);
        println!("  syncs: {}", report.syncs);
        println!("  comm:  {} bytes", report.comm_bytes);
        println!(
            "  virtual time: {:.1} (slowest worker's clock)",
            report.virtual_time
        );
        println!("  final model variance: {:.4}\n", report.final_variance);
    }
    println!(
        "Expected shape: with stragglers, per-worker step counts diverge\n\
         (fast workers keep learning) while the sync count stays modest —\n\
         the paper's motivation for the asynchronous mode."
    );
}
