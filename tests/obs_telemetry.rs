//! Telemetry acceptance suite for the `fda_obs` round-event stream.
//!
//! Three claims:
//!
//! 1. A K = 4 **spawned-process** chaos run with `--telemetry` emits one
//!    round event per FDA round whose per-kind byte fields *reconcile*:
//!    summed over rounds they equal the coordinator's cumulative measured
//!    total, which equals the charged total — and the drop records match
//!    the `NetReport` membership buckets exactly.
//! 2. The sequential simulator emits a **schema-identical** stream for the
//!    same job: same keys, same order, same JSON types per event kind —
//!    only the `source` field differs.
//! 3. `fda_node demo` prints the schema's one-line `"run"` record on
//!    stdout; this is the parse-don't-regex regression test for the run
//!    report.

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::strategy::Strategy;
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::net::{
    run_chaos_with_spawned_workers_telemetry, FaultAction, FaultPlan, MemberEvent, RoundPolicy,
};
use fda::obs::{read_jsonl, Json, JsonlWriter, RoundEvent, RunEvent, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn spec(k: usize, steps: u32) -> JobSpec {
    JobSpec {
        cluster: ClusterConfig {
            workers: k,
            ..ClusterConfig::small_test(k)
        },
        fda: FdaConfig::linear(0.01),
        codec: fda::comm::CodecSpec::Dense,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps,
        synth: SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        },
        task_name: "obs-telemetry".to_string(),
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fda_obs_{}_{name}.jsonl", std::process::id()))
}

/// Splits a parsed stream into (round events, the single trailing run
/// event), failing on anything malformed.
fn split_stream(lines: &[Json]) -> (Vec<RoundEvent>, RunEvent) {
    assert!(lines.len() >= 2, "stream needs rounds + a run summary");
    let (last, rounds) = lines.split_last().expect("non-empty");
    let rounds = rounds
        .iter()
        .map(|l| RoundEvent::from_json(l).expect("round event parses"))
        .collect();
    let run = RunEvent::from_json(last).expect("run event parses");
    (rounds, run)
}

/// K = 4 spawned `fda_node` processes, one scripted death, telemetry on:
/// the JSONL byte ledger must reconcile with the coordinator's report and
/// the drop records must match the membership buckets.
#[test]
fn k4_faulted_process_run_round_events_reconcile() {
    let spec = spec(4, 8);
    let node_bin = Path::new(env!("CARGO_BIN_EXE_fda_node"));
    let plan = FaultPlan::new().fault(2, FaultAction::ExitBeforeState(4));
    let policy = RoundPolicy {
        min_workers: 2,
        deposit_timeout: Duration::from_secs(10),
        admissions: Vec::new(),
    };
    let path = temp_path("k4_faulted");

    let report = run_chaos_with_spawned_workers_telemetry(
        &spec,
        node_bin,
        &plan,
        policy,
        Duration::from_secs(60),
        Some(&path),
    )
    .expect("chaos run survives one death");

    let lines = read_jsonl(&path).expect("telemetry stream readable");
    std::fs::remove_file(&path).ok();
    let (rounds, run) = split_stream(&lines);
    assert_eq!(rounds.len(), spec.steps as usize, "one event per round");

    // Byte reconciliation: per-round frame-kind bytes sum to the
    // cumulative measured total, which equals the charged total.
    let summed: u64 = rounds.iter().map(|r| r.state_bytes + r.model_bytes).sum();
    let last = rounds.last().expect("rounds");
    assert_eq!(
        summed, last.measured_bytes,
        "per-round bytes must sum to the ledger"
    );
    assert_eq!(
        last.measured_bytes, last.charged_bytes,
        "measured != charged"
    );
    assert_eq!(run.charged_bytes, report.charged_bytes);
    assert_eq!(run.measured_payload_bytes, report.measured_payload_bytes);
    assert_eq!(summed, report.measured_payload_bytes, "JSONL != NetReport");
    assert!(run.measured_equals_charged());

    // Cumulative fields are monotone and rounds are 1-based in order.
    for (i, pair) in rounds.windows(2).enumerate() {
        assert_eq!(pair[0].round, i as u32 + 1);
        assert!(pair[1].charged_bytes >= pair[0].charged_bytes);
        assert!(pair[1].measured_bytes >= pair[0].measured_bytes);
    }

    // Drop records match the NetReport membership buckets exactly.
    let report_drops: Vec<(u32, u32, String)> = report
        .events
        .iter()
        .filter_map(|e| match e.event {
            MemberEvent::Dropped(r) => Some((e.round, e.worker, r.as_str().to_string())),
            MemberEvent::Joined { .. } => None,
        })
        .collect();
    let jsonl_drops: Vec<(u32, u32, String)> = rounds
        .iter()
        .flat_map(|r| {
            r.drops
                .iter()
                .map(move |d| (r.round - 1, d.worker, d.reason.clone()))
        })
        .collect();
    assert_eq!(jsonl_drops, report_drops, "drop buckets diverged");
    assert!(
        jsonl_drops.iter().any(|(_, w, _)| *w == 2),
        "the scripted death of worker 2 must be recorded"
    );

    // The faulted round carries the shrunken quorum and a bumped epoch.
    assert_eq!(rounds[0].alive, 4);
    assert_eq!(rounds.last().expect("rounds").alive, 3);
    assert!(rounds.last().expect("rounds").epoch > rounds[0].epoch);

    // Deposit latencies: one pair per alive worker, ids in range.
    for r in &rounds {
        assert_eq!(r.deposit_us.len() as u32, r.alive);
        assert!(r.deposit_us.iter().all(|(w, _)| *w < 4));
    }

    // Run summary mirrors the report.
    assert_eq!(run.source, "net");
    assert_eq!(run.survivors, report.survivors);
    assert_eq!(run.syncs, report.syncs);
    assert_eq!(run.membership.len(), report.events.len());
    let decisions: String = report
        .decisions
        .iter()
        .map(|&d| if d { '1' } else { '0' })
        .collect();
    assert_eq!(run.decisions, decisions);
}

/// The simulator's stream for the same job must be schema-identical to
/// the net stream: same keys in the same order per event kind, and its
/// own ledger must reconcile (measured == charged by construction).
#[test]
fn simulator_stream_is_schema_identical_to_net_stream() {
    let spec = spec(4, 8);

    // Net side: thread workers keep this test cheap; schema is what the
    // spawned test above already validated.
    let net_path = temp_path("schema_net");
    fda::net::run_with_thread_workers_telemetry(&spec, Some(&net_path)).expect("net run");
    let net_lines = read_jsonl(&net_path).expect("net stream");
    std::fs::remove_file(&net_path).ok();

    // Sim side: the same job stepped through the sequential simulator.
    let sim_path = temp_path("schema_sim");
    let task = spec.synth.generate(&spec.task_name);
    let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
    let writer = JsonlWriter::create(&sim_path).expect("sim sink");
    assert!(sim.set_telemetry(Some(writer)), "Fda accepts telemetry");
    for _ in 0..spec.steps {
        sim.step();
    }
    assert!(sim.set_telemetry(None), "detach flushes the run summary");
    let sim_lines = read_jsonl(&sim_path).expect("sim stream");
    std::fs::remove_file(&sim_path).ok();

    assert_eq!(sim_lines.len(), net_lines.len(), "stream lengths diverge");
    let keys = |v: &Json| -> Vec<String> {
        v.as_obj()
            .expect("events are objects")
            .iter()
            .map(|(k, _)| k.clone())
            .collect()
    };
    let type_tag = |v: &Json| -> &'static str {
        match v {
            Json::Null => "null-or-num", // non-finite floats serialize as null
            Json::Bool(_) => "bool",
            Json::Num(_) => "null-or-num",
            Json::Str(_) => "str",
            Json::Arr(_) => "arr",
            Json::Obj(_) => "obj",
        }
    };
    for (i, (s, n)) in sim_lines.iter().zip(&net_lines).enumerate() {
        assert_eq!(keys(s), keys(n), "line {i}: key set/order diverged");
        for ((key, sv), (_, nv)) in s.as_obj().unwrap().iter().zip(n.as_obj().unwrap()) {
            if key == "source" {
                assert_eq!(sv.as_str(), Some("sim"));
                assert_eq!(nv.as_str(), Some("net"));
                continue;
            }
            assert_eq!(
                type_tag(sv),
                type_tag(nv),
                "line {i} key {key:?}: JSON type diverged"
            );
        }
    }

    // The sim ledger reconciles on its own terms.
    let (rounds, run) = split_stream(&sim_lines);
    assert_eq!(rounds.len(), spec.steps as usize);
    let summed: u64 = rounds.iter().map(|r| r.state_bytes + r.model_bytes).sum();
    assert_eq!(summed, run.charged_bytes, "sim per-round bytes must sum");
    assert!(
        run.measured_equals_charged(),
        "sim measures what it charges"
    );
    assert_eq!(run.charged_bytes, sim.comm_bytes(), "ledger != simulator");
    for r in &rounds {
        assert_eq!(r.source, "sim");
        assert_eq!(r.epoch, 1, "sim has no membership churn");
        assert_eq!(r.alive, 4);
        assert!(r.deposit_us.is_empty() && r.drops.is_empty());
    }
}

/// `fda_node demo` prints the one-line `"run"` record on stdout — parse
/// it (never regex it) and check the load-bearing fields.
#[test]
fn node_demo_prints_parseable_run_report() {
    let node_bin = env!("CARGO_BIN_EXE_fda_node");
    let tele_path = temp_path("demo");
    let out = std::process::Command::new(node_bin)
        .args([
            "demo",
            "--workers",
            "2",
            "--steps",
            "4",
            "--variant",
            "linear",
            "--theta",
            "0.01",
            "--train",
            "240",
            "--test",
            "80",
            "--telemetry",
        ])
        .arg(&tele_path)
        .args(["--metrics-addr", "127.0.0.1:0"])
        .output()
        .expect("fda_node demo runs");
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let line = stdout.lines().last().expect("a report line");
    let parsed = fda::obs::json::parse(line).expect("report is valid JSON");
    assert_eq!(parsed.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION));
    let run = RunEvent::from_json(&parsed).expect("report is a run event");
    assert_eq!(run.source, "net");
    assert_eq!(run.workers, 2);
    assert_eq!(run.steps, 4);
    assert_eq!(run.variant, "LinearFDA");
    assert_eq!(run.codec, "dense-f32");
    assert_eq!(run.decisions.len(), 4);
    assert!(run.measured_equals_charged());
    assert_eq!(run.survivors, vec![0, 1]);
    assert_eq!(run.membership.len(), 2, "two joins, no drops");

    // The demo's --telemetry stream reconciles too.
    let lines = read_jsonl(&tele_path).expect("demo telemetry stream");
    std::fs::remove_file(&tele_path).ok();
    let (rounds, tele_run) = split_stream(&lines);
    assert_eq!(rounds.len(), 4);
    let summed: u64 = rounds.iter().map(|r| r.state_bytes + r.model_bytes).sum();
    assert_eq!(summed, tele_run.measured_payload_bytes);
    assert_eq!(
        tele_run.to_json().to_string(),
        line,
        "stdout == stream tail"
    );
}
