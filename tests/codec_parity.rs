//! Codec parity suite: the `net_parity` bit-identity claim, parameterized
//! over the uplink payload codec.
//!
//! For every codec in {dense-f32, uniform-8bit, top-k, drift-mask}, a
//! K-process TCP run over loopback must retrace the sequential simulator
//! bit-for-bit — sync decisions, variance-estimate bits, final replica
//! bits — and the payload bytes *measured* on the sockets must equal the
//! encoded bytes the simulator *charges*, exactly. This works because sim
//! and socket share one lossy path by construction: both sides reconstruct
//! states and model uploads via `decode(encode(v))` with the same codec,
//! so a lossy codec changes the trajectory identically on both sides.
//!
//! Hang guard: socket read timeouts on both ends; CI adds an outer
//! `timeout` fence.

use fda::comm::CodecSpec;
use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig, FdaVariant};
use fda::core::strategy::Strategy;
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::net::run_with_spawned_workers;
use std::path::Path;

const STEPS: u32 = 8;

fn spec(k: usize, codec: CodecSpec) -> JobSpec {
    JobSpec {
        cluster: ClusterConfig {
            workers: k,
            ..ClusterConfig::small_test(k)
        },
        // Sketch states give every codec a nontrivial summary to compress
        // (LinearFDA's one-float summary would make top-k degenerate), and
        // Θ = 0.01 forces model AllReduces inside the horizon so the
        // coded model path is exercised too.
        fda: FdaConfig::sketch_auto(0.01),
        codec,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps: STEPS,
        synth: SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        },
        task_name: "codec-parity".to_string(),
    }
}

/// The codec matrix. Parameters are sized for the scaled LeNet sketch
/// summary: top-k keeps a strict subset of coordinates, drift-mask's
/// threshold sits inside the observed drift-summary magnitude range so it
/// genuinely masks (neither all nor nothing).
fn codecs() -> Vec<CodecSpec> {
    vec![
        CodecSpec::Dense,
        CodecSpec::Uniform8 { chunk: 256 },
        CodecSpec::TopK { k: 64 },
        CodecSpec::DriftMask { threshold: 0.2 },
    ]
}

/// Runs the job sequentially and as a K-process TCP cluster under the
/// same codec, then asserts bit-identity and measured == charged.
/// Returns the run's charged bytes for cross-codec comparisons.
fn assert_codec_parity(k: usize, codec: CodecSpec) -> u64 {
    let spec = spec(k, codec);
    let node_bin = Path::new(env!("CARGO_BIN_EXE_fda_node"));
    let report = run_with_spawned_workers(&spec, node_bin)
        .unwrap_or_else(|e| panic!("k={k} codec={}: {e}", codec.name()));

    let task = spec.synth.generate(&spec.task_name);
    let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
    sim.set_codec(codec);
    let mut decisions = Vec::new();
    let mut estimates = Vec::new();
    for _ in 0..STEPS {
        let out = sim.step();
        decisions.push(out.synced);
        estimates.push(out.variance_estimate.expect("fda reports estimates"));
    }

    let case = format!("k={k} codec={}", codec.name());
    assert_eq!(
        report.decisions, decisions,
        "{case}: sync schedule diverged"
    );
    for (step, (a, b)) in report.estimates.iter().zip(&estimates).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{case}: estimate diverged at step {step}"
        );
    }
    assert_eq!(report.syncs, sim.syncs(), "{case}: sync count diverged");
    for w in 0..k {
        assert_eq!(
            report.worker_params[w],
            sim.cluster().worker(w).params(),
            "{case}: worker {w} final replica diverged"
        );
    }
    assert_eq!(
        report.charged_bytes,
        sim.comm_bytes(),
        "{case}: TCP charged accounting != simulator"
    );
    assert_eq!(
        report.measured_payload_bytes, report.charged_bytes,
        "{case}: bytes measured on the socket != bytes charged"
    );
    assert!(
        report.decisions.iter().any(|&d| d),
        "{case}: horizon should exercise at least one coded model AllReduce"
    );
    report.charged_bytes
}

/// The acceptance matrix at K = 4: every codec, spawned OS processes.
#[test]
fn k4_processes_match_simulator_for_all_codecs() {
    let mut charged = Vec::new();
    for codec in codecs() {
        charged.push((codec, assert_codec_parity(4, codec)));
    }
    // Compression must actually compress: every non-dense codec moves
    // strictly fewer accounted bytes than dense over the same horizon.
    let dense = charged[0].1;
    for (codec, bytes) in &charged[1..] {
        assert!(
            *bytes < dense,
            "codec {} charged {bytes} >= dense {dense}",
            codec.name()
        );
    }
}

/// K coverage at K = 2 for every codec.
#[test]
fn k2_processes_match_simulator_for_all_codecs() {
    for codec in codecs() {
        assert_codec_parity(2, codec);
    }
}

/// A dense-coded job must produce the exact trajectory and accounting of
/// a pre-codec run: the codec field's `Dense` default is byte-invisible.
#[test]
fn dense_codec_is_byte_invisible() {
    let with_default = spec(2, CodecSpec::default());
    let explicit = spec(2, CodecSpec::Dense);
    assert_eq!(
        fda::core::wire::encode_job(&with_default),
        fda::core::wire::encode_job(&explicit)
    );
    // The exact-variant sim run with a Dense codec charges exactly what
    // the historical dense path charges (same fast path, by construction).
    let task = with_default.synth.generate(&with_default.task_name);
    let mut plain = Fda::new(
        FdaConfig {
            variant: FdaVariant::Exact,
            theta: 0.01,
        },
        with_default.cluster.clone(),
        &task,
    );
    let mut coded = Fda::new(
        FdaConfig {
            variant: FdaVariant::Exact,
            theta: 0.01,
        },
        with_default.cluster.clone(),
        &task,
    );
    coded.set_codec(CodecSpec::Dense);
    for _ in 0..4 {
        let a = plain.step();
        let b = coded.step();
        assert_eq!(a.synced, b.synced);
        assert_eq!(
            a.variance_estimate.map(f32::to_bits),
            b.variance_estimate.map(f32::to_bits)
        );
    }
    assert_eq!(plain.comm_bytes(), coded.comm_bytes());
}
