//! Cross-crate integration tests: the FDA protocol end-to-end over the
//! full substrate stack (nn + optim + data + sketch + comm).

use fda::core::baselines::{FedOpt, LocalSgd, Synchronous};
use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig, FdaVariant};
use fda::core::harness::{run_to_target, RunConfig};
use fda::core::strategy::Strategy;
use fda::data::synth::SynthSpec;
use fda::data::{Partition, TaskData};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn small_task() -> TaskData {
    SynthSpec {
        n_train: 600,
        n_test: 200,
        ..SynthSpec::synth_mnist()
    }
    .generate("it-task")
}

fn cluster(k: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        model: ModelId::Lenet5,
        workers: k,
        batch_size: 16,
        optimizer: OptimizerKind::paper_adam(),
        partition: Partition::Iid,
        seed,
        parallel: false,
    }
}

#[test]
fn all_strategies_reach_a_moderate_target() {
    let task = small_task();
    let cfg = RunConfig::to_target(0.70, 2_500);
    let mut results = Vec::new();
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(Fda::new(FdaConfig::linear(0.5), cluster(4, 1), &task)),
        Box::new(Fda::new(FdaConfig::sketch_auto(0.5), cluster(4, 1), &task)),
        Box::new(Synchronous::new(cluster(4, 1), &task)),
        Box::new(LocalSgd::new(8, cluster(4, 1), &task)),
        Box::new(FedOpt::fedadam(1, cluster(4, 1), &task)),
    ];
    for mut s in strategies {
        let r = run_to_target(s.as_mut(), &task, &cfg);
        assert!(
            r.reached,
            "{} failed to reach 0.70 in 2500 steps (best {:.3})",
            r.strategy, r.best_test_acc
        );
        results.push(r);
    }
    // FDA variants must beat Synchronous on communication.
    let comm = |name: &str| {
        results
            .iter()
            .find(|r| r.strategy == name)
            .map(|r| r.comm_bytes)
            .expect("strategy ran")
    };
    assert!(comm("LinearFDA") < comm("Synchronous") / 3);
    assert!(comm("SketchFDA") < comm("Synchronous") / 3);
}

#[test]
fn theta_zero_fda_syncs_like_synchronous() {
    let task = small_task();
    let mut fda = Fda::new(FdaConfig::linear(0.0), cluster(3, 2), &task);
    let mut sync = Synchronous::new(cluster(3, 2), &task);
    for _ in 0..20 {
        fda.step();
        sync.step();
    }
    assert_eq!(fda.syncs(), sync.syncs(), "Θ=0 syncs every step");
    // FDA pays the extra monitoring traffic on top of the model payloads:
    // 20 steps × 3 workers × 8 bytes of linear state.
    assert_eq!(fda.comm_bytes(), sync.comm_bytes() + 20 * 3 * 8);
    // Identical sync schedule + identical seeds ⇒ identical trajectories.
    assert_eq!(
        fda.cluster().worker(0).params(),
        sync.cluster().worker(0).params()
    );
}

#[test]
fn sketch_syncs_at_most_linear_syncs() {
    // SketchFDA estimates variance more tightly than LinearFDA, so at the
    // same Θ it should synchronize no more often (paper §3.3 and Main
    // Finding 3).
    let task = small_task();
    let theta = 0.3;
    let mut lin = Fda::new(FdaConfig::linear(theta), cluster(4, 3), &task);
    let mut sk = Fda::new(FdaConfig::sketch_auto(theta), cluster(4, 3), &task);
    for _ in 0..300 {
        lin.step();
        sk.step();
    }
    assert!(
        sk.syncs() <= lin.syncs(),
        "sketch ({}) should sync no more than linear ({})",
        sk.syncs(),
        lin.syncs()
    );
}

#[test]
fn exact_monitor_preserves_round_invariant_strictly() {
    let task = small_task();
    let theta = 0.4;
    let mut fda = Fda::new(
        FdaConfig {
            variant: FdaVariant::Exact,
            theta,
        },
        cluster(4, 4),
        &task,
    );
    for _ in 0..120 {
        let out = fda.step();
        let var = fda.cluster().exact_variance();
        if out.synced {
            assert!(var < 1e-9, "variance must be 0 right after sync");
        } else {
            assert!(
                var <= theta * 1.02 + 1e-6,
                "RI violated: Var = {var} > Θ = {theta}"
            );
        }
    }
}

#[test]
fn monitors_overestimate_variance_throughout_training() {
    let task = small_task();
    let mut lin = Fda::new(FdaConfig::linear(0.35), cluster(3, 5), &task);
    for _ in 0..150 {
        let out = lin.step();
        let est = out.variance_estimate.unwrap();
        let truth = lin.cluster().exact_variance();
        // After a sync, variance is 0 and the estimate refers to pre-sync
        // drifts; only check the no-sync steps.
        if !out.synced {
            assert!(
                est >= truth - 1e-3 * (1.0 + truth),
                "H = {est} < Var = {truth}"
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let task = small_task();
    let run = RunConfig::to_target(0.65, 1_200);
    let r1 = {
        let mut s = Fda::new(FdaConfig::sketch_auto(0.4), cluster(3, 6), &task);
        run_to_target(&mut s, &task, &run)
    };
    let r2 = {
        let mut s = Fda::new(FdaConfig::sketch_auto(0.4), cluster(3, 6), &task);
        run_to_target(&mut s, &task, &run)
    };
    assert_eq!(r1.steps, r2.steps);
    assert_eq!(r1.comm_bytes, r2.comm_bytes);
    assert_eq!(r1.syncs, r2.syncs);
    assert_eq!(r1.best_test_acc, r2.best_test_acc);
}

#[test]
fn non_iid_partitions_still_converge_with_fda() {
    let task = small_task();
    for partition in [Partition::NonIidPercent(0.6), Partition::NonIidLabel(0)] {
        let cc = ClusterConfig {
            partition,
            ..cluster(4, 7)
        };
        let mut fda = Fda::new(FdaConfig::linear(0.5), cc, &task);
        let r = run_to_target(&mut fda, &task, &RunConfig::to_target(0.65, 2_500));
        assert!(
            r.reached,
            "{} should converge under {} (best {:.3})",
            r.strategy,
            partition.label(),
            r.best_test_acc
        );
    }
}

#[test]
fn single_worker_cluster_degenerates_gracefully() {
    let task = small_task();
    let mut fda = Fda::new(FdaConfig::linear(0.5), cluster(1, 8), &task);
    for _ in 0..10 {
        let out = fda.step();
        // One worker: variance is identically zero, so never sync.
        assert!(!out.synced);
    }
    // And communication is free (nothing leaves the node).
    assert_eq!(fda.comm_bytes(), 0);
}

#[test]
fn fedopt_syncs_once_per_local_epoch() {
    let task = small_task();
    let mut fed = FedOpt::fedavgm(1, cluster(4, 9), &task);
    let spr = fed.steps_per_round();
    // Shards: 600 samples / 4 workers = 150; batch 16 ⇒ ceil = 10 steps.
    assert_eq!(spr, 10);
    for _ in 0..3 * spr {
        fed.step();
    }
    assert_eq!(fed.syncs(), 3);
}

/// Acceptance invariant for the parallel simulator mode: with scoped-thread
/// worker stepping enabled, FDA must make the *identical* sequence of
/// synchronization decisions (and end in the identical model state) as the
/// deterministic sequential mode — workers are independent between
/// AllReduce points and all RNG streams are per-worker.
#[test]
fn parallel_mode_preserves_sync_decision_sequence() {
    let task = small_task();
    for (tag, cfg) in [
        ("linear", FdaConfig::linear(0.05)),
        ("sketch", FdaConfig::sketch_auto(0.05)),
    ] {
        let mut seq_fda = Fda::new(cfg, cluster(4, 9), &task);
        let par_cc = ClusterConfig {
            parallel: true,
            ..cluster(4, 9)
        };
        let mut par_fda = Fda::new(cfg, par_cc, &task);
        let mut seq_decisions = Vec::new();
        let mut par_decisions = Vec::new();
        for _ in 0..60 {
            seq_decisions.push(seq_fda.step().synced);
            par_decisions.push(par_fda.step().synced);
        }
        assert_eq!(
            seq_decisions, par_decisions,
            "{tag}: sync-decision sequences diverged between modes"
        );
        assert!(
            seq_decisions.iter().any(|&s| s),
            "{tag}: test should exercise at least one sync"
        );
        assert_eq!(
            seq_fda.cluster().comm_bytes(),
            par_fda.cluster().comm_bytes(),
            "{tag}: byte accounting diverged"
        );
        for k in 0..4 {
            assert_eq!(
                seq_fda.cluster().worker(k).params(),
                par_fda.cluster().worker(k).params(),
                "{tag}: worker {k} final params diverged"
            );
        }
    }
}
