//! Pool-determinism property suite: the persistent-worker-pool runtime
//! must be **bit-identical** to the sequential simulator — models, step
//! statistics, variance estimates, byte accounting, and therefore the
//! entire synchronization-decision sequence — across every FDA monitor
//! variant and worker count.
//!
//! Like `prop_invariants.rs`, this uses the workspace's deterministic RNG
//! as a case generator instead of an external property-testing crate:
//! every case carries its seed in the failure message, so a counterexample
//! reproduces exactly.

use fda::core::baselines::{LocalSgd, Synchronous};
use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig, FdaVariant};
use fda::core::strategy::Strategy;
use fda::data::synth::SynthSpec;
use fda::data::{Partition, TaskData};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

fn tiny_task() -> TaskData {
    SynthSpec {
        n_train: 280,
        n_test: 80,
        ..SynthSpec::synth_mnist()
    }
    .generate("pool-det")
}

fn cluster(k: usize, seed: u64, parallel: bool) -> ClusterConfig {
    ClusterConfig {
        model: ModelId::Lenet5,
        workers: k,
        batch_size: 16,
        optimizer: OptimizerKind::paper_adam(),
        partition: Partition::Iid,
        seed,
        parallel,
    }
}

fn variants() -> Vec<(&'static str, FdaConfig)> {
    // Θ small enough that syncs happen within the horizon, so the test
    // exercises the monitor phase, the state reduction AND the pooled
    // model AllReduce for every variant.
    vec![
        ("sketch", FdaConfig::sketch_auto(0.01)),
        ("linear", FdaConfig::linear(0.01)),
        (
            "exact",
            FdaConfig {
                variant: FdaVariant::Exact,
                theta: 0.01,
            },
        ),
    ]
}

/// The core property: for K ∈ {1, 2, 4, 7} and every monitor variant, the
/// pooled runtime reproduces the sequential run bit-for-bit at every step.
#[test]
fn pooled_fda_is_bit_identical_across_k_and_variants() {
    let task = tiny_task();
    let steps = 10;
    for k in [1usize, 2, 4, 7] {
        for (tag, cfg) in variants() {
            let seed = 0xB00F + k as u64;
            let mut seq = Fda::new(cfg, cluster(k, seed, false), &task);
            let mut par = Fda::new(cfg, cluster(k, seed, true), &task);
            let mut decisions = Vec::new();
            for step in 0..steps {
                let s = seq.step();
                let p = par.step();
                let case = format!("k={k} variant={tag} seed={seed} step={step}");
                assert_eq!(s.synced, p.synced, "{case}: sync decision diverged");
                assert_eq!(
                    s.variance_estimate, p.variance_estimate,
                    "{case}: estimate diverged"
                );
                assert_eq!(
                    s.stats.mean_loss, p.stats.mean_loss,
                    "{case}: loss diverged"
                );
                assert_eq!(
                    s.stats.batch_accuracy, p.stats.batch_accuracy,
                    "{case}: accuracy diverged"
                );
                for w in 0..k {
                    assert_eq!(
                        seq.cluster().worker(w).params(),
                        par.cluster().worker(w).params(),
                        "{case}: worker {w} params diverged"
                    );
                }
                decisions.push(s.synced);
            }
            assert_eq!(
                seq.comm_bytes(),
                par.comm_bytes(),
                "k={k} variant={tag}: byte accounting diverged"
            );
            if k > 1 {
                assert!(
                    decisions.iter().any(|&d| d),
                    "k={k} variant={tag}: horizon should exercise at least one sync"
                );
            }
        }
    }
}

/// Randomized-seed sweep: a cheaper horizon over many seeds, asserting the
/// full sync-decision *sequence* and the final models match. Catches
/// schedule-dependent divergence a single seed might miss.
#[test]
fn pooled_sync_sequences_match_over_random_seeds() {
    let task = tiny_task();
    for case in 0..6u64 {
        let seed = 0x5EED_0000 + case * 131;
        let cfg = FdaConfig::linear(0.04);
        let mut seq = Fda::new(cfg, cluster(3, seed, false), &task);
        let mut par = Fda::new(cfg, cluster(3, seed, true), &task);
        let seq_seq: Vec<bool> = (0..12).map(|_| seq.step().synced).collect();
        let par_seq: Vec<bool> = (0..12).map(|_| par.step().synced).collect();
        assert_eq!(
            seq_seq, par_seq,
            "case {case} (seed {seed}): sequences diverged"
        );
        assert_eq!(
            seq.cluster().worker(0).params(),
            par.cluster().worker(0).params(),
            "case {case} (seed {seed}): final model diverged"
        );
    }
}

/// The baselines share the pooled cluster primitives; they must be
/// bit-identical across modes too (Synchronous exercises the pooled model
/// AllReduce every step, LocalSGD the mixed cadence).
#[test]
fn pooled_baselines_match_sequential() {
    let task = tiny_task();
    let mut seq_sync = Synchronous::new(cluster(4, 11, false), &task);
    let mut par_sync = Synchronous::new(cluster(4, 11, true), &task);
    let mut seq_local = LocalSgd::new(3, cluster(4, 12, false), &task);
    let mut par_local = LocalSgd::new(3, cluster(4, 12, true), &task);
    for _ in 0..7 {
        seq_sync.step();
        par_sync.step();
        seq_local.step();
        par_local.step();
    }
    for w in 0..4 {
        assert_eq!(
            seq_sync.cluster().worker(w).params(),
            par_sync.cluster().worker(w).params(),
            "Synchronous: worker {w} diverged"
        );
        assert_eq!(
            seq_local.cluster().worker(w).params(),
            par_local.cluster().worker(w).params(),
            "LocalSGD: worker {w} diverged"
        );
    }
    assert_eq!(seq_sync.comm_bytes(), par_sync.comm_bytes());
    assert_eq!(seq_local.comm_bytes(), par_local.comm_bytes());
}
