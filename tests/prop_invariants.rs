//! Property-based tests (proptest) on the core mathematical invariants
//! the FDA protocol rests on.

use fda::core::monitor::{ExactMonitor, LinearMonitor, LocalState, SketchMonitor, VarianceMonitor};
use fda::data::{Dataset, Partition};
use fda::sketch::SketchConfig;
use fda::tensor::{vector, Matrix};
use proptest::prelude::*;

/// Strategy: a set of K drift vectors of dimension d with bounded entries.
fn drifts_strategy(max_k: usize, max_d: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2..=max_k, 2..=max_d).prop_flat_map(|(k, d)| {
        proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, d..=d),
            k..=k,
        )
    })
}

fn true_variance(drifts: &[Vec<f32>]) -> f32 {
    let refs: Vec<&[f32]> = drifts.iter().map(|d| d.as_slice()).collect();
    vector::variance_from_drifts(&refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (4): the drift identity equals the definitional variance around
    /// the mean, for any offset w0.
    #[test]
    fn variance_identity_holds(drifts in drifts_strategy(6, 40), offset in -5.0f32..5.0) {
        // Models = drift + constant offset vector; Var(models) must equal
        // the drift-form variance (offsets cancel).
        let d = drifts[0].len();
        let w0 = vec![offset; d];
        let models: Vec<Vec<f32>> = drifts
            .iter()
            .map(|u| {
                let mut m = w0.clone();
                vector::add_assign(&mut m, u);
                m
            })
            .collect();
        let mrefs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
        let direct = vector::variance_of(&mrefs);
        let via_drift = true_variance(&drifts);
        let tol = 1e-3f32 * (1.0 + direct.abs().max(via_drift.abs()));
        prop_assert!((direct - via_drift).abs() <= tol,
            "direct {direct} vs drift-form {via_drift}");
    }

    /// Variance is never negative (it is a mean of squared distances).
    #[test]
    fn variance_nonnegative(drifts in drifts_strategy(6, 30)) {
        // Use the exact monitor path, which mirrors the protocol.
        let d = drifts[0].len();
        let m = ExactMonitor::new(d);
        let states: Vec<LocalState> = drifts.iter().map(|u| m.local_state(u)).collect();
        let est = m.estimate(&LocalState::average(&states));
        prop_assert!(est >= -1e-2, "exact variance estimate {est} < 0");
    }

    /// Theorem 3.2: LinearFDA's H is an over-estimate for ANY unit ξ.
    #[test]
    fn linear_h_dominates_variance(
        drifts in drifts_strategy(5, 30),
        xi_seed in proptest::collection::vec(-1.0f32..1.0, 30),
    ) {
        let d = drifts[0].len();
        let mut monitor = LinearMonitor::new();
        // Build an arbitrary ξ from the seed via the sync hook.
        let mut w_new: Vec<f32> = xi_seed.iter().take(d).cloned().collect();
        while w_new.len() < d { w_new.push(0.37); }
        let w_prev = vec![0.0f32; d];
        monitor.on_sync(&w_new, &w_prev);
        let states: Vec<LocalState> = drifts.iter().map(|u| monitor.local_state(u)).collect();
        let est = monitor.estimate(&LocalState::average(&states));
        let truth = true_variance(&drifts);
        prop_assert!(est >= truth - 2e-3 * (1.0 + truth.abs()),
            "H = {est} < Var = {truth}");
    }

    /// AMS sketch linearity: sk(αa + βb) = α·sk(a) + β·sk(b).
    #[test]
    fn sketch_linearity(
        a in proptest::collection::vec(-5.0f32..5.0, 64),
        b in proptest::collection::vec(-5.0f32..5.0, 64),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let plan = SketchConfig::new(3, 16, 99).build_plan(64);
        let combo: Vec<f32> = a.iter().zip(&b).map(|(x, y)| alpha * x + beta * y).collect();
        let direct = plan.sketch(&combo);
        let mut lin = plan.sketch(&a);
        lin.scale(alpha);
        lin.axpy(beta, &plan.sketch(&b));
        for (x, y) in direct.as_slice().iter().zip(lin.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// Partitioners produce an exact, disjoint cover for every scheme.
    #[test]
    fn partitions_exactly_cover(
        n in 30usize..200,
        k in 2usize..8,
        scheme in 0usize..3,
        seed in 0u64..1000,
    ) {
        let classes = 5;
        let x = Matrix::zeros(n, 2);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let dataset = Dataset::new(x, y, classes);
        let partition = match scheme {
            0 => Partition::Iid,
            1 => Partition::NonIidPercent(0.6),
            _ => Partition::NonIidLabel(0),
        };
        let shards = partition.shards(&dataset, k, seed);
        prop_assert_eq!(shards.len(), k);
        let mut all: Vec<usize> = shards.iter().flatten().cloned().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(all, expect);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
    }

    /// The sketch monitor's H is within a controlled band of the exact
    /// variance: never wildly below (soundness), never above the trivial
    /// bound mean‖u‖² by more than sketch noise (usefulness).
    #[test]
    fn sketch_h_band(drifts in drifts_strategy(5, 64)) {
        let d = drifts[0].len();
        let monitor = SketchMonitor::new(SketchConfig::new(5, 128, 7), d);
        let states: Vec<LocalState> = drifts.iter().map(|u| monitor.local_state(u)).collect();
        let avg = LocalState::average(&states);
        let est = monitor.estimate(&avg);
        let truth = true_variance(&drifts);
        let trivial = avg.drift_sq_norm;
        // Allow generous sketch noise: ε ≈ 1/√128 ≈ 0.09, use 4ε margins.
        let slack = 0.36f32 * trivial.abs().max(1e-3);
        prop_assert!(est >= truth - slack, "est {est} far below Var {truth}");
        prop_assert!(est <= trivial + slack, "est {est} far above trivial bound {trivial}");
    }
}
