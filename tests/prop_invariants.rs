//! Randomized property tests on the core mathematical invariants the FDA
//! protocol rests on.
//!
//! The workspace is intentionally dependency-free, so instead of `proptest`
//! these use a hand-rolled case generator over the workspace's
//! deterministic [`fda::tensor::Rng`]: every property is checked over many random shapes
//! and values, and every failure message carries the case seed so a
//! counterexample reproduces exactly.

use fda::core::monitor::{
    ExactMonitor, LinearMonitor, LocalState, SketchMonitor, StateSummary, VarianceMonitor,
};
use fda::core::wire;
use fda::data::{Dataset, Partition};
use fda::nn::conv::Conv2d;
use fda::nn::init::Init;
use fda::nn::layer::Shape3;
use fda::sketch::{AmsSketch, SketchConfig};
use fda::tensor::{vector, Matrix, Rng};

const CASES: u64 = 64;

/// A random (but valid) conv geometry: channels, spatial extents, kernel,
/// padding, output channels.
fn random_conv(rng: &mut Rng) -> (Shape3, usize, usize, usize) {
    loop {
        let c = 1 + (rng.next_u64() % 3) as usize;
        let h = 2 + (rng.next_u64() % 6) as usize;
        let w = 2 + (rng.next_u64() % 6) as usize;
        let k = 1 + (rng.next_u64() % 4) as usize;
        let pad = (rng.next_u64() % 3) as usize;
        let oc = 1 + (rng.next_u64() % 4) as usize;
        if k <= h + 2 * pad && k <= w + 2 * pad {
            return (Shape3::new(c, h, w), oc, k, pad);
        }
    }
}

/// K drift vectors of dimension d with entries in `[-10, 10)`.
fn random_drifts(rng: &mut Rng, max_k: usize, max_d: usize) -> Vec<Vec<f32>> {
    let k = 2 + (rng.next_u64() as usize) % (max_k - 1);
    let d = 2 + (rng.next_u64() as usize) % (max_d - 1);
    (0..k)
        .map(|_| {
            let mut u = vec![0.0f32; d];
            rng.fill_uniform(&mut u, -10.0, 10.0);
            u
        })
        .collect()
}

fn true_variance(drifts: &[Vec<f32>]) -> f32 {
    let refs: Vec<&[f32]> = drifts.iter().map(|d| d.as_slice()).collect();
    vector::variance_from_drifts(&refs)
}

/// Eq. (4): the drift identity equals the definitional variance around the
/// mean, for any offset w0.
#[test]
fn variance_identity_holds() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1D_0000 + case);
        let drifts = random_drifts(&mut rng, 6, 40);
        let offset = rng.uniform_f32() * 10.0 - 5.0;
        let d = drifts[0].len();
        let w0 = vec![offset; d];
        let models: Vec<Vec<f32>> = drifts
            .iter()
            .map(|u| {
                let mut m = w0.clone();
                vector::add_assign(&mut m, u);
                m
            })
            .collect();
        let mrefs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
        let direct = vector::variance_of(&mrefs);
        let via_drift = true_variance(&drifts);
        let tol = 1e-3f32 * (1.0 + direct.abs().max(via_drift.abs()));
        assert!(
            (direct - via_drift).abs() <= tol,
            "case {case}: direct {direct} vs drift-form {via_drift}"
        );
    }
}

/// Variance is never negative (it is a mean of squared distances).
#[test]
fn variance_nonnegative() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2D_0000 + case);
        let drifts = random_drifts(&mut rng, 6, 30);
        let d = drifts[0].len();
        let m = ExactMonitor::new(d);
        let states: Vec<LocalState> = drifts.iter().map(|u| m.local_state(u)).collect();
        let est = m.estimate(&LocalState::average(&states));
        assert!(
            est >= -1e-2,
            "case {case}: exact variance estimate {est} < 0"
        );
    }
}

/// Theorem 3.2: LinearFDA's H is an over-estimate for ANY unit ξ.
#[test]
fn linear_h_dominates_variance() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3D_0000 + case);
        let drifts = random_drifts(&mut rng, 5, 30);
        let d = drifts[0].len();
        let mut monitor = LinearMonitor::new();
        // Build an arbitrary ξ via the sync hook.
        let mut w_new = vec![0.0f32; d];
        rng.fill_uniform(&mut w_new, -1.0, 1.0);
        let w_prev = vec![0.0f32; d];
        monitor.on_sync(&w_new, &w_prev);
        let states: Vec<LocalState> = drifts.iter().map(|u| monitor.local_state(u)).collect();
        let est = monitor.estimate(&LocalState::average(&states));
        let truth = true_variance(&drifts);
        assert!(
            est >= truth - 2e-3 * (1.0 + truth.abs()),
            "case {case}: H = {est} < Var = {truth}"
        );
    }
}

/// AMS sketch linearity: sk(αa + βb) = α·sk(a) + β·sk(b).
#[test]
fn sketch_linearity() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4D_0000 + case);
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        rng.fill_uniform(&mut a, -5.0, 5.0);
        rng.fill_uniform(&mut b, -5.0, 5.0);
        let alpha = rng.uniform_f32() * 4.0 - 2.0;
        let beta = rng.uniform_f32() * 4.0 - 2.0;
        let plan = SketchConfig::new(3, 16, 99).build_plan(64);
        let combo: Vec<f32> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| alpha * x + beta * y)
            .collect();
        let direct = plan.sketch(&combo);
        let mut lin = plan.sketch(&a);
        lin.scale(alpha);
        lin.axpy(beta, &plan.sketch(&b));
        for (x, y) in direct.as_slice().iter().zip(lin.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-3 * (1.0 + x.abs()),
                "case {case}: {x} vs {y}"
            );
        }
    }
}

/// Partitioners produce an exact, disjoint cover for every scheme.
#[test]
fn partitions_exactly_cover() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5D_0000 + case);
        let n = 30 + (rng.next_u64() as usize) % 170;
        let k = 2 + (rng.next_u64() as usize) % 6;
        let scheme = (rng.next_u64() as usize) % 3;
        let seed = rng.next_u64() % 1000;
        let classes = 5;
        let x = Matrix::zeros(n, 2);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let dataset = Dataset::new(x, y, classes);
        let partition = match scheme {
            0 => Partition::Iid,
            1 => Partition::NonIidPercent(0.6),
            _ => Partition::NonIidLabel(0),
        };
        let shards = partition.shards(&dataset, k, seed);
        assert_eq!(shards.len(), k, "case {case}");
        let mut all: Vec<usize> = shards.iter().flatten().cloned().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(all, expect, "case {case}: shards must cover 0..{n} exactly");
        assert!(
            shards.iter().all(|s| !s.is_empty()),
            "case {case}: empty shard"
        );
    }
}

/// Layout conversion round trip: `to_sample_major ∘ to_channel_major = id`
/// (and the inverse composition) over random batch/channel/spatial shapes —
/// the invariant the conv-stack layout boundary rests on.
#[test]
fn layout_conversion_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7D_0000 + case);
        let batch = 1 + (rng.next_u64() % 9) as usize;
        let c = 1 + (rng.next_u64() % 6) as usize;
        let spatial = 1 + (rng.next_u64() % 40) as usize;
        let sm = Matrix::random_normal(batch, c * spatial, 0.0, 1.0, &mut rng);
        let cm = sm.to_channel_major(c);
        assert_eq!(
            (cm.rows(), cm.cols()),
            (c, batch * spatial),
            "case {case}: channel-major shape"
        );
        assert_eq!(
            cm.to_sample_major(batch),
            sm,
            "case {case}: to_sample_major ∘ to_channel_major != id"
        );
        let cm2 = Matrix::random_normal(c, batch * spatial, 0.0, 1.0, &mut rng);
        assert_eq!(
            cm2.to_sample_major(batch).to_channel_major(c),
            cm2,
            "case {case}: to_channel_major ∘ to_sample_major != id"
        );
        // Spot-check the defining element mapping on one random entry.
        let (s, ch, p) = (
            (rng.next_u64() as usize) % batch,
            (rng.next_u64() as usize) % c,
            (rng.next_u64() as usize) % spatial,
        );
        assert_eq!(
            sm.get(s, ch * spatial + p).to_bits(),
            cm.get(ch, s * spatial + p).to_bits(),
            "case {case}: element mapping"
        );
    }
}

/// im2col/col2im round trip through the adjoint identity
/// `⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩` over random conv geometries and batch
/// sizes — the property that makes the conv input-gradient exact under the
/// channel-major layout.
#[test]
fn im2col_col2im_adjoint_random_geometries() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8D_0000 + case);
        let (in_shape, oc, k, pad) = random_conv(&mut rng);
        let batch = 1 + (rng.next_u64() % 5) as usize;
        let mut conv = Conv2d::new(in_shape, oc, k, pad, Init::HeNormal, &mut rng);
        let mut x = Matrix::zeros(in_shape.c, batch * in_shape.spatial());
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let col = conv.im2col_batch(&x);
        let mut y = Matrix::zeros(col.rows(), col.cols());
        rng.fill_normal(y.as_mut_slice(), 0.0, 1.0);
        let forward_ip_f64: f64 = col
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let back = conv.col2im_batch(&y);
        let backward_ip_f64: f64 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let tol = 1e-4 * (1.0 + forward_ip_f64.abs());
        assert!(
            (forward_ip_f64 - backward_ip_f64).abs() < tol,
            "case {case} ({in_shape:?} k={k} pad={pad} batch={batch}): \
             ⟨im2col(x), y⟩ = {forward_ip_f64} vs ⟨x, col2im(y)⟩ = {backward_ip_f64}"
        );
    }
}

/// The precomputed copy-run plan covers **exactly** the in-bounds
/// (kernel-position × output-position) pairs, each exactly once
/// (disjointness in the column matrix, correct source offsets), and never
/// references a padded position — the invariant that lets `cols` keep its
/// padded zeros untouched across steps.
#[test]
fn im2col_plan_coverage_and_disjointness() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9D_0000 + case);
        let (in_shape, oc, k, pad) = random_conv(&mut rng);
        let conv = Conv2d::new(in_shape, oc, k, pad, Init::HeNormal, &mut rng);
        let Shape3 { c, h, w } = in_shape;
        let out = conv.out_shape();
        let (oh, ow) = (out.h, out.w);
        // covered[row][out_pos] = Some(src) once a run writes it.
        let rows = c * k * k;
        let mut covered: Vec<Vec<Option<usize>>> = vec![vec![None; oh * ow]; rows];
        for (row, src_ch, dst, src, len) in conv.plan_runs() {
            assert!(row < rows, "case {case}: cols row {row} out of range");
            assert_eq!(
                src_ch,
                row / (k * k),
                "case {case}: run channel must match its cols row"
            );
            for off in 0..len {
                assert!(dst + off < oh * ow, "case {case}: dst overflow");
                assert!(src + off < h * w, "case {case}: src overflow");
                assert!(
                    covered[row][dst + off].replace(src + off).is_none(),
                    "case {case}: position ({row}, {}) written twice",
                    dst + off
                );
            }
        }
        // Every in-bounds pair covered with the right source; every
        // padded pair untouched.
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = oy as isize + ky as isize - pad as isize;
                            let ix = ox as isize + kx as isize - pad as isize;
                            let in_bounds =
                                iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize;
                            let got = covered[row][oy * ow + ox];
                            if in_bounds {
                                assert_eq!(
                                    got,
                                    Some(iy as usize * w + ix as usize),
                                    "case {case} ({in_shape:?} k={k} pad={pad}): \
                                     wrong source for row {row}, out ({oy},{ox})"
                                );
                            } else {
                                assert_eq!(
                                    got, None,
                                    "case {case}: padded position written \
                                     (row {row}, out ({oy},{ox}))"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A random local state covering all three summary tags, including the
/// degenerate shapes a generic transport must survive: empty sketches
/// (zero rows and/or zero cols) and length-0 exact drifts.
fn random_state(rng: &mut Rng) -> LocalState {
    let drift_sq_norm = rng.uniform_f32() * 100.0;
    let summary = match rng.next_u64() % 3 {
        0 => StateSummary::Linear(rng.uniform_f32() * 4.0 - 2.0),
        1 => {
            // 1-in-4 cases degenerate to an empty dimension.
            let rows = if rng.next_u64().is_multiple_of(4) {
                0
            } else {
                1 + (rng.next_u64() % 5) as usize
            };
            let cols = if rng.next_u64().is_multiple_of(4) {
                0
            } else {
                1 + (rng.next_u64() % 17) as usize
            };
            let mut sk = AmsSketch::zeros(rows, cols);
            rng.fill_uniform(sk.as_mut_slice(), -3.0, 3.0);
            StateSummary::Sketch(sk)
        }
        _ => {
            let len = (rng.next_u64() % 40) as usize; // includes 0
            let mut v = vec![0.0f32; len];
            rng.fill_uniform(&mut v, -3.0, 3.0);
            StateSummary::Exact(v)
        }
    };
    LocalState {
        drift_sq_norm,
        summary,
    }
}

/// Wire round trip: `encode → decode → encode` must be **byte-identical**
/// for every state tag (the transport's framing invariant), and decode
/// must reject every strict truncation of a valid buffer.
#[test]
fn wire_state_roundtrip_byte_equality() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA1_0000 + case);
        let state = random_state(&mut rng);
        let bytes = wire::encode_state(&state);
        let back = wire::decode_state(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(back, state, "case {case}: state changed in roundtrip");
        assert_eq!(
            wire::encode_state(&back),
            bytes,
            "case {case}: re-encode not byte-identical"
        );
        // Every strict prefix must fail cleanly (never panic, never Ok).
        for cut in 0..bytes.len() {
            assert!(
                wire::decode_state(&bytes[..cut]).is_err(),
                "case {case}: cut at {cut} decoded"
            );
        }
    }
}

/// Vector frames round-trip byte-identically, including length 0.
#[test]
fn wire_vector_roundtrip_byte_equality() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xB1_0000 + case);
        let len = (rng.next_u64() % 200) as usize; // includes 0
        let mut v = vec![0.0f32; len];
        rng.fill_uniform(&mut v, -5.0, 5.0);
        let bytes = wire::encode_vector(&v);
        let back = wire::decode_vector(&bytes).expect("valid frame decodes");
        assert_eq!(back, v, "case {case}");
        assert_eq!(wire::encode_vector(&back), bytes, "case {case}");
        for cut in 0..bytes.len() {
            assert!(wire::decode_vector(&bytes[..cut]).is_err(), "case {case}");
        }
    }
}

/// Decode fuzz: random byte soup and random mutations of valid encodings
/// must always return `Ok`/`Err` — never panic, never allocate past the
/// buffer (a hostile length header claiming gigabytes dies as
/// `Truncated`). The decoders are exercised by *calling* them; a panic or
/// an OOM abort fails the test run itself.
#[test]
fn wire_decoders_are_total_under_fuzz() {
    let mut rng = Rng::new(0xC1_0000);
    let job = wire::JobSpec {
        cluster: fda::core::cluster::ClusterConfig::small_test(3),
        fda: fda::core::fda::FdaConfig::sketch_auto(0.01),
        codec: fda::comm::CodecSpec::Dense,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps: 9,
        synth: fda::data::synth::SynthSpec::synth_mnist(),
        task_name: "fuzz".to_string(),
    };
    let valid: Vec<Vec<u8>> = vec![
        wire::encode_state(&LinearMonitor::new().local_state(&[1.0, -2.0, 0.5])),
        wire::encode_state(
            &SketchMonitor::new(SketchConfig::new(3, 8, 5), 16)
                .local_state(&(0..16).map(|i| i as f32).collect::<Vec<_>>()),
        ),
        wire::encode_state(&ExactMonitor::new(10).local_state(&[0.25; 10])),
        wire::encode_vector(&[1.0, 2.0, 3.0]),
        wire::encode_job(&job),
    ];
    let decode_all = |buf: &[u8]| {
        let _ = wire::decode_state(buf);
        let _ = wire::decode_vector(buf);
        let _ = wire::decode_job(buf);
    };
    // Pure byte soup.
    for _ in 0..4 * CASES {
        let len = (rng.next_u64() % 96) as usize;
        let buf: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        decode_all(&buf);
    }
    // Mutations of valid frames: single-byte flips, truncations, trailing
    // garbage, and hostile length headers spliced into real encodings.
    for base in &valid {
        for _ in 0..CASES {
            let mut buf = base.clone();
            match rng.next_u64() % 4 {
                0 => {
                    let i = (rng.next_u64() as usize) % buf.len();
                    buf[i] ^= 1 << (rng.next_u64() % 8);
                }
                1 => {
                    let cut = (rng.next_u64() as usize) % (buf.len() + 1);
                    buf.truncate(cut);
                }
                2 => buf.push((rng.next_u64() & 0xFF) as u8),
                _ => {
                    // Overwrite 4 bytes somewhere with u32::MAX — the
                    // hostile-length shape.
                    if buf.len() >= 4 {
                        let i = (rng.next_u64() as usize) % (buf.len() - 3);
                        buf[i..i + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                    }
                }
            }
            decode_all(&buf);
        }
    }
    // The canonical hostile headers, explicitly.
    let mut sketch_bomb = vec![1u8, 0, 0, 0, 0];
    sketch_bomb.extend_from_slice(&u16::MAX.to_le_bytes());
    sketch_bomb.extend_from_slice(&u16::MAX.to_le_bytes());
    assert!(wire::decode_state(&sketch_bomb).is_err());
    let mut exact_bomb = vec![2u8, 0, 0, 0, 0];
    exact_bomb.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(wire::decode_state(&exact_bomb).is_err());
    assert!(wire::decode_vector(&u32::MAX.to_le_bytes()).is_err());
}

// ---------------------------------------------------------------------------
// Transport frames: checksummed, epoch-stamped, hostile-input-total
// ---------------------------------------------------------------------------

/// A random protocol message covering every frame kind the transport
/// ships, including the elastic-transport kinds (extended hello, the
/// versioned `Resume` handoff with and without a previous model).
fn random_msg(rng: &mut Rng) -> fda::net::Msg {
    use fda::net::Msg;
    let vec_of = |rng: &mut Rng, max: u64| {
        let len = (rng.next_u64() % max) as usize;
        let mut v = vec![0.0f32; len];
        rng.fill_uniform(&mut v, -4.0, 4.0);
        v
    };
    match rng.next_u64() % 8 {
        0 => Msg::hello((rng.next_u64() % 64) as u32, (rng.next_u64() % 1000) as u32),
        1 => Msg::State(random_state(rng)),
        2 => Msg::AvgState {
            state: random_state(rng),
            sync: rng.next_u64().is_multiple_of(2),
        },
        3 => Msg::Model(vec_of(rng, 60)),
        4 => Msg::AvgModel(vec_of(rng, 60)),
        5 => Msg::FinalModel(vec_of(rng, 60)),
        6 => {
            let model = vec_of(rng, 60);
            let prev_model = if rng.next_u64().is_multiple_of(2) {
                let mut p = vec![0.0f32; model.len()];
                rng.fill_uniform(&mut p, -4.0, 4.0);
                Some(p)
            } else {
                None
            };
            Msg::Resume {
                round: (rng.next_u64() % 500) as u32,
                model,
                prev_model,
            }
        }
        _ => Msg::Shutdown,
    }
}

/// Every protocol message — extended hello and `Resume` included — must
/// survive `send → recv` with its epoch stamp intact and re-encode to the
/// exact same frame bytes (the transport's framing invariant, now over
/// the epoch-stamped checksummed header).
#[test]
fn frame_msg_roundtrip_preserves_epoch_and_bytes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xD1_0000 + case);
        let msg = random_msg(&mut rng);
        let epoch = (rng.next_u64() % 10_000) as u32;
        let mut bytes: Vec<u8> = Vec::new();
        msg.send(&mut bytes, epoch).expect("encode");
        let (back, back_epoch) =
            fda::net::Msg::recv(&mut std::io::Cursor::new(&bytes)).expect("decode");
        assert_eq!(back_epoch, epoch, "case {case}: epoch stamp changed");
        assert_eq!(
            back.kind_name(),
            msg.kind_name(),
            "case {case}: kind changed"
        );
        let mut re: Vec<u8> = Vec::new();
        back.send(&mut re, epoch).expect("re-encode");
        assert_eq!(re, bytes, "case {case}: re-encode not byte-identical");
        // Any strict truncation of the stream must fail cleanly, and a
        // truncation that cuts the payload (past the checksummed header's
        // length field) must look like a disconnect, never decode.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                fda::net::Msg::recv(&mut std::io::Cursor::new(&bytes[..cut])).is_err(),
                "case {case}: cut at {cut} decoded"
            );
        }
    }
}

/// Frame-level decode totality: byte soup and random mutations of valid
/// frames through `read_frame` must return `Ok`/`Err`, never panic, and a
/// mutated frame body must never pass the checksum silently.
#[test]
fn frame_reader_is_total_and_checksummed_under_fuzz() {
    use fda::net::frame::{encode_frame, read_frame};
    let mut rng = Rng::new(0xE1_0000);
    // Pure byte soup.
    for _ in 0..4 * CASES {
        let len = (rng.next_u64() % 80) as usize;
        let buf: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = read_frame(&mut std::io::Cursor::new(buf));
    }
    // Single-byte mutations of valid frames: any flip past the length
    // field must be rejected (checksum); flips inside the length field
    // must never decode to the original payload.
    for case in 0..CASES {
        let mut inner = Rng::new(0xE2_0000 + case);
        let msg = random_msg(&mut inner);
        let (kind, payload) = msg.encode();
        let frame = encode_frame((inner.next_u64() % 100) as u32, kind, &payload);
        let i = (inner.next_u64() as usize) % frame.len();
        let mut corrupt = frame.clone();
        corrupt[i] ^= 1 << (inner.next_u64() % 8);
        match read_frame(&mut std::io::Cursor::new(&corrupt)) {
            Err(_) => {}
            Ok((k, _, p)) => {
                assert!(
                    i < 4 && !(k == kind && p == payload),
                    "case {case}: flipped byte {i} decoded to the original frame"
                );
            }
        }
        // FrameKind bytes outside the enum must be rejected even with a
        // valid checksum (splice an unknown kind and re-checksum).
        let unknown = 200 + (inner.next_u64() % 50) as u8;
        let mut spliced = Vec::with_capacity(frame.len());
        let epoch_bytes = &frame[4..8];
        let crc = fda::net::frame::fnv1a_32(&[epoch_bytes, &[unknown], &payload]);
        spliced.extend_from_slice(&frame[0..4]);
        spliced.extend_from_slice(epoch_bytes);
        spliced.extend_from_slice(&crc.to_le_bytes());
        spliced.push(unknown);
        spliced.extend_from_slice(&payload);
        assert!(
            read_frame(&mut std::io::Cursor::new(&spliced)).is_err(),
            "case {case}: unknown kind {unknown} decoded"
        );
    }
}

/// The zombie filter: frames spliced in from older epochs are skipped (up
/// to the flood bound), the current-epoch frame behind them is delivered
/// intact, and future-epoch frames are protocol violations.
#[test]
fn spliced_stale_epoch_frames_are_rejected() {
    use fda::net::{recv_at_epoch, Msg, NetError, MAX_STALE_FRAMES};
    for case in 0..CASES {
        let mut rng = Rng::new(0xF1_0000 + case);
        let current = 2 + (rng.next_u64() % 1000) as u32;
        let stale_count = (rng.next_u64() % u64::from(MAX_STALE_FRAMES + 1)) as u32;
        let mut stream: Vec<u8> = Vec::new();
        // A zombie's leftovers: deposits stamped with earlier epochs.
        for _ in 0..stale_count {
            let stale_epoch = rng.next_u64() as u32 % current;
            Msg::State(random_state(&mut rng))
                .send(&mut stream, stale_epoch)
                .expect("encode stale");
        }
        let live = vec![1.5f32, -2.5, 3.5];
        Msg::Model(live.clone())
            .send(&mut stream, current)
            .expect("encode live");
        match recv_at_epoch(&mut std::io::Cursor::new(&stream), current) {
            Ok(Msg::Model(v)) => assert_eq!(v, live, "case {case}: live frame mangled"),
            other => panic!("case {case}: expected the live model, got {other:?}"),
        }

        // A future epoch is a protocol violation — only the coordinator
        // advances the epoch.
        let mut stream: Vec<u8> = Vec::new();
        Msg::Model(live.clone())
            .send(&mut stream, current + 1 + rng.next_u64() as u32 % 50)
            .expect("encode future");
        assert!(
            matches!(
                recv_at_epoch(&mut std::io::Cursor::new(&stream), current),
                Err(NetError::Protocol(_))
            ),
            "case {case}: future epoch accepted"
        );
    }
    // The flood bound: one more stale frame than the filter tolerates.
    let mut stream: Vec<u8> = Vec::new();
    for _ in 0..(MAX_STALE_FRAMES + 1) {
        Msg::Shutdown.send(&mut stream, 1).expect("encode");
    }
    Msg::Shutdown.send(&mut stream, 5).expect("encode");
    assert!(
        matches!(
            recv_at_epoch(&mut std::io::Cursor::new(&stream), 5),
            Err(NetError::Protocol(_))
        ),
        "a stale flood must not be skipped forever"
    );
}

// ---------------------------------------------------------------------------
// SIMD kernel dispatch arms
// ---------------------------------------------------------------------------

/// `out += op(A)·op(B)` reference in f64 (the tolerance anchor: summing in
/// f64 removes the reference's own rounding from the error budget).
fn gemm_ref_f64(
    m: usize,
    n: usize,
    k: usize,
    a: &Matrix,
    b: &Matrix,
    at: bool,
    bt: bool,
) -> Vec<f64> {
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for p in 0..k {
                let av = if at { a.get(p, i) } else { a.get(i, p) };
                let bv = if bt { b.get(j, p) } else { b.get(p, j) };
                s += av as f64 * bv as f64;
            }
            out[i * n + j] = s;
        }
    }
    out
}

/// Every kernel arm the host supports drives all three GEMM entry points
/// to the naive/f64 reference over random geometries — including ragged
/// K/N tails not divisible by any arm's lane or tile width, the
/// small-GEMM fallback region, and the KC panel boundary.
#[test]
fn dispatched_gemm_matches_reference_under_every_kernel_arm() {
    use fda::tensor::matrix::{
        gemm_a_bt_accumulate_with_kernel, gemm_accumulate_with_kernel,
        gemm_at_b_accumulate_with_kernel, Scratch,
    };
    use fda::tensor::simd;
    let mut rng = Rng::new(0x51_3D00);
    // Fixed geometries straddling tile boundaries of every arm (mr ∈
    // {4, 6, 8}, nr ∈ {16, 32}, KC = 256), plus random fuzz.
    let mut shapes = vec![
        (1usize, 1usize, 1usize),
        (8, 32, 256),   // exact AVX-512 tiles, one full panel
        (6, 16, 64),    // exact AVX2 tile
        (9, 33, 257),   // +1 off every boundary
        (7, 31, 255),   // −1 off every boundary
        (65, 100, 300), // KC-spanning with ragged everything
        (16, 120, 432), // LeNet dense forward shape
        (130, 47, 260), // tall, blocked-driver path
    ];
    for _ in 0..24 {
        shapes.push((
            1 + (rng.next_u64() % 70) as usize,
            1 + (rng.next_u64() % 140) as usize,
            1 + (rng.next_u64() % 300) as usize,
        ));
    }
    for &(m, n, k) in &shapes {
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(k, n, 0.0, 1.0, &mut rng);
        let at = a.transposed();
        let bt = b.transposed();
        let want = gemm_ref_f64(m, n, k, &a, &b, false, false);
        let tol = 1e-5f64 * (1.0 + k as f64).sqrt();
        for kn in simd::all_supported() {
            let mut scratch = Scratch::new();
            let check = |got: &Matrix, label: &str| {
                for (i, (&g, &w)) in got.as_slice().iter().zip(&want).enumerate() {
                    assert!(
                        (g as f64 - w).abs() <= tol * (1.0 + w.abs()),
                        "{} {label} {m}x{k}x{n} elem {i}: {g} vs {w}",
                        kn.name()
                    );
                }
            };
            let mut out = Matrix::zeros(m, n);
            gemm_accumulate_with_kernel(kn, &a, &b, &mut out, &mut scratch);
            check(&out, "a_b");
            let mut out = Matrix::zeros(m, n);
            gemm_at_b_accumulate_with_kernel(kn, &at, &b, &mut out, &mut scratch);
            check(&out, "at_b");
            let mut out = Matrix::zeros(m, n);
            gemm_a_bt_accumulate_with_kernel(kn, &a, &bt, &mut out, &mut scratch);
            check(&out, "a_bt");
        }
    }
}

/// Every kernel arm sketches bit-identically to the scalar arm (the arms
/// share one single-pass scatter loop; this pins that contract) and lands
/// within f64-accumulator tolerance of a from-scratch f64 scatter, over
/// random dims with ragged lane tails.
#[test]
fn dispatched_sketch_matches_reference_under_every_kernel_arm() {
    use fda::sketch::AmsSketch;
    use fda::tensor::simd;
    let scalar = simd::table_for(simd::Isa::Scalar).expect("scalar arm always available");
    for case in 0..CASES {
        let mut rng = Rng::new(0x5E_7C00 + case);
        // Dims biased onto lane boundaries ±1 (16/32/64 ±1) and odd sizes.
        let dim = match case % 4 {
            0 => 1 + (rng.next_u64() % 200) as usize,
            1 => 16 * (1 + (rng.next_u64() % 8) as usize),
            2 => 16 * (1 + (rng.next_u64() % 8) as usize) + 1,
            _ => 16 * (1 + (rng.next_u64() % 8) as usize) - 1,
        };
        let rows = 1 + (case as usize % 4);
        let cols = 8 + (rng.next_u64() % 60) as usize;
        let config = SketchConfig::new(rows, cols, 0xC0FE + case);
        let plan = config.build_plan(dim);
        let mut v = vec![0.0f32; dim];
        rng.fill_uniform(&mut v, -5.0, 5.0);
        let mut want = AmsSketch::zeros(rows, cols);
        plan.sketch_into_with_kernel(scalar, &v, &mut want);
        // f64 anchor: ‖sk(v)‖ entries recomputed with f64 accumulation via
        // linearity over unit vectors is O(d·l·m); instead verify the f32
        // scalar reference against f64 row sums of the *same* scatter.
        for kn in simd::all_supported() {
            let mut got = AmsSketch::zeros(rows, cols);
            plan.sketch_into_with_kernel(kn, &v, &mut got);
            for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "case {case}: arm {} bucket {i} diverged from scalar (dim {dim})",
                    kn.name()
                );
            }
        }
        // The packed-entry scatter itself is checked against an f64
        // accumulation of the same ±v assignments, reconstructed through
        // sketch linearity: sk(v) == Σ_i v_i · sk(e_i), with each sk(e_i)
        // exact (1-sparse inputs collide with nothing inside one row).
        let mut f64_rows = vec![0.0f64; rows * cols];
        for i in 0..dim {
            let mut unit = vec![0.0f32; dim];
            unit[i] = 1.0;
            let sk = plan.sketch(&unit);
            for (acc, &s) in f64_rows.iter_mut().zip(sk.as_slice()) {
                *acc += v[i] as f64 * s as f64;
            }
        }
        let tol = 1e-4f64 * (1.0 + dim as f64).sqrt();
        for (i, (&g, &w)) in want.as_slice().iter().zip(&f64_rows).enumerate() {
            assert!(
                (g as f64 - w).abs() <= tol * (1.0 + w.abs()),
                "case {case}: bucket {i}: sketched {g} vs f64 anchor {w} (dim {dim})"
            );
        }
    }
}

/// The sketch monitor's H is within a controlled band of the exact
/// variance: never wildly below (soundness), never above the trivial bound
/// mean‖u‖² by more than sketch noise (usefulness).
#[test]
fn sketch_h_band() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6D_0000 + case);
        let drifts = random_drifts(&mut rng, 5, 64);
        let d = drifts[0].len();
        let monitor = SketchMonitor::new(SketchConfig::new(5, 128, 7), d);
        let states: Vec<LocalState> = drifts.iter().map(|u| monitor.local_state(u)).collect();
        let avg = LocalState::average(&states);
        let est = monitor.estimate(&avg);
        let truth = true_variance(&drifts);
        let trivial = avg.drift_sq_norm;
        // Allow generous sketch noise: ε ≈ 1/√128 ≈ 0.09, use 4ε margins.
        let slack = 0.36f32 * trivial.abs().max(1e-3);
        assert!(
            est >= truth - slack,
            "case {case}: est {est} far below Var {truth}"
        );
        assert!(
            est <= trivial + slack,
            "case {case}: est {est} far above trivial bound {trivial}"
        );
    }
}

// ---------------------------------------------------------------------------
// Codec layer: the three contracts every `comm::compress` codec must hold
// (exact accounting, byte idempotence, total decoding), checked over random
// inputs including non-finite values, plus fuzz over the coded wire frames.
// ---------------------------------------------------------------------------

/// The codec matrix with randomized parameters, rebuilt per case.
fn random_codecs(rng: &mut Rng) -> Vec<Box<dyn fda::comm::Codec>> {
    vec![
        Box::new(fda::comm::Dense32),
        Box::new(fda::comm::Uniform8Bit::new(
            1 + (rng.next_u64() % 96) as usize,
        )),
        Box::new(fda::comm::TopK::new(1 + (rng.next_u64() % 24) as usize)),
        Box::new(fda::comm::DriftMask::new(rng.uniform_f32() * 2.0)),
    ]
}

/// A random payload vector; some cases carry NaN (varied bit patterns),
/// ±inf and −0.0 — a codec must survive all of them.
fn random_payload(rng: &mut Rng) -> Vec<f32> {
    let n = (rng.next_u64() % 160) as usize; // includes 0
    let mut v = vec![0.0f32; n];
    rng.fill_uniform(&mut v, -4.0, 4.0);
    if rng.next_u64().is_multiple_of(3) {
        for x in v.iter_mut() {
            match rng.next_u64() % 8 {
                0 => *x = f32::from_bits(0x7FC1_2345), // payload-carrying NaN
                1 => *x = f32::from_bits(0xFFC0_0042), // negative NaN
                2 => *x = f32::INFINITY,
                3 => *x = f32::NEG_INFINITY,
                4 => *x = -0.0,
                _ => {}
            }
        }
    }
    v
}

/// Contract 1 + 2 for every codec: `encoded_bytes` equals the emitted
/// length exactly, decode of own output succeeds, and
/// `encode(decode(encode(v)))` is byte-identical to `encode(v)` — the
/// fixed-point property that makes sim charging equal socket measurement.
#[test]
fn codec_encode_decode_encode_byte_identity() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xD2_0000 + case);
        let v = random_payload(&mut rng);
        for codec in random_codecs(&mut rng) {
            let name = codec.name();
            let enc = codec.encode(&v);
            assert_eq!(
                codec.encoded_bytes(&v),
                enc.len() as u64,
                "case {case} {name}: encoded_bytes != emitted length"
            );
            let dec = codec
                .decode(&enc, v.len())
                .unwrap_or_else(|e| panic!("case {case} {name}: decode own output: {e}"));
            assert_eq!(dec.len(), v.len(), "case {case} {name}: length changed");
            let enc2 = codec.encode(&dec);
            assert_eq!(
                enc2, enc,
                "case {case} {name}: encode∘decode∘encode not byte-identical"
            );
            // `roundtrip` is decode∘encode by definition — same bits.
            let rt = codec.roundtrip(&v);
            assert_eq!(
                rt.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                dec.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "case {case} {name}: roundtrip != decode(encode(v))"
            );
        }
    }
}

/// Contract 3: decoders are total. Byte soup, strict truncations of valid
/// encodings, and random single-byte mutations must return `Ok`/`Err` —
/// never panic, never allocate past what the claimed `n` backs.
#[test]
fn codec_decoders_are_total_under_fuzz() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xE2_0000 + case);
        let v = random_payload(&mut rng);
        for codec in random_codecs(&mut rng) {
            let enc = codec.encode(&v);
            // Strict truncations at every boundary.
            for cut in 0..enc.len() {
                let _ = codec.decode(&enc[..cut], v.len());
            }
            // Mutations: byte flips, trailing garbage, hostile n claims.
            for _ in 0..8 {
                let mut buf = enc.clone();
                match rng.next_u64() % 3 {
                    0 if !buf.is_empty() => {
                        let i = (rng.next_u64() as usize) % buf.len();
                        buf[i] ^= (rng.next_u64() % 255 + 1) as u8;
                    }
                    1 => buf.extend_from_slice(&[0xAB; 7]),
                    _ => {}
                }
                let _ = codec.decode(&buf, v.len());
                let _ = codec.decode(&buf, v.len().wrapping_add(1));
                // `n` is caller knowledge (trusted), but a wildly wrong
                // claim must still fail cleanly, never read out of bounds.
                let _ = codec.decode(&buf, 1 << 20);
            }
            // Pure soup.
            let len = (rng.next_u64() % 64) as usize;
            let soup: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            let _ = codec.decode(&soup, v.len());
        }
    }
}

/// The coded wire frames share the contracts: a coded state/vector frame
/// re-encodes byte-identically after decoding, rejects truncation as far
/// as the format can detect it (every strict cut for the self-delimiting
/// codecs; canonical-form idempotence on the cuts a sparse pair run
/// cannot distinguish from short valid runs), and the coded decoders are
/// total under mutation — with the expected-shape validation (`n` is
/// caller knowledge) doing the pre-allocation bounding.
#[test]
fn coded_wire_frames_roundtrip_and_are_total() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xF2_0000 + case);
        let state = random_state(&mut rng);
        let mut v = vec![0.0f32; (rng.next_u64() % 120) as usize];
        rng.fill_uniform(&mut v, -3.0, 3.0);
        for codec in random_codecs(&mut rng) {
            let name = codec.name();
            let sbytes = wire::encode_state_coded(&state, codec.as_ref());
            let sback = wire::decode_state_coded(&sbytes, &state, codec.as_ref())
                .unwrap_or_else(|e| panic!("case {case} {name}: state decode: {e}"));
            assert_eq!(
                wire::encode_state_coded(&sback, codec.as_ref()),
                sbytes,
                "case {case} {name}: coded state re-encode not byte-identical"
            );
            // Dense and uniform-8bit payloads are self-delimiting (their
            // byte length is a function of the vector length), so every
            // strict truncation must be rejected. The sparse pair format
            // is not: a run cut at a pair boundary is itself a valid,
            // shorter encoding. There the contract is weaker but still
            // sharp — any cut that decodes must be the canonical encoding
            // of what it decoded to (byte idempotence survives cutting).
            let self_delimiting = matches!(name, "dense-f32" | "uniform-8bit");
            for cut in 0..sbytes.len() {
                match wire::decode_state_coded(&sbytes[..cut], &state, codec.as_ref()) {
                    Err(_) => {}
                    Ok(_) if self_delimiting => {
                        panic!("case {case} {name}: state cut at {cut} decoded")
                    }
                    Ok(got) => assert_eq!(
                        wire::encode_state_coded(&got, codec.as_ref()),
                        sbytes[..cut].to_vec(),
                        "case {case} {name}: state cut at {cut} decoded non-canonically"
                    ),
                }
            }
            let vbytes = wire::encode_vector_coded(&v, codec.as_ref());
            let vback = wire::decode_vector_coded(&vbytes, v.len(), codec.as_ref())
                .unwrap_or_else(|e| panic!("case {case} {name}: vector decode: {e}"));
            assert_eq!(
                wire::encode_vector_coded(&vback, codec.as_ref()),
                vbytes,
                "case {case} {name}: coded vector re-encode not byte-identical"
            );
            for cut in 0..vbytes.len() {
                match wire::decode_vector_coded(&vbytes[..cut], v.len(), codec.as_ref()) {
                    Err(_) => {}
                    Ok(_) if self_delimiting => {
                        panic!("case {case} {name}: vector cut at {cut} decoded")
                    }
                    Ok(got) => assert_eq!(
                        wire::encode_vector_coded(&got, codec.as_ref()),
                        vbytes[..cut].to_vec(),
                        "case {case} {name}: vector cut at {cut} decoded non-canonically"
                    ),
                }
            }
            // Mutations stay total (Ok or Err, never panic or huge alloc).
            for _ in 0..6 {
                let mut buf = sbytes.clone();
                if !buf.is_empty() {
                    let i = (rng.next_u64() as usize) % buf.len();
                    buf[i] ^= 0x40;
                }
                let _ = wire::decode_state_coded(&buf, &state, codec.as_ref());
                let mut buf = vbytes.clone();
                if !buf.is_empty() {
                    let i = (rng.next_u64() as usize) % buf.len();
                    buf[i] ^= 0x40;
                }
                let _ = wire::decode_vector_coded(&buf, v.len(), codec.as_ref());
                let _ = wire::decode_vector_coded(&buf, v.len() + 1, codec.as_ref());
            }
        }
    }
}
