//! Chaos suite for the elastic TCP transport: scripted faults, worker
//! churn, quorum aborts, and reconnect with versioned state handoff.
//!
//! The load-bearing claim is **replayability**: a [`FaultPlan`] is a pure
//! value, the coordinator's reduce runs in worker-id order over the
//! survivor set, and rejoins happen at scheduled rounds — so running the
//! same plan twice must produce bit-identical decisions, estimates, final
//! parameters, and membership logs. Chaos that cannot be replayed cannot
//! be debugged; chaos that can be replayed is just another deterministic
//! trajectory.
//!
//! Hang guard: every socket carries an in-code timeout and the CI job
//! wraps the suite in an outer `timeout`, so an injected stall converts
//! to a typed drop, never a wedged run.

use fda::core::cluster::ClusterConfig;
use fda::core::fda::FdaConfig;
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::net::{
    run_chaos_with_spawned_workers, run_chaos_with_thread_workers, run_with_thread_workers,
    DropReason, FaultAction, FaultPlan, MemberEvent, MembershipEvent, NetError, NetReport,
    RejoinPolicy, RoundPolicy, WorkerOutcome,
};
use std::path::Path;
use std::time::Duration;

const IO_TIMEOUT: Duration = Duration::from_secs(15);

fn spec(k: usize, steps: u32) -> JobSpec {
    JobSpec {
        cluster: ClusterConfig {
            workers: k,
            ..ClusterConfig::small_test(k)
        },
        fda: FdaConfig::linear(0.01),
        codec: fda::comm::CodecSpec::Dense,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps,
        synth: SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        },
        task_name: "net-faults".to_string(),
    }
}

fn policy(min_workers: usize) -> RoundPolicy {
    RoundPolicy {
        min_workers,
        deposit_timeout: Duration::from_secs(10),
        admissions: Vec::new(),
    }
}

/// Bitwise comparison of two surviving trajectories.
fn assert_bit_identical(a: &NetReport, b: &NetReport, case: &str) {
    assert_eq!(a.decisions, b.decisions, "{case}: decisions diverged");
    assert_eq!(
        a.estimates.len(),
        b.estimates.len(),
        "{case}: estimate count diverged"
    );
    for (step, (x, y)) in a.estimates.iter().zip(&b.estimates).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{case}: estimate diverged at step {step}"
        );
    }
    assert_eq!(a.survivors, b.survivors, "{case}: survivor sets diverged");
    assert_eq!(a.events, b.events, "{case}: membership logs diverged");
    assert_eq!(a.syncs, b.syncs, "{case}: sync counts diverged");
    assert_eq!(
        a.worker_params, b.worker_params,
        "{case}: final replicas diverged"
    );
    assert_eq!(
        a.final_params, b.final_params,
        "{case}: final mean diverged"
    );
    assert_eq!(
        a.charged_bytes, b.charged_bytes,
        "{case}: charged accounting diverged"
    );
    assert_eq!(
        a.measured_payload_bytes, b.measured_payload_bytes,
        "{case}: measured accounting diverged"
    );
}

fn drops_of(report: &NetReport) -> Vec<MembershipEvent> {
    report
        .events
        .iter()
        .filter(|e| matches!(e.event, MemberEvent::Dropped(_)))
        .copied()
        .collect()
}

/// The acceptance scenario: K = 4 spawned worker **processes**, worker 2
/// scripted to die (process exit) before its step-4 state. The run must
/// complete with K′ = 3 survivors, and twice with the same plan must be
/// bit-identical end to end.
#[test]
fn k4_process_kill_survives_with_k3_bit_identically() {
    let spec = spec(4, 8);
    let node_bin = Path::new(env!("CARGO_BIN_EXE_fda_node"));
    let plan = FaultPlan::new().fault(2, FaultAction::ExitBeforeState(4));

    let run = || {
        run_chaos_with_spawned_workers(&spec, node_bin, &plan, policy(2), IO_TIMEOUT)
            .expect("chaos run should survive a single death")
    };
    let a = run();
    let b = run();

    assert_eq!(a.survivors, vec![0, 1, 3], "worker 2 must be gone");
    assert_eq!(a.worker_params.len(), 3);
    assert_eq!(a.decisions.len(), 8, "all rounds ran");
    assert_eq!(
        drops_of(&a),
        vec![MembershipEvent {
            round: 4,
            worker: 2,
            event: MemberEvent::Dropped(DropReason::Disconnect),
        }],
        "exactly one drop, at the scripted round"
    );
    assert!(
        a.decisions.iter().any(|&d| d),
        "horizon should exercise a post-drop model AllReduce"
    );
    assert_bit_identical(&a, &b, "k4 process kill");
}

/// Dropping below quorum aborts with the typed error — naming the round
/// and the headcount — instead of hanging or half-finishing.
#[test]
fn below_quorum_aborts_with_typed_error() {
    let spec = spec(4, 8);
    let plan = FaultPlan::new()
        .fault(1, FaultAction::KillBeforeState(3))
        .fault(2, FaultAction::KillBeforeState(3));

    let (report, workers) =
        run_chaos_with_thread_workers(&spec, &plan, policy(3), None, IO_TIMEOUT);
    match report {
        Err(NetError::Quorum {
            round,
            alive,
            min_workers,
        }) => {
            assert_eq!(round, 3);
            assert_eq!(alive, 2);
            assert_eq!(min_workers, 3);
        }
        other => panic!("expected quorum abort, got {other:?}"),
    }
    // The scripted workers ended by fault; the innocent ones lost their
    // coordinator and ended with a (retryable, but unretried) error.
    for id in [1usize, 2] {
        assert!(
            matches!(workers[id], Ok(WorkerOutcome::Faulted { step: 3, .. })),
            "worker {id} should have faulted at step 3: {:?}",
            workers[id]
        );
    }
    for id in [0usize, 3] {
        assert!(workers[id].is_err(), "worker {id} should have lost the run");
    }
}

/// A bit-flipped state frame fails the checksum and becomes a clean
/// per-worker protocol drop; the survivors' trajectory is replayable.
#[test]
fn corrupt_frame_drops_worker_as_protocol_violation() {
    let spec = spec(3, 6);
    let plan = FaultPlan::new().fault(1, FaultAction::FlipStateBit { step: 2, bit: 137 });

    let run = || run_chaos_with_thread_workers(&spec, &plan, policy(1), None, IO_TIMEOUT);
    let (a, workers_a) = run();
    let (b, _) = run();
    let a = a.expect("run survives a corrupt frame");
    let b = b.expect("run survives a corrupt frame");

    assert_eq!(a.survivors, vec![0, 2]);
    assert_eq!(
        drops_of(&a),
        vec![MembershipEvent {
            round: 2,
            worker: 1,
            event: MemberEvent::Dropped(DropReason::Protocol),
        }]
    );
    assert!(
        workers_a[1].is_err(),
        "the corrupting worker loses its session"
    );
    assert_bit_identical(&a, &b, "corrupt frame");
}

/// A stalled worker trips the round's deposit deadline and is dropped as
/// a timeout; the round completes with the remaining workers.
#[test]
fn stalled_worker_is_dropped_on_deposit_deadline() {
    let spec = spec(3, 5);
    let plan = FaultPlan::new().fault(2, FaultAction::StallState { step: 1, ms: 4_000 });
    let tight = RoundPolicy {
        min_workers: 1,
        deposit_timeout: Duration::from_millis(1_000),
        admissions: Vec::new(),
    };

    let (report, workers) =
        run_chaos_with_thread_workers(&spec, &plan, tight.clone(), None, IO_TIMEOUT);
    let report = report.expect("run survives a stalled worker");
    assert_eq!(report.survivors, vec![0, 1]);
    assert_eq!(report.decisions.len(), 5, "all rounds ran");
    assert_eq!(
        drops_of(&report),
        vec![MembershipEvent {
            round: 1,
            worker: 2,
            event: MemberEvent::Dropped(DropReason::Timeout),
        }]
    );
    assert!(workers[2].is_err(), "the stalled worker loses its session");
}

/// The full elastic loop: worker 3's state frame is truncated mid-wire at
/// round 2 (a disconnect), it reconnects with backoff, and the scheduled
/// admission re-admits it at round 5 through the versioned `Resume`
/// handoff. All four workers finish; the whole churn trajectory —
/// including the rejoined replica's parameters — is bit-identical across
/// repeats.
#[test]
fn truncated_worker_rejoins_at_scheduled_round_bit_identically() {
    let spec = spec(4, 9);
    let plan = FaultPlan::new()
        .fault(3, FaultAction::TruncateState { step: 2, keep: 9 })
        .admit(5, 3);
    let policy = RoundPolicy {
        min_workers: 1,
        deposit_timeout: Duration::from_secs(10),
        admissions: plan.admissions.clone(),
    };
    let rejoin = RejoinPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
    };

    let run =
        || run_chaos_with_thread_workers(&spec, &plan, policy.clone(), Some(rejoin), IO_TIMEOUT);
    let (a, workers_a) = run();
    let (b, _) = run();
    let a = a.expect("elastic run completes");
    let b = b.expect("elastic run completes");

    assert_eq!(a.survivors, vec![0, 1, 2, 3], "everyone finishes");
    assert_eq!(a.worker_params.len(), 4);
    assert_eq!(a.decisions.len(), 9);
    let churn: Vec<MembershipEvent> = a
        .events
        .iter()
        .filter(|e| !matches!(e.event, MemberEvent::Joined { rejoin: false }))
        .copied()
        .collect();
    assert_eq!(
        churn,
        vec![
            MembershipEvent {
                round: 2,
                worker: 3,
                event: MemberEvent::Dropped(DropReason::Disconnect),
            },
            MembershipEvent {
                round: 5,
                worker: 3,
                event: MemberEvent::Joined { rejoin: true },
            },
        ],
        "one drop at round 2, one scheduled rejoin at round 5"
    );
    match &workers_a[3] {
        Ok(WorkerOutcome::Completed(summary)) => {
            assert_eq!(summary.rejoins, 1, "exactly one reconnect");
        }
        other => panic!("rejoined worker should complete: {other:?}"),
    }
    assert_bit_identical(&a, &b, "truncate + rejoin");
}

/// The elastic loop under a delta-coded downlink: worker 3 is truncated
/// off the run at round 2 and re-admitted at round 5. Steady-state
/// consensus rides `AvgModelDelta` frames, but the `Resume` handoff stays
/// a dense snapshot — so the rejoining replica lands on the exact
/// reconstruction consensus and the whole churn trajectory, delta frames
/// and all, replays bit for bit.
#[test]
fn truncated_worker_rejoins_under_delta_downlink_bit_identically() {
    let mut spec = spec(4, 9);
    // Θ = 0 keeps a model AllReduce — and therefore a delta downlink — in
    // every round, including the rejoin round.
    spec.fda = FdaConfig::linear(0.0);
    spec.downlink = fda::comm::DownlinkSpec::Delta {
        codec: fda::comm::CodecSpec::Uniform8 { chunk: 256 },
    };
    let plan = FaultPlan::new()
        .fault(3, FaultAction::TruncateState { step: 2, keep: 9 })
        .admit(5, 3);
    let policy = RoundPolicy {
        min_workers: 1,
        deposit_timeout: Duration::from_secs(10),
        admissions: plan.admissions.clone(),
    };
    let rejoin = RejoinPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
    };

    let run =
        || run_chaos_with_thread_workers(&spec, &plan, policy.clone(), Some(rejoin), IO_TIMEOUT);
    let (a, workers_a) = run();
    let (b, _) = run();
    let a = a.expect("elastic delta run completes");
    let b = b.expect("elastic delta run completes");

    assert_eq!(a.survivors, vec![0, 1, 2, 3], "everyone finishes");
    assert!(a.decisions.iter().all(|&d| d), "Θ = 0 syncs every round");
    assert!(
        a.downlink_model_bytes > 0,
        "delta downlinks actually went out"
    );
    match &workers_a[3] {
        Ok(WorkerOutcome::Completed(summary)) => {
            assert_eq!(summary.rejoins, 1, "exactly one reconnect");
        }
        other => panic!("rejoined worker should complete: {other:?}"),
    }
    assert_eq!(
        a.measured_payload_bytes, a.charged_bytes,
        "measured == charged holds under churn + delta downlink"
    );
    assert_eq!(
        a.downlink_model_bytes, b.downlink_model_bytes,
        "delta frame bytes replay"
    );
    assert_bit_identical(&a, &b, "truncate + rejoin under delta downlink");
}

/// The zero-fault chaos path is the plain path: an empty plan through the
/// chaos driver must reproduce `run_with_thread_workers` bit for bit,
/// with full membership and measured == charged accounting.
#[test]
fn empty_plan_matches_clean_run_bitwise() {
    let spec = spec(3, 6);
    let (chaos, workers) = run_chaos_with_thread_workers(
        &spec,
        &FaultPlan::new(),
        RoundPolicy::default(),
        None,
        IO_TIMEOUT,
    );
    let chaos = chaos.expect("zero-fault chaos run");
    let clean = run_with_thread_workers(&spec).expect("clean run");

    assert_bit_identical(&chaos, &clean, "zero-fault vs clean");
    assert_eq!(chaos.survivors, vec![0, 1, 2]);
    assert!(drops_of(&chaos).is_empty(), "no drops without faults");
    assert_eq!(
        chaos.measured_payload_bytes, chaos.charged_bytes,
        "measured == charged still holds through the chaos driver"
    );
    for (id, w) in workers.iter().enumerate() {
        assert!(
            matches!(w, Ok(WorkerOutcome::Completed(_))),
            "worker {id} should complete: {w:?}"
        );
    }
}

/// Seeded plans are values: the same seed draws the same chaos, and a
/// drawn plan never schedules worker 0 (quorum floor).
#[test]
fn seeded_plans_replay() {
    for seed in [1u64, 7, 42, 0xDEAD] {
        let a = FaultPlan::from_seed(seed, 6, 12);
        let b = FaultPlan::from_seed(seed, 6, 12);
        assert_eq!(a.faults, b.faults, "seed {seed} must replay");
        assert!(!a.has_fault(0), "seed {seed}: worker 0 must be spared");
    }
}
