//! Golden-trajectory regression suite for the training stack.
//!
//! A short LeNet FDA run with every `f32` pinned: per-round FNV-1a hashes
//! over the bit patterns of the global model, the variance estimate and the
//! sync decision. Any change to the numeric path — GEMM kernel dispatch,
//! activation layout, reduction association, RNG streams — shows up as a
//! hash mismatch here *before* it silently shifts a paper figure.
//!
//! Two layers of defense, in order of strength:
//!
//! 1. **Pooled-vs-sequential bit-identity** (host-independent): for
//!    K ∈ {1, 2, 4} the persistent-pool runtime must reproduce the
//!    sequential trajectory bit-for-bit, per the repo's copy-first
//!    worker-order reduction convention.
//! 2. **Pinned hashes** (host-pinned): the sequential K = 4 trajectory must
//!    match the constants below exactly. The wide arithmetic runs on the
//!    dispatched SIMD kernel arm (`fda_tensor::simd`), so the bits are
//!    bound to the build host's best ISA (AVX-512 FMA on the perf host) —
//!    a host without that arm, or a run under `FDA_FORCE_KERNEL`, lands on
//!    different (equally deterministic) bits; the softmax `exp` comes from
//!    libm, so a different libm *could* shift them too. Within one host and
//!    arm the bits are stable across rebuilds and optimization levels. If
//!    a deliberate numeric change (or a new build host) moves the
//!    trajectory, re-pin once by running with `GOLDEN_PRINT=1` and pasting
//!    the printed list — after convincing yourself the change is
//!    intentional. (Pinned under the AVX-512 arm since the SIMD dispatch
//!    layer landed.)

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig};
use fda::core::strategy::Strategy;
use fda::data::synth::SynthSpec;
use fda::data::{Partition, TaskData};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;

const ROUNDS: usize = 8;

/// The pinned per-round trajectory hashes for `golden_config(4, false)`
/// (sequential LeNet, linear monitor, Θ = 0.02, seed 0x601D). Re-pin with
/// `GOLDEN_PRINT=1 cargo test --test golden_trajectory -- --nocapture`.
const GOLDEN_HASHES: [u64; ROUNDS] = [
    0x223364979a77ed3e,
    0x7b047caaa230b67f,
    0x11a52cfa9b399f0a,
    0xcca6ef051b18db2c,
    0xa0850abfdcb277fc,
    0xcfa8afd0120f6b1c,
    0x66032717c68600fb,
    0x876ba893cb0923e9,
];

fn task() -> TaskData {
    SynthSpec {
        n_train: 280,
        n_test: 80,
        ..SynthSpec::synth_mnist()
    }
    .generate("golden")
}

fn golden_config(k: usize, parallel: bool) -> ClusterConfig {
    ClusterConfig {
        model: ModelId::Lenet5,
        workers: k,
        batch_size: 16,
        optimizer: OptimizerKind::paper_adam(),
        partition: Partition::Iid,
        seed: 0x601D,
        parallel,
    }
}

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn write_f32_bits(&mut self, vals: &[f32]) {
        for v in vals {
            self.write_u64(v.to_bits() as u64);
        }
    }
}

/// One round's digest: every worker's full parameter vector, the variance
/// estimate and the sync decision, all by bit pattern.
fn round_hash(fda: &Fda, synced: bool, estimate: Option<f32>) -> u64 {
    let mut h = Fnv::new();
    for w in 0..fda.cluster().workers() {
        h.write_f32_bits(&fda.cluster().worker(w).params());
    }
    h.write_u64(synced as u64);
    h.write_u64(estimate.map_or(u64::MAX, |e| e.to_bits() as u64));
    h.0
}

/// Runs `ROUNDS` FDA steps and returns the per-round digests.
fn run_trajectory(k: usize, parallel: bool, task: &TaskData) -> Vec<u64> {
    let mut fda = Fda::new(FdaConfig::linear(0.02), golden_config(k, parallel), task);
    (0..ROUNDS)
        .map(|_| {
            let r = fda.step();
            round_hash(&fda, r.synced, r.variance_estimate)
        })
        .collect()
}

/// Layer 1 (host-independent): pooled K ∈ {1, 2, 4} reproduces the
/// sequential trajectory bit-for-bit at every round.
#[test]
fn pooled_k124_bit_identical_to_sequential() {
    let task = task();
    for k in [1usize, 2, 4] {
        let seq = run_trajectory(k, false, &task);
        let pooled = run_trajectory(k, true, &task);
        assert_eq!(
            seq, pooled,
            "K = {k}: pooled trajectory diverged from sequential"
        );
    }
}

/// Layer 2 (host-pinned): the sequential K = 4 trajectory matches the
/// golden hashes exactly.
#[test]
fn sequential_trajectory_matches_golden_hashes() {
    // The constants above are pinned under the AVX-512 kernel arm (the
    // build host's dispatch default). On a host — or CI runner — whose
    // dispatched arm differs, the trajectory lands on different (equally
    // deterministic) bits, so comparing against these constants would be
    // noise, not signal: skip with a note instead of failing. GitHub's
    // shared runner fleet mixes AVX-512 and non-AVX-512 CPUs, so this
    // gate is what keeps plain `cargo test` green there while the perf
    // build host still exercises the pinned layer via tier-1.
    let arm = fda::tensor::simd::kernels();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        // Re-pinning is valid on any arm (the constants then belong to
        // that arm — note it in the comment above), so the print path
        // runs before the arm gate.
        let got = run_trajectory(4, false, &task());
        println!("// pinned under the {} arm", arm.name());
        println!("const GOLDEN_HASHES: [u64; ROUNDS] = [");
        for h in &got {
            println!("    {h:#018x},");
        }
        println!("];");
        return;
    }
    if arm.isa != fda::tensor::simd::Isa::Avx512 {
        eprintln!(
            "skipping pinned-hash layer: hashes are pinned under the avx512 \
             arm, dispatched arm here is {}",
            arm.name()
        );
        return;
    }
    let got = run_trajectory(4, false, &task());
    assert_eq!(
        got, GOLDEN_HASHES,
        "trajectory moved; if intentional, re-pin with GOLDEN_PRINT=1 \
         (got {got:#018x?})"
    );
}

/// The trajectory hash must actually depend on the numerics it digests —
/// a different seed must produce different hashes (guards against a
/// degenerate digest pinning all-zeros).
#[test]
fn golden_hash_is_sensitive() {
    let task = task();
    let a = run_trajectory(2, false, &task);
    let mut other_cfg = golden_config(2, false);
    other_cfg.seed ^= 1;
    let mut fda = Fda::new(FdaConfig::linear(0.02), other_cfg, &task);
    let b: Vec<u64> = (0..ROUNDS)
        .map(|_| {
            let r = fda.step();
            round_hash(&fda, r.synced, r.variance_estimate)
        })
        .collect();
    assert_ne!(a, b, "digest insensitive to the model trajectory");
}
