//! TCP-transport parity suite: a multi-**process** FDA run over loopback
//! must be bit-identical to the sequential in-process simulator — final
//! parameters of every replica, per-round variance estimates, the full
//! sync-decision sequence — and the bytes *measured* on the sockets must
//! equal the bytes the simulator *charges*, exactly.
//!
//! This is the `pool_determinism.rs` pattern lifted across the process
//! boundary: same K × variant matrix, but every worker is a spawned
//! `fda_node` OS process and every state/model payload genuinely crosses
//! a TCP socket through `fda_core::wire`. On the single-core build host,
//! bit-identity (not speedup) is the correctness proof for the
//! distributed runtime.
//!
//! Hang guard: the coordinator and workers carry socket read timeouts, so
//! a wedged peer fails the test with an I/O error instead of blocking CI
//! forever (the workflow adds an outer `timeout` as a second fence).

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{Fda, FdaConfig, FdaVariant};
use fda::core::strategy::Strategy;
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::net::{run_with_spawned_workers, NetReport};
use std::path::Path;

const STEPS: u32 = 8;

fn spec(k: usize, fda: FdaConfig) -> JobSpec {
    JobSpec {
        cluster: ClusterConfig {
            workers: k,
            ..ClusterConfig::small_test(k)
        },
        fda,
        codec: fda::comm::CodecSpec::Dense,
        downlink: fda::comm::DownlinkSpec::Dense,
        steps: STEPS,
        synth: SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        },
        task_name: "net-parity".to_string(),
    }
}

fn variants() -> Vec<(&'static str, FdaConfig)> {
    // Θ small enough that the horizon exercises model AllReduces, so the
    // parity claim covers the expensive phase too (same values as
    // `pool_determinism.rs`).
    vec![
        ("sketch", FdaConfig::sketch_auto(0.01)),
        ("linear", FdaConfig::linear(0.01)),
        (
            "exact",
            FdaConfig {
                variant: FdaVariant::Exact,
                theta: 0.01,
            },
        ),
    ]
}

/// Runs the job on the sequential simulator and as a K-process TCP
/// cluster, then asserts bit-identity and measured-== -charged accounting.
fn assert_parity(k: usize, tag: &str, fda: FdaConfig) {
    let spec = spec(k, fda);
    let node_bin = Path::new(env!("CARGO_BIN_EXE_fda_node"));
    let report =
        run_with_spawned_workers(&spec, node_bin).unwrap_or_else(|e| panic!("k={k} {tag}: {e}"));

    let task = spec.synth.generate(&spec.task_name);
    let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
    let mut decisions = Vec::new();
    let mut estimates = Vec::new();
    for _ in 0..STEPS {
        let out = sim.step();
        decisions.push(out.synced);
        estimates.push(out.variance_estimate.expect("fda reports estimates"));
    }

    let case = format!("k={k} variant={tag}");
    assert_eq!(
        report.decisions, decisions,
        "{case}: sync schedule diverged"
    );
    for (step, (a, b)) in report.estimates.iter().zip(&estimates).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{case}: estimate diverged at step {step}"
        );
    }
    assert_eq!(report.syncs, sim.syncs(), "{case}: sync count diverged");
    for w in 0..k {
        assert_eq!(
            report.worker_params[w],
            sim.cluster().worker(w).params(),
            "{case}: worker {w} final replica diverged"
        );
    }
    assert_eq!(
        report.charged_bytes,
        sim.comm_bytes(),
        "{case}: TCP charged accounting != simulator"
    );
    assert_eq!(
        report.measured_payload_bytes, report.charged_bytes,
        "{case}: bytes measured on the socket != bytes charged"
    );
    if k > 1 {
        assert!(
            report.decisions.iter().any(|&d| d),
            "{case}: horizon should exercise at least one model AllReduce"
        );
        // Real frames cost real (framing) bytes on top of the payloads.
        assert!(
            report.raw_rx_bytes > report.measured_payload_bytes,
            "{case}: raw socket traffic must exceed the payload convention"
        );
    }
}

/// Runs a Θ = 0 job (every round is a model AllReduce, so dense and
/// delta runs share one frame schedule and their wire traffic is directly
/// comparable) under the given downlink spec, against a simulator with
/// the downlink mirrored via [`Fda::set_downlink`]. Asserts bit-identity
/// and measured == charged, then returns the report for cross-run byte
/// comparisons.
fn assert_downlink_parity(k: usize, tag: &str, downlink: fda::comm::DownlinkSpec) -> NetReport {
    let mut spec = spec(k, FdaConfig::linear(0.0));
    spec.downlink = downlink;
    let node_bin = Path::new(env!("CARGO_BIN_EXE_fda_node"));
    let report =
        run_with_spawned_workers(&spec, node_bin).unwrap_or_else(|e| panic!("k={k} {tag}: {e}"));

    let task = spec.synth.generate(&spec.task_name);
    let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
    sim.set_downlink(spec.downlink);
    let mut decisions = Vec::new();
    let mut estimates = Vec::new();
    for _ in 0..STEPS {
        let out = sim.step();
        decisions.push(out.synced);
        estimates.push(out.variance_estimate.expect("fda reports estimates"));
    }

    let case = format!("k={k} downlink={tag}");
    assert!(
        report.decisions.iter().all(|&d| d),
        "{case}: Θ = 0 must sync every round"
    );
    assert_eq!(
        report.decisions, decisions,
        "{case}: sync schedule diverged"
    );
    for (step, (a, b)) in report.estimates.iter().zip(&estimates).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{case}: estimate diverged at step {step}"
        );
    }
    for w in 0..k {
        assert_eq!(
            report.worker_params[w],
            sim.cluster().worker(w).params(),
            "{case}: worker {w} final replica diverged"
        );
    }
    assert_eq!(
        report.charged_bytes,
        sim.comm_bytes(),
        "{case}: TCP charged accounting != simulator"
    );
    assert_eq!(
        report.measured_payload_bytes, report.charged_bytes,
        "{case}: bytes measured on the socket != bytes charged"
    );
    report
}

/// The delta-downlink acceptance matrix: for K ∈ {2, 4}, a lossily coded
/// downlink reconstructs the same consensus as the simulator mirror bit
/// for bit, charges exactly the same (worker-uplink) bytes as dense, and
/// puts strictly fewer downlink and raw-transmit bytes on the wire.
#[test]
fn delta_downlink_matches_simulator_and_beats_dense_on_the_wire() {
    use fda::comm::{CodecSpec, DownlinkSpec};
    for k in [2usize, 4] {
        let dense = assert_downlink_parity(k, "dense", DownlinkSpec::Dense);
        let delta = assert_downlink_parity(
            k,
            "delta-uniform8",
            DownlinkSpec::Delta {
                codec: CodecSpec::Uniform8 { chunk: 256 },
            },
        );
        assert_eq!(
            delta.charged_bytes, dense.charged_bytes,
            "k={k}: downlink coding must not change the charged (uplink) bytes"
        );
        assert!(
            delta.downlink_model_bytes < dense.downlink_model_bytes,
            "k={k}: coded downlink ({}) must undercut the dense broadcast ({})",
            delta.downlink_model_bytes,
            dense.downlink_model_bytes
        );
        assert!(
            delta.raw_tx_bytes < dense.raw_tx_bytes,
            "k={k}: coded downlink must shrink raw coordinator tx ({} vs {})",
            delta.raw_tx_bytes,
            dense.raw_tx_bytes
        );
    }
}

/// `Delta { codec: Dense }` takes the delta wire path (AvgModelDelta
/// frames, reconstruction at the worker) and must still agree with its
/// simulator mirror bit for bit.
#[test]
fn delta_dense_downlink_is_bit_identical_to_its_mirror() {
    use fda::comm::{CodecSpec, DownlinkSpec};
    assert_downlink_parity(
        2,
        "delta-dense",
        DownlinkSpec::Delta {
            codec: CodecSpec::Dense,
        },
    );
}

/// The acceptance matrix: K = 4 processes for every monitor variant.
#[test]
fn k4_processes_match_simulator_for_all_variants() {
    for (tag, fda) in variants() {
        assert_parity(4, tag, fda);
    }
}

/// K coverage: the degenerate single-process cluster and the K = 2 pair
/// (LinearFDA keeps the K sweep cheap; the full variant matrix runs at
/// K = 4 above).
#[test]
fn k1_and_k2_processes_match_simulator() {
    assert_parity(1, "linear", FdaConfig::linear(0.01));
    assert_parity(2, "linear", FdaConfig::linear(0.01));
    assert_parity(2, "sketch", FdaConfig::sketch_auto(0.01));
}
