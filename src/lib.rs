//! # fda — Federated Dynamic Averaging
//!
//! Umbrella crate re-exporting the full FDA reproduction workspace:
//!
//! * [`core`] (`fda-core`) — the FDA algorithms (SketchFDA, LinearFDA) and
//!   baselines (Synchronous, Local-SGD, FedAvg, FedAvgM, FedAdam).
//! * [`nn`], [`optim`], [`data`], [`sketch`], [`comm`], [`tensor`] — the
//!   substrates (built from scratch; see `DESIGN.md`).
//! * [`net`] (`fda-net`) — the TCP coordinator/worker transport running
//!   the FDA loop across OS processes, bit-identical to the simulator
//!   (drive it with the `fda_node` binary).
//! * [`obs`] (`fda-obs`) — zero-dependency telemetry: metrics registry,
//!   spans, round-event JSONL schema, Prometheus scrape endpoint.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use fda_comm as comm;
pub use fda_core as core;
pub use fda_data as data;
pub use fda_net as net;
pub use fda_nn as nn;
pub use fda_obs as obs;
pub use fda_optim as optim;
pub use fda_sketch as sketch;
pub use fda_tensor as tensor;
