//! `fda_node` — one node of the TCP FDA cluster.
//!
//! Roles:
//!
//! * `fda_node worker --connect <addr> --id <k>` — join a coordinator as
//!   worker `k`; the job config arrives over the socket.
//! * `fda_node coordinator --workers <K> [options]` — bind, wait for `K`
//!   externally started workers, run the job, print a JSON report.
//! * `fda_node demo --workers <K> [options]` — coordinator that spawns its
//!   own `K` worker processes from this binary (the one-command loopback
//!   deployment; also what the parity suite drives).
//!
//! Common options (coordinator/demo): `--model lenet5`, `--variant
//! sketch|linear|exact`, `--theta <f32>`, `--steps <n>`, `--seed <n>`,
//! `--batch <n>`, `--train <n>`, `--test <n>`, `--listen <addr>`.

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{FdaConfig, FdaVariant};
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::data::Partition;
use fda::net::{run_with_spawned_workers, Coordinator, NetReport, NetWorker};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  fda_node worker --connect <addr> --id <k> [--timeout-secs <t>]\n  \
         fda_node coordinator --workers <K> [--listen <addr>] [job options]\n  \
         fda_node demo --workers <K> [job options]\n\n\
         job options: --model lenet5|vgg16|densenet121|densenet201|transfer\n               \
         --variant sketch|linear|exact  --theta <f32>  --steps <n>\n               \
         --seed <n>  --batch <n>  --train <n>  --test <n>"
    );
    std::process::exit(2);
}

/// Pulls the value following `--flag`, if present.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| usage()).clone())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match opt_value(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fda_node: bad value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn job_from_args(args: &[String]) -> JobSpec {
    let workers: usize = parse(args, "--workers", 4);
    let model = match opt_value(args, "--model").as_deref() {
        None | Some("lenet5") => ModelId::Lenet5,
        Some("vgg16") => ModelId::Vgg16Star,
        Some("densenet121") => ModelId::DenseNet121,
        Some("densenet201") => ModelId::DenseNet201,
        Some("transfer") => ModelId::TransferHead,
        Some(other) => {
            eprintln!("fda_node: unknown model {other}");
            std::process::exit(2);
        }
    };
    let variant = match opt_value(args, "--variant").as_deref() {
        None | Some("sketch") => FdaVariant::SketchAuto,
        Some("linear") => FdaVariant::Linear,
        Some("exact") => FdaVariant::Exact,
        Some(other) => {
            eprintln!("fda_node: unknown variant {other}");
            std::process::exit(2);
        }
    };
    JobSpec {
        cluster: ClusterConfig {
            model,
            workers,
            batch_size: parse(args, "--batch", 16),
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            seed: parse(args, "--seed", 7u64),
            parallel: false,
        },
        fda: FdaConfig {
            variant,
            theta: parse(args, "--theta", 0.02f32),
        },
        steps: parse(args, "--steps", 20u32),
        synth: SynthSpec {
            n_train: parse(args, "--train", 960),
            n_test: parse(args, "--test", 240),
            ..SynthSpec::synth_mnist()
        },
        task_name: "fda-node".to_string(),
    }
}

fn print_report(report: &NetReport, spec: &JobSpec) {
    let decisions: Vec<String> = report
        .decisions
        .iter()
        .map(|d| if *d { "1" } else { "0" }.to_string())
        .collect();
    println!(
        "{{\n  \"workers\": {},\n  \"variant\": \"{}\",\n  \"theta\": {},\n  \"steps\": {},\n  \
         \"syncs\": {},\n  \"decisions\": \"{}\",\n  \"charged_bytes\": {},\n  \
         \"measured_payload_bytes\": {},\n  \"raw_tx_bytes\": {},\n  \"raw_rx_bytes\": {},\n  \
         \"measured_equals_charged\": {}\n}}",
        spec.cluster.workers,
        spec.fda.variant.name(),
        spec.fda.theta,
        spec.steps,
        report.syncs,
        decisions.join(""),
        report.charged_bytes,
        report.measured_payload_bytes,
        report.raw_tx_bytes,
        report.raw_rx_bytes,
        report.measured_payload_bytes == report.charged_bytes,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let role = args.first().map(String::as_str);
    match role {
        Some("worker") => {
            let addr = opt_value(&args, "--connect").unwrap_or_else(|| usage());
            let id: u32 = parse(&args, "--id", u32::MAX);
            if id == u32::MAX {
                usage();
            }
            let timeout = Duration::from_secs(parse(&args, "--timeout-secs", 20u64));
            let mut worker = NetWorker::connect(addr.as_str(), id, timeout).unwrap_or_else(|e| {
                eprintln!("fda_node worker {id}: connect failed: {e}");
                std::process::exit(1);
            });
            match worker.run() {
                Ok(summary) => {
                    eprintln!(
                        "fda_node worker {id}: done ({} steps, {} syncs)",
                        summary.steps, summary.syncs
                    );
                }
                Err(e) => {
                    eprintln!("fda_node worker {id}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("coordinator") => {
            let spec = job_from_args(&args);
            let listen = opt_value(&args, "--listen").unwrap_or("127.0.0.1:0".to_string());
            let coordinator = Coordinator::bind(listen.as_str()).unwrap_or_else(|e| {
                eprintln!("fda_node coordinator: bind failed: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "fda_node coordinator: waiting for {} workers on {}",
                spec.cluster.workers,
                coordinator.local_addr().expect("bound listener"),
            );
            match coordinator.run(&spec) {
                Ok(report) => print_report(&report, &spec),
                Err(e) => {
                    eprintln!("fda_node coordinator: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("demo") => {
            let spec = job_from_args(&args);
            let node_bin = std::env::current_exe().expect("own binary path");
            match run_with_spawned_workers(&spec, &node_bin) {
                Ok(report) => print_report(&report, &spec),
                Err(e) => {
                    eprintln!("fda_node demo: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
