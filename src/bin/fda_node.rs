//! `fda_node` — one node of the TCP FDA cluster.
//!
//! Roles:
//!
//! * `fda_node worker --connect <addr> --id <k>` — join a coordinator as
//!   worker `k`; the job config arrives over the socket. `--fault <spec>`
//!   (repeatable; e.g. `kill@3`, `stall@2:500`, `flip@4:17`, `trunc@1:9`,
//!   `exit@5`) injects scripted faults, `--rejoin <attempts>` enables
//!   reconnect-with-resume after a lost session. A terminal scripted
//!   fault exits with code 86 so harnesses can tell scripted deaths from
//!   crashes.
//! * `fda_node coordinator --workers <K> [options]` — bind, wait for `K`
//!   externally started workers, run the job, print a JSON report.
//! * `fda_node demo --workers <K> [options]` — coordinator that spawns its
//!   own `K` worker processes from this binary (the one-command loopback
//!   deployment; also what the parity suite drives). `--fault <w>:<spec>`
//!   scripts a fault into spawned worker `w`.
//!
//! Common options (coordinator/demo): `--model lenet5`, `--variant
//! sketch|linear|exact`, `--theta <f32>`, `--steps <n>`, `--seed <n>`,
//! `--batch <n>`, `--train <n>`, `--test <n>`, `--listen <addr>`,
//! `--min-workers <n>`, `--deposit-timeout-ms <ms>`.
//!
//! Observability (coordinator/demo): `--telemetry <path>` streams the
//! versioned round-event JSONL (`fda_obs` schema) to `path`;
//! `--metrics-addr <addr>` enables the metrics registry and serves
//! Prometheus text exposition over HTTP at `addr`. The run report printed
//! on stdout is the schema's one-line `"run"` record.

use fda::core::cluster::ClusterConfig;
use fda::core::fda::{FdaConfig, FdaVariant};
use fda::core::wire::JobSpec;
use fda::data::synth::SynthSpec;
use fda::data::Partition;
use fda::net::{
    run_chaos_with_spawned_workers_telemetry, run_event, run_worker, Coordinator, FaultAction,
    FaultPlan, NetReport, RejoinPolicy, RoundPolicy, WorkerOptions, WorkerOutcome, FAULT_EXIT_CODE,
};
use fda::nn::zoo::ModelId;
use fda::optim::OptimizerKind;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  fda_node worker --connect <addr> --id <k> [--timeout-secs <t>]\n               \
         [--fault <spec>]... [--rejoin <attempts>]\n  \
         fda_node coordinator --workers <K> [--listen <addr>] [job options]\n  \
         fda_node demo --workers <K> [--fault <w>:<spec>]... [job options]\n\n\
         job options: --model lenet5|vgg16|densenet121|densenet201|transfer\n               \
         --variant sketch|linear|exact  --theta <f32>  --steps <n>\n               \
         --seed <n>  --batch <n>  --train <n>  --test <n>\n               \
         --codec dense|uniform8[:chunk]|topk:<k>|driftmask:<t>\n               \
         --min-workers <n>  --deposit-timeout-ms <ms>\n               \
         --telemetry <path>  --metrics-addr <addr>\n\n\
         fault specs: kill@N  exit@N  stall@N:<ms>  flip@N:<bit>  trunc@N:<keep>"
    );
    std::process::exit(2);
}

/// Pulls the value following `--flag`, if present.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| usage()).clone())
}

/// Pulls every value following a repeatable `--flag`.
fn opt_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .map(|(i, _)| args.get(i + 1).unwrap_or_else(|| usage()).clone())
        .collect()
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match opt_value(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fda_node: bad value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn job_from_args(args: &[String]) -> JobSpec {
    let workers: usize = parse(args, "--workers", 4);
    let model = match opt_value(args, "--model").as_deref() {
        None | Some("lenet5") => ModelId::Lenet5,
        Some("vgg16") => ModelId::Vgg16Star,
        Some("densenet121") => ModelId::DenseNet121,
        Some("densenet201") => ModelId::DenseNet201,
        Some("transfer") => ModelId::TransferHead,
        Some(other) => {
            eprintln!("fda_node: unknown model {other}");
            std::process::exit(2);
        }
    };
    let variant = match opt_value(args, "--variant").as_deref() {
        None | Some("sketch") => FdaVariant::SketchAuto,
        Some("linear") => FdaVariant::Linear,
        Some("exact") => FdaVariant::Exact,
        Some(other) => {
            eprintln!("fda_node: unknown variant {other}");
            std::process::exit(2);
        }
    };
    let codec = match opt_value(args, "--codec") {
        None => fda::comm::CodecSpec::Dense,
        Some(v) => fda::comm::CodecSpec::parse(&v).unwrap_or_else(|e| {
            eprintln!("fda_node: bad --codec {v}: {e}");
            std::process::exit(2);
        }),
    };
    let downlink = match opt_value(args, "--downlink") {
        None => fda::comm::DownlinkSpec::Dense,
        Some(v) => fda::comm::DownlinkSpec::parse(&v).unwrap_or_else(|e| {
            eprintln!("fda_node: bad --downlink {v}: {e}");
            std::process::exit(2);
        }),
    };
    JobSpec {
        cluster: ClusterConfig {
            model,
            workers,
            batch_size: parse(args, "--batch", 16),
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            seed: parse(args, "--seed", 7u64),
            parallel: false,
        },
        fda: FdaConfig {
            variant,
            theta: parse(args, "--theta", 0.02f32),
        },
        codec,
        downlink,
        steps: parse(args, "--steps", 20u32),
        synth: SynthSpec {
            n_train: parse(args, "--train", 960),
            n_test: parse(args, "--test", 240),
            ..SynthSpec::synth_mnist()
        },
        task_name: "fda-node".to_string(),
    }
}

fn round_policy_from_args(args: &[String]) -> RoundPolicy {
    RoundPolicy {
        min_workers: parse(args, "--min-workers", 1usize),
        deposit_timeout: Duration::from_millis(parse(args, "--deposit-timeout-ms", 30_000u64)),
        admissions: Vec::new(),
    }
}

/// Prints the run report: the telemetry schema's `"run"` record, one line
/// of versioned JSON (`fda_obs` SCHEMA_VERSION) — parse it, don't regex it.
fn print_report(report: &NetReport, spec: &JobSpec) {
    println!("{}", run_event(report, spec).to_json());
}

/// Handles `--telemetry` / `--metrics-addr`: returns the telemetry sink
/// path (threaded to the coordinator) and, when scraping is requested,
/// the live metrics server (kept alive for the whole run) after globally
/// enabling the registry.
fn obs_from_args(args: &[String]) -> (Option<PathBuf>, Option<fda::obs::MetricsServer>) {
    let telemetry = opt_value(args, "--telemetry").map(PathBuf::from);
    let server = opt_value(args, "--metrics-addr").map(|addr| {
        let server = fda::obs::MetricsServer::bind(addr.as_str()).unwrap_or_else(|e| {
            eprintln!("fda_node: metrics bind {addr} failed: {e}");
            std::process::exit(1);
        });
        fda::obs::set_enabled(true);
        eprintln!(
            "fda_node: serving metrics on http://{}/metrics",
            server.addr()
        );
        server
    });
    (telemetry, server)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let role = args.first().map(String::as_str);
    match role {
        Some("worker") => {
            let addr = opt_value(&args, "--connect").unwrap_or_else(|| usage());
            let id: u32 = parse(&args, "--id", u32::MAX);
            if id == u32::MAX {
                usage();
            }
            let timeout = Duration::from_secs(parse(&args, "--timeout-secs", 20u64));
            let faults: Vec<FaultAction> = opt_values(&args, "--fault")
                .iter()
                .map(|s| {
                    FaultAction::parse_arg(s).unwrap_or_else(|e| {
                        eprintln!("fda_node worker {id}: {e}");
                        std::process::exit(2);
                    })
                })
                .collect();
            let rejoin_attempts: u32 = parse(&args, "--rejoin", 0u32);
            let opts = WorkerOptions {
                connect_timeout: timeout,
                rejoin: (rejoin_attempts > 0).then(|| RejoinPolicy {
                    max_attempts: rejoin_attempts,
                    ..RejoinPolicy::default()
                }),
                faults,
                exit_process_on_fault: true,
                backoff_seed: u64::from(id),
                ..WorkerOptions::default()
            };
            match run_worker(addr.as_str(), id, &opts) {
                Ok(WorkerOutcome::Completed(summary)) => {
                    eprintln!(
                        "fda_node worker {id}: done ({} steps, {} syncs, {} rejoins)",
                        summary.steps, summary.syncs, summary.rejoins
                    );
                }
                // `exit_process_on_fault` normally exits before this arm;
                // keep it as a backstop so the contract holds regardless.
                Ok(WorkerOutcome::Faulted { step, action }) => {
                    eprintln!(
                        "fda_node worker {id}: scripted fault {} at step {step}",
                        action.to_arg()
                    );
                    std::process::exit(FAULT_EXIT_CODE);
                }
                Err(e) => {
                    eprintln!("fda_node worker {id}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("coordinator") => {
            let spec = job_from_args(&args);
            let (telemetry, _metrics) = obs_from_args(&args);
            let listen = opt_value(&args, "--listen").unwrap_or("127.0.0.1:0".to_string());
            let mut coordinator = Coordinator::bind(listen.as_str()).unwrap_or_else(|e| {
                eprintln!("fda_node coordinator: bind failed: {e}");
                std::process::exit(1);
            });
            coordinator.set_policy(round_policy_from_args(&args));
            if let Some(path) = telemetry {
                coordinator.set_telemetry(path);
            }
            eprintln!(
                "fda_node coordinator: waiting for {} workers on {}",
                spec.cluster.workers,
                coordinator.local_addr().expect("bound listener"),
            );
            match coordinator.run(&spec) {
                Ok(report) => print_report(&report, &spec),
                Err(e) => {
                    eprintln!("fda_node coordinator: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("demo") => {
            let spec = job_from_args(&args);
            let mut plan = FaultPlan::new();
            for spec_str in opt_values(&args, "--fault") {
                let parsed = spec_str
                    .split_once(':')
                    .ok_or_else(|| format!("demo fault '{spec_str}': expected <worker>:<spec>"))
                    .and_then(|(w, rest)| {
                        let worker: u32 = w
                            .parse()
                            .map_err(|_| format!("demo fault '{spec_str}': bad worker '{w}'"))?;
                        Ok((worker, FaultAction::parse_arg(rest)?))
                    });
                match parsed {
                    Ok((worker, action)) => plan = plan.fault(worker, action),
                    Err(e) => {
                        eprintln!("fda_node demo: {e}");
                        std::process::exit(2);
                    }
                }
            }
            let node_bin = std::env::current_exe().expect("own binary path");
            let policy = round_policy_from_args(&args);
            let (telemetry, _metrics) = obs_from_args(&args);
            match run_chaos_with_spawned_workers_telemetry(
                &spec,
                &node_bin,
                &plan,
                policy,
                Duration::from_secs(60),
                telemetry.as_deref(),
            ) {
                Ok(report) => print_report(&report, &spec),
                Err(e) => {
                    eprintln!("fda_node demo: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
