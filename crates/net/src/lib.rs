//! # fda-net — FDA over real sockets.
//!
//! Every other driver in the workspace (sequential simulator, pooled
//! [`fda_core::pool::WorkerPool`], [`fda_comm::ThreadedReducer`]) lives in
//! one OS process and *charges* communication bytes analytically. This
//! crate is the deployment path the paper's efficiency claim is about: the
//! full FDA loop across **OS processes**, every local state and model
//! payload actually serialized through `fda_core::wire` and shipped over
//! TCP.
//!
//! Two properties are load-bearing, and both are asserted by tests:
//!
//! 1. **Bit-identity** — the coordinator reduces deposited states and
//!    models in worker-id order with the repo's copy-first association
//!    (model AllReduces literally run through [`fda_comm::SimNetwork`]),
//!    and workers rebuild their replicas via
//!    [`fda_core::cluster::ClusterConfig::build_worker`], so a K-process
//!    TCP run reproduces the sequential simulator's trajectory — every
//!    parameter bit, every estimate, every sync decision. On a single-core
//!    host this is *the* correctness proof for a distributed runtime
//!    (`tests/net_parity.rs` at the workspace root).
//! 2. **Measured = charged** — the simulator's byte accounting is
//!    validated against the payloads that actually cross the sockets:
//!    [`coordinator::NetReport::measured_payload_bytes`] (counted
//!    frame-by-frame as they arrive) must equal
//!    [`coordinator::NetReport::charged_bytes`] exactly; raw socket
//!    counters additionally expose the (small) framing overhead the
//!    paper's convention ignores.
//!
//! A third property arrived with the failure layer: **churn survival**.
//! Rounds have a deposit deadline and a `min_workers` quorum; a worker
//! that times out, disconnects or corrupts a frame is dropped from the
//! round (the id-order reduce runs over the survivors), dropped workers
//! can rejoin through a versioned `Resume` handoff, every frame carries a
//! membership epoch so zombie deposits are rejected, and the whole thing
//! is driven by a seeded, replayable [`fault::FaultPlan`]
//! (`tests/net_faults.rs` at the workspace root; DESIGN.md § "Failure
//! model").
//!
//! ## Layout
//!
//! * [`frame`] — length-prefixed, checksummed, epoch-stamped frame
//!   protocol and byte counters.
//! * [`protocol`] — typed messages (hello/config/resume/state/decision/
//!   model/shutdown) with `fda_core::wire` payloads and the stale-epoch
//!   receive filter.
//! * [`coordinator`] — the deposit → id-order reduce → broadcast
//!   rendezvous, with per-round drop/quorum/rejoin handling.
//! * [`worker`] — the per-process worker loop over the simulator's own
//!   `Worker::step_once`, with backoff reconnect and scripted faults.
//! * [`fault`] — deterministic fault plans, backoff, rejoin policy.
//! * [`harness`] — thread-worker and spawned-process run drivers, clean
//!   and chaos variants.

pub mod coordinator;
pub mod fault;
pub mod frame;
pub mod harness;
pub mod protocol;
pub mod worker;

pub use coordinator::{
    run_event, Coordinator, DropReason, MemberEvent, MembershipEvent, NetReport, RoundPolicy,
};
pub use fault::{Backoff, FaultAction, FaultPlan, RejoinPolicy, FAULT_EXIT_CODE};
pub use frame::{FrameKind, NetError, PROTOCOL_VERSION};
pub use harness::{
    run_chaos_with_spawned_workers, run_chaos_with_spawned_workers_telemetry,
    run_chaos_with_thread_workers, run_with_spawned_workers, run_with_thread_workers,
    run_with_thread_workers_telemetry,
};
pub use protocol::{recv_at_epoch, Msg, MAX_STALE_FRAMES};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome, WorkerSummary};
