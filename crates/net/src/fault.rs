//! Deterministic fault injection for the socket transport.
//!
//! Chaos testing a distributed protocol is only useful if a failing run
//! can be *replayed*: a [`FaultPlan`] is a pure value — which worker does
//! what, at which step, plus when the coordinator re-admits a rejoiner —
//! so the same plan always produces the same membership trajectory, and
//! the surviving workers' numerics are bit-identical across repeats.
//!
//! Faults are injected at the message layer, step-indexed: each
//! [`FaultAction`] fires when the worker is about to upload the state for
//! a given step. That keeps the schedule independent of TCP segmentation
//! and buffering, which a byte- or frame-counting stream wrapper would
//! couple it to.

use std::time::Duration;

/// Exit code a spawned worker process uses when a scripted fault tells it
/// to die (distinguishable from a genuine crash in the harness reaper).
pub const FAULT_EXIT_CODE: i32 = 86;

/// One scripted fault, anchored to the step whose state upload it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Shut the socket down instead of sending step `N`'s state: the
    /// coordinator sees a clean disconnect. The worker stays alive (thread
    /// mode) and reports a `Faulted` outcome, or exits with
    /// [`FAULT_EXIT_CODE`] in process mode.
    KillBeforeState(u32),
    /// Like [`FaultAction::KillBeforeState`], but a spawned worker exits
    /// the whole process immediately — the hard-kill variant.
    ExitBeforeState(u32),
    /// Sleep for the given milliseconds before sending step `N`'s state —
    /// long stalls trip the coordinator's deposit deadline (timeout drop),
    /// short ones just add latency.
    StallState {
        /// Step whose upload is delayed.
        step: u32,
        /// Delay in milliseconds.
        ms: u32,
    },
    /// Flip one bit of step `N`'s encoded state frame (past the length
    /// field, so the coordinator reads a full frame and the checksum —
    /// not a short read — catches it).
    FlipStateBit {
        /// Step whose frame is corrupted.
        step: u32,
        /// Bit index into the frame bytes after the 4-byte length field.
        bit: u32,
    },
    /// Send only the first `keep` bytes of step `N`'s frame, then shut the
    /// socket down: the coordinator sees a mid-frame disconnect.
    TruncateState {
        /// Step whose frame is cut short.
        step: u32,
        /// Bytes of the frame actually written.
        keep: u32,
    },
}

impl FaultAction {
    /// The step this fault fires at.
    pub fn step(&self) -> u32 {
        match *self {
            FaultAction::KillBeforeState(s) | FaultAction::ExitBeforeState(s) => s,
            FaultAction::StallState { step, .. }
            | FaultAction::FlipStateBit { step, .. }
            | FaultAction::TruncateState { step, .. } => step,
        }
    }

    /// Whether the fault is terminal for the connection (the worker will
    /// not complete the run on this connection).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, FaultAction::StallState { .. })
    }

    /// Compact CLI form, e.g. `kill@3`, `stall@3:5000` — what
    /// `fda_node worker --fault` parses.
    pub fn to_arg(&self) -> String {
        match *self {
            FaultAction::KillBeforeState(s) => format!("kill@{s}"),
            FaultAction::ExitBeforeState(s) => format!("exit@{s}"),
            FaultAction::StallState { step, ms } => format!("stall@{step}:{ms}"),
            FaultAction::FlipStateBit { step, bit } => format!("flip@{step}:{bit}"),
            FaultAction::TruncateState { step, keep } => format!("trunc@{step}:{keep}"),
        }
    }

    /// Parses the [`FaultAction::to_arg`] form.
    pub fn parse_arg(s: &str) -> Result<FaultAction, String> {
        let (name, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("fault spec '{s}': expected <kind>@<step>[:<arg>]"))?;
        let parse_u32 = |v: &str| {
            v.parse::<u32>()
                .map_err(|_| format!("fault spec '{s}': bad number '{v}'"))
        };
        let (step_str, arg) = match rest.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let step = parse_u32(step_str)?;
        match (name, arg) {
            ("kill", None) => Ok(FaultAction::KillBeforeState(step)),
            ("exit", None) => Ok(FaultAction::ExitBeforeState(step)),
            ("stall", Some(a)) => Ok(FaultAction::StallState {
                step,
                ms: parse_u32(a)?,
            }),
            ("flip", Some(a)) => Ok(FaultAction::FlipStateBit {
                step,
                bit: parse_u32(a)?,
            }),
            ("trunc", Some(a)) => Ok(FaultAction::TruncateState {
                step,
                keep: parse_u32(a)?,
            }),
            _ => Err(format!("fault spec '{s}': unknown kind or missing arg")),
        }
    }
}

/// A full, replayable chaos schedule: per-worker faults plus the rounds at
/// which the coordinator re-admits rejoining workers.
///
/// The admission schedule is what makes *rejoin* deterministic: a
/// reconnect's timing depends on OS scheduling and backoff sleeps, so the
/// coordinator parks arriving rejoiners and admits each at its scripted
/// round — waiting for it if it has not arrived yet — exactly like a
/// scripted network in a simulation-tested system.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(worker_id, action)` pairs.
    pub faults: Vec<(u32, FaultAction)>,
    /// `(round, worker_id)`: re-admit `worker_id` at the start of `round`.
    pub admissions: Vec<(u32, u32)>,
}

impl FaultPlan {
    /// An empty plan (no faults, no scheduled admissions).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault for `worker`.
    pub fn fault(mut self, worker: u32, action: FaultAction) -> FaultPlan {
        self.faults.push((worker, action));
        self
    }

    /// Schedules `worker`'s re-admission at the start of `round`.
    pub fn admit(mut self, round: u32, worker: u32) -> FaultPlan {
        self.admissions.push((round, worker));
        self
    }

    /// Derives a plan from a seed: each worker independently draws whether
    /// it dies (kill or exit) at some mid-run step. Purely a convenience
    /// for randomized chaos sweeps — the plan, once drawn, is a value and
    /// replays exactly.
    pub fn from_seed(seed: u64, workers: u32, steps: u32) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for w in 0..workers {
            // ~1 in 3 workers faults; never all of them (worker 0 is spared
            // so a drawn plan always keeps quorum ≥ 1).
            if w > 0 && rng.next().is_multiple_of(3) && steps > 1 {
                let step = 1 + (rng.next() % u64::from(steps - 1)) as u32;
                let action = if rng.next().is_multiple_of(2) {
                    FaultAction::KillBeforeState(step)
                } else {
                    FaultAction::ExitBeforeState(step)
                };
                plan.faults.push((w, action));
            }
        }
        plan
    }

    /// The faults scheduled for one worker, in step order.
    pub fn faults_for(&self, worker: u32) -> Vec<FaultAction> {
        let mut v: Vec<FaultAction> = self
            .faults
            .iter()
            .filter(|(w, _)| *w == worker)
            .map(|&(_, a)| a)
            .collect();
        v.sort_by_key(|a| a.step());
        v
    }

    /// Whether any fault targets `worker` (the harness reaper uses this to
    /// accept a scripted death's exit status).
    pub fn has_fault(&self, worker: u32) -> bool {
        self.faults.iter().any(|(w, _)| *w == worker)
    }

    /// The `--fault` CLI arguments for one spawned worker.
    pub fn worker_args(&self, worker: u32) -> Vec<String> {
        self.faults_for(worker)
            .iter()
            .flat_map(|a| ["--fault".to_string(), a.to_arg()])
            .collect()
    }
}

/// How a worker retries after losing its connection mid-run.
#[derive(Debug, Clone, Copy)]
pub struct RejoinPolicy {
    /// Reconnect attempts before giving up (each attempt is itself a
    /// backoff-paced connect loop under `connect_timeout`).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RejoinPolicy {
    fn default() -> RejoinPolicy {
        RejoinPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Exponential backoff with jitter: delay `i` is uniform in
/// `[base·2^i / 2, base·2^i)`, capped at `cap` — the standard
/// "decorrelated-ish" shape that avoids reconnect stampedes while keeping
/// the expected delay growing geometrically.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// Creates a backoff sequence; `seed` only perturbs the jitter.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The next delay in the sequence.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16); // 2^16 · base already ≫ any cap we use
        self.attempt += 1;
        let full = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .as_micros() as u64;
        let jittered = full / 2 + self.rng.next() % (full / 2 + 1);
        Duration::from_micros(jittered)
    }

    /// Resets the sequence to the first delay (after a successful connect).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// SplitMix64 — tiny, dependency-free PRNG for jitter and plan drawing.
/// Not used anywhere numerics-bearing.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator; infinite stream
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_arg_roundtrip() {
        let actions = [
            FaultAction::KillBeforeState(3),
            FaultAction::ExitBeforeState(0),
            FaultAction::StallState { step: 2, ms: 1500 },
            FaultAction::FlipStateBit { step: 4, bit: 17 },
            FaultAction::TruncateState { step: 1, keep: 9 },
        ];
        for a in actions {
            assert_eq!(FaultAction::parse_arg(&a.to_arg()).unwrap(), a);
        }
        assert!(FaultAction::parse_arg("kill").is_err());
        assert!(FaultAction::parse_arg("stall@2").is_err());
        assert!(FaultAction::parse_arg("blowup@2").is_err());
        assert!(FaultAction::parse_arg("flip@x:1").is_err());
    }

    #[test]
    fn plan_from_seed_is_deterministic_and_spares_worker_zero() {
        let a = FaultPlan::from_seed(1234, 8, 20);
        let b = FaultPlan::from_seed(1234, 8, 20);
        assert_eq!(a.faults, b.faults);
        assert!(!a.has_fault(0), "worker 0 must never be scheduled to die");
        let c = FaultPlan::from_seed(99, 8, 20);
        // Different seeds draw different plans with overwhelming likelihood;
        // this seed pair does differ.
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn faults_for_sorts_by_step() {
        let plan = FaultPlan::new()
            .fault(2, FaultAction::StallState { step: 5, ms: 10 })
            .fault(2, FaultAction::StallState { step: 1, ms: 10 })
            .fault(3, FaultAction::KillBeforeState(2));
        let f = plan.faults_for(2);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].step(), 1);
        assert_eq!(f[1].step(), 5);
        assert_eq!(
            plan.worker_args(3),
            vec!["--fault".to_string(), "kill@2".to_string()]
        );
        assert!(plan.worker_args(0).is_empty());
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 7);
        let d0 = b.next_delay();
        assert!(
            d0 >= Duration::from_millis(5)
                && d0 < Duration::from_millis(10) + Duration::from_micros(1)
        );
        // After many attempts every delay sits in [cap/2, cap].
        for _ in 0..10 {
            b.next_delay();
        }
        for _ in 0..5 {
            let d = b.next_delay();
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(100));
        }
        b.reset();
        assert!(b.next_delay() < Duration::from_millis(11));
    }
}
