//! The TCP coordinator: deposit → deterministic reduce → broadcast.
//!
//! One FDA round on the wire is the same three-phase rendezvous as
//! [`fda_comm::ThreadedReducer`], with sockets in place of condvars:
//!
//! 1. **deposit** — every worker uploads its local state frame;
//! 2. **reduce** — the coordinator averages the decoded states **in
//!    worker-id order** (`LocalState::average_refs`: copy-first, then add
//!    id-ascending — the exact association of `SimNetwork::allreduce_mean`
//!    and the pooled `WorkerPool::chunked_mean`), evaluates `H(S̄_t)`, and
//!    decides;
//! 3. **broadcast** — every worker receives the averaged state plus the
//!    decision, so the conditional model AllReduce is cluster-consistent
//!    without an extra round.
//!
//! Model synchronizations run the *arithmetic and the charged accounting*
//! through an embedded [`SimNetwork`] — the identical code path the
//! sequential simulator executes — so a K-process TCP run is bit-identical
//! to the simulator by construction, and the charged byte counters are the
//! simulator's own. Independently, every data-plane frame that actually
//! crosses a socket is *measured* (payload convention and raw bytes); the
//! parity suite asserts measured == charged.

use crate::frame::{write_frame, CountingStream, FrameKind, NetError, PROTOCOL_VERSION};
use crate::protocol::Msg;
use fda_comm::{AccountingMode, SimNetwork};
use fda_core::monitor::LocalState;
use fda_core::wire::{encode_state, encode_vector, JobSpec};
use fda_tensor::vector;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Outcome of a coordinated TCP run — the transport-side mirror of a
/// simulator trajectory, for bit-parity checks and byte-accounting audits.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Model synchronizations performed.
    pub syncs: u64,
    /// Per-round sync decisions, in step order.
    pub decisions: Vec<bool>,
    /// Per-round variance estimates `H(S̄_t)`, in step order.
    pub estimates: Vec<f32>,
    /// Bytes charged by the embedded [`SimNetwork`] — the simulator's
    /// convention (state payload per step, `d·4` per sync, per worker).
    pub charged_bytes: u64,
    /// Bytes *measured* on the sockets under the same payload convention:
    /// every data-plane frame's `f32` payload, fed through the accounting
    /// mode as it arrived. Equals `charged_bytes` iff the traffic that
    /// actually crossed the fabric is exactly what the simulator charges.
    pub measured_payload_bytes: u64,
    /// Raw bytes the coordinator transmitted (framing, control plane and
    /// broadcasts included).
    pub raw_tx_bytes: u64,
    /// Raw bytes the coordinator received.
    pub raw_rx_bytes: u64,
    /// Every worker's final replica parameters, by worker id.
    pub worker_params: Vec<Vec<f32>>,
    /// Mean of the final replicas (uncharged evaluation model).
    pub final_params: Vec<f32>,
}

/// The rendezvous server side of the transport.
pub struct Coordinator {
    listener: TcpListener,
    accept_timeout: Duration,
    read_timeout: Duration,
}

/// One accepted worker connection.
struct Conn {
    stream: CountingStream<TcpStream>,
}

impl Conn {
    fn recv(&mut self) -> Result<Msg, NetError> {
        Msg::recv(&mut self.stream)
    }
}

impl Coordinator {
    /// Binds the rendezvous listener. `127.0.0.1:0` picks a free loopback
    /// port (read it back via [`Coordinator::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Coordinator, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Coordinator {
            listener,
            accept_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(60),
        })
    }

    /// The bound address workers should connect to.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Replaces the hang guards: how long to wait for all `K` workers to
    /// connect, and the per-read/per-write socket timeout thereafter. A
    /// worker that stalls past the I/O timeout — silent on a read, or not
    /// draining its receive buffer on a write — fails the run with an I/O
    /// error instead of wedging the rendezvous (and CI) forever.
    pub fn set_timeouts(&mut self, accept: Duration, io: Duration) {
        self.accept_timeout = accept;
        self.read_timeout = io;
    }

    /// Accepts `k` workers, handshakes, and indexes them by worker id.
    fn accept_workers(&self, k: usize) -> Result<Vec<Conn>, NetError> {
        self.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + self.accept_timeout;
        let mut slots: Vec<Option<Conn>> = (0..k).map(|_| None).collect();
        let mut accepted = 0usize;
        while accepted < k {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.read_timeout))?;
                    stream.set_write_timeout(Some(self.read_timeout))?;
                    let mut conn = Conn {
                        stream: CountingStream::new(stream),
                    };
                    let (version, id) = match conn.recv()? {
                        Msg::Hello { version, worker_id } => (version, worker_id as usize),
                        other => {
                            return Err(NetError::Protocol(format!(
                                "expected hello, got {}",
                                other.kind_name()
                            )));
                        }
                    };
                    if version != PROTOCOL_VERSION {
                        return Err(NetError::Protocol(format!(
                            "worker {id} speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"
                        )));
                    }
                    if id >= k {
                        return Err(NetError::Protocol(format!(
                            "worker id {id} out of range for K = {k}"
                        )));
                    }
                    if slots[id].is_some() {
                        return Err(NetError::Protocol(format!("duplicate worker id {id}")));
                    }
                    slots[id] = Some(conn);
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Protocol(format!(
                            "only {accepted}/{k} workers connected within {:?}",
                            self.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        self.listener.set_nonblocking(false)?;
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all accepted"))
            .collect())
    }

    /// Broadcasts one pre-encoded frame to every worker, in id order.
    fn broadcast(conns: &mut [Conn], kind: FrameKind, payload: &[u8]) -> Result<(), NetError> {
        for conn in conns.iter_mut() {
            write_frame(&mut conn.stream, kind, payload)?;
        }
        Ok(())
    }

    /// Runs the full FDA job across `spec.cluster.workers` TCP workers and
    /// returns the trajectory report. Blocks until the run completes or a
    /// timeout/protocol violation fails it.
    ///
    /// # Panics
    /// Panics on degenerate specs (`workers == 0` or `steps == 0`).
    pub fn run(&self, spec: &JobSpec) -> Result<NetReport, NetError> {
        let k = spec.cluster.workers;
        assert!(k >= 1, "coordinator: need at least one worker");
        assert!(spec.steps >= 1, "coordinator: need at least one step");
        let dim = spec.cluster.model.build(spec.cluster.seed, 0).param_count();
        let monitor = spec.fda.variant.build_monitor(dim);
        let mode = AccountingMode::PerWorkerPayload;

        let mut conns = self.accept_workers(k)?;
        let config_payload = fda_core::wire::encode_job(spec);
        Self::broadcast(&mut conns, FrameKind::Config, &config_payload)?;

        // Charged accounting and model-AllReduce arithmetic: the
        // simulator's own code path.
        let mut net = SimNetwork::new(k);
        let mut measured_payload = 0u64;
        let mut states: Vec<Option<LocalState>> = (0..k).map(|_| None).collect();
        let mut model_bufs: Vec<Vec<f32>> = vec![Vec::new(); k];
        let mut decisions = Vec::with_capacity(spec.steps as usize);
        let mut estimates = Vec::with_capacity(spec.steps as usize);
        let mut syncs = 0u64;

        for step in 0..spec.steps {
            // (1) Deposit: one state frame per worker, read in id order.
            for (id, conn) in conns.iter_mut().enumerate() {
                let msg = conn.recv()?;
                measured_payload += mode.per_worker_bytes(msg.accounted_bytes(), k);
                match msg {
                    Msg::State(s) => states[id] = Some(s),
                    other => {
                        return Err(NetError::Protocol(format!(
                            "step {step}: expected state from worker {id}, got {}",
                            other.kind_name()
                        )));
                    }
                }
            }
            net.charge_allreduce(monitor.state_bytes());

            // (2) Reduce in worker-id order + the decision.
            let refs: Vec<&LocalState> = states
                .iter()
                .map(|s| s.as_ref().expect("state deposited"))
                .collect();
            let avg = LocalState::average_refs(&refs);
            let estimate = monitor.estimate(&avg);
            let sync = estimate > spec.fda.theta;
            estimates.push(estimate);
            decisions.push(sync);

            // (3) Broadcast the averaged state + decision.
            let mut payload = vec![sync as u8];
            payload.extend_from_slice(&encode_state(&avg));
            Self::broadcast(&mut conns, FrameKind::AvgState, &payload)?;

            // (4) Conditional model AllReduce through the SimNetwork.
            if sync {
                for (id, conn) in conns.iter_mut().enumerate() {
                    let msg = conn.recv()?;
                    measured_payload += mode.per_worker_bytes(msg.accounted_bytes(), k);
                    match msg {
                        Msg::Model(v) if v.len() == dim => model_bufs[id] = v,
                        Msg::Model(v) => {
                            return Err(NetError::Protocol(format!(
                                "step {step}: worker {id} uploaded {} params, model has {dim}",
                                v.len()
                            )));
                        }
                        other => {
                            return Err(NetError::Protocol(format!(
                                "step {step}: expected model from worker {id}, got {}",
                                other.kind_name()
                            )));
                        }
                    }
                }
                net.allreduce_mean(&mut model_bufs);
                let payload = encode_vector(&model_bufs[0]);
                Self::broadcast(&mut conns, FrameKind::AvgModel, &payload)?;
                syncs += 1;
            }
        }

        // Final collection (uncharged, like `Cluster::average_params`).
        let mut worker_params: Vec<Vec<f32>> = Vec::with_capacity(k);
        for (id, conn) in conns.iter_mut().enumerate() {
            match conn.recv()? {
                Msg::FinalModel(v) if v.len() == dim => worker_params.push(v),
                Msg::FinalModel(v) => {
                    return Err(NetError::Protocol(format!(
                        "worker {id} final model has {} params, expected {dim}",
                        v.len()
                    )));
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected final model from worker {id}, got {}",
                        other.kind_name()
                    )));
                }
            }
        }
        Self::broadcast(&mut conns, FrameKind::Shutdown, &[])?;
        for conn in &mut conns {
            conn.stream.flush()?;
        }

        let refs: Vec<&[f32]> = worker_params.iter().map(|p| p.as_slice()).collect();
        let final_params = vector::mean(&refs);
        Ok(NetReport {
            syncs,
            decisions,
            estimates,
            charged_bytes: net.total_bytes(),
            measured_payload_bytes: measured_payload,
            raw_tx_bytes: conns.iter().map(|c| c.stream.tx_bytes()).sum(),
            raw_rx_bytes: conns.iter().map(|c| c.stream.rx_bytes()).sum(),
            worker_params,
            final_params,
        })
    }
}
