//! The TCP coordinator: deposit → deterministic reduce → broadcast,
//! surviving worker churn.
//!
//! One FDA round on the wire is the same three-phase rendezvous as
//! [`fda_comm::ThreadedReducer`], with sockets in place of condvars:
//!
//! 1. **deposit** — every live worker uploads its local state frame;
//! 2. **reduce** — the coordinator averages the decoded states **in
//!    worker-id order** (`LocalState::average_refs`: copy-first, then add
//!    id-ascending — the exact association of `SimNetwork::allreduce_mean`
//!    and the pooled `WorkerPool::chunked_mean`), evaluates `H(S̄_t)`, and
//!    decides;
//! 3. **broadcast** — every live worker receives the averaged state plus
//!    the decision, so the conditional model AllReduce is
//!    cluster-consistent without an extra round.
//!
//! Model synchronizations run the *arithmetic and the charged accounting*
//! through an embedded [`SimNetwork`] — the identical code path the
//! sequential simulator executes — so a K-process TCP run is bit-identical
//! to the simulator by construction, and the charged byte counters are the
//! simulator's own. Independently, every data-plane frame that actually
//! crosses a socket is *measured* (payload convention and raw bytes); the
//! parity suite asserts measured == charged.
//!
//! # Failure model
//!
//! Each round has a deposit deadline and a `min_workers` quorum
//! ([`RoundPolicy`]). A worker that times out, disconnects, or sends a
//! malformed frame is **dropped from the round**: its deposit is
//! discarded, the id-order reduce runs over the survivor set, and the run
//! continues with K′ < K. Every membership change bumps the **epoch**;
//! frames are stamped with it, and a connection's deposits are validated
//! against the epoch last announced *to that connection* — a zombie's
//! stale frames are skipped, never averaged. Dropping below quorum aborts
//! the run with [`NetError::Quorum`] instead of hanging or half-finishing.
//! A dropped worker may be re-admitted at a scheduled round
//! ([`RoundPolicy::admissions`]) via the versioned `Resume` handoff. The
//! full argument lives in DESIGN.md § "Failure model".

use crate::frame::{write_frame, CountingStream, FrameKind, NetError, PROTOCOL_VERSION};
use crate::protocol::{recv_at_epoch, recv_frame_at_epoch_into, Msg};
use fda_comm::{delta_downlink, AccountingMode, SimNetwork};
use fda_core::monitor::LocalState;
use fda_core::wire::{
    decode_state_coded, decode_vector_coded, encode_state_into, encode_vector, encode_vector_into,
    state_frame_overhead, JobSpec,
};
use fda_obs::{DropRecord, JsonlWriter, MembershipRecord, RoundEvent, RunEvent};
use fda_tensor::vector;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Why the coordinator dropped a worker from the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Missed the round's deposit deadline.
    Timeout,
    /// Socket closed or reset mid-protocol.
    Disconnect,
    /// Sent a frame that failed checksum/decode/shape validation, or the
    /// wrong message kind for the phase.
    Protocol,
}

impl DropReason {
    /// Stable lowercase name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            DropReason::Timeout => "timeout",
            DropReason::Disconnect => "disconnect",
            DropReason::Protocol => "protocol",
        }
    }
}

/// What happened to one worker's membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberEvent {
    /// The worker entered the run — at formation (`rejoin: false`) or via
    /// a scheduled re-admission after a drop (`rejoin: true`).
    Joined {
        /// Whether this join is a reconnect of a previously dropped worker.
        rejoin: bool,
    },
    /// The worker was dropped from the run.
    Dropped(DropReason),
}

/// One membership change, anchored to the round it took effect in.
/// Drops during the final replica collection use `round == steps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Round index the event took effect at.
    pub round: u32,
    /// Worker id.
    pub worker: u32,
    /// The change.
    pub event: MemberEvent,
}

/// Per-round liveness policy: deadline, quorum, and the deterministic
/// re-admission schedule.
#[derive(Debug, Clone)]
pub struct RoundPolicy {
    /// Abort with [`NetError::Quorum`] when fewer workers remain.
    pub min_workers: usize,
    /// Budget for collecting all of a round's deposits; a worker whose
    /// state has not arrived when the budget runs out is dropped.
    pub deposit_timeout: Duration,
    /// `(round, worker_id)`: re-admit `worker_id` at the start of `round`,
    /// *waiting* for it if it has not reconnected yet. Scheduling
    /// admissions — rather than admitting whenever a reconnect happens to
    /// land — is what makes a churn trajectory replayable: reconnect
    /// timing depends on OS scheduling and backoff jitter, the schedule
    /// does not.
    pub admissions: Vec<(u32, u32)>,
}

impl Default for RoundPolicy {
    fn default() -> RoundPolicy {
        RoundPolicy {
            min_workers: 1,
            deposit_timeout: Duration::from_secs(30),
            admissions: Vec::new(),
        }
    }
}

/// Outcome of a coordinated TCP run — the transport-side mirror of a
/// simulator trajectory, for bit-parity checks and byte-accounting audits.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Model synchronizations performed.
    pub syncs: u64,
    /// Per-round sync decisions, in step order.
    pub decisions: Vec<bool>,
    /// Per-round variance estimates `H(S̄_t)`, in step order.
    pub estimates: Vec<f32>,
    /// Bytes charged by the embedded [`SimNetwork`] — the simulator's
    /// convention (state payload per step, `d·4` per sync, per worker),
    /// summed across membership eras when the worker set changed.
    pub charged_bytes: u64,
    /// Bytes *measured* on the sockets under the same payload convention:
    /// every data-plane frame that was actually averaged, fed through the
    /// accounting mode at the round's live worker count. Equals
    /// `charged_bytes` iff the traffic that crossed the fabric is exactly
    /// what the simulator charges.
    pub measured_payload_bytes: u64,
    /// Raw bytes the coordinator transmitted (framing, control plane and
    /// broadcasts included), dropped connections included.
    pub raw_tx_bytes: u64,
    /// Raw bytes the coordinator received.
    pub raw_rx_bytes: u64,
    /// Frame-payload bytes of the consensus-model downlink broadcasts
    /// (`AvgModel`/`AvgModelDelta`), summed over workers and syncs —
    /// uncharged control-plane traffic, reported so delta downlinks can be
    /// audited against the dense baseline.
    pub downlink_model_bytes: u64,
    /// Final replica parameters of each worker that finished the run, in
    /// [`NetReport::survivors`] order (== worker-id order). On a fault-free
    /// run this is every worker, indexed by id.
    pub worker_params: Vec<Vec<f32>>,
    /// Mean of the surviving final replicas (uncharged evaluation model).
    pub final_params: Vec<f32>,
    /// Worker ids that completed the run, ascending.
    pub survivors: Vec<u32>,
    /// Every membership change, in occurrence order: K `Joined` events at
    /// round 0, then drops/rejoins as they happened.
    pub events: Vec<MembershipEvent>,
}

/// The rendezvous server side of the transport.
pub struct Coordinator {
    listener: TcpListener,
    accept_timeout: Duration,
    read_timeout: Duration,
    policy: RoundPolicy,
    telemetry: Option<PathBuf>,
}

/// One accepted worker connection.
///
/// `epoch` is the membership epoch last *stamped on a frame sent to this
/// peer* — the epoch the worker will echo back, and therefore the one its
/// deposits are validated against. It intentionally lags the
/// coordinator's global epoch until the next send: a worker that deposited
/// before learning of a concurrent membership change is not a zombie.
struct Conn {
    stream: CountingStream<TcpStream>,
    epoch: u32,
    /// Round-persistent receive buffer: [`Conn::recv_frame_current`]
    /// leaves the frame body here (kind byte + payload, so the payload is
    /// `rbuf[1..]`), and steady-state deposits never allocate per frame —
    /// the buffer only grows to the largest frame this peer ever sends.
    rbuf: Vec<u8>,
}

impl Conn {
    fn send_raw(&mut self, epoch: u32, kind: FrameKind, payload: &[u8]) -> Result<(), NetError> {
        self.epoch = epoch;
        write_frame(&mut self.stream, epoch, kind, payload)
    }

    fn recv_current(&mut self) -> Result<Msg, NetError> {
        recv_at_epoch(&mut self.stream, self.epoch)
    }

    /// Current-epoch receive at the frame layer — for uplink payloads
    /// whose decoding needs the job's codec and an expected shape. The
    /// payload lands in `self.rbuf` (at `rbuf[1..]`).
    fn recv_frame_current(&mut self) -> Result<FrameKind, NetError> {
        recv_frame_at_epoch_into(&mut self.stream, self.epoch, &mut self.rbuf)
    }

    fn set_read_timeout(&self, t: Duration) -> Result<(), NetError> {
        self.stream.get_ref().set_read_timeout(Some(t))?;
        Ok(())
    }
}

/// Closes a connection and banks its raw byte counters.
fn retire(conn: Conn, raw: &mut (u64, u64)) {
    raw.0 += conn.stream.tx_bytes();
    raw.1 += conn.stream.rx_bytes();
    let _ = conn.stream.get_ref().shutdown(std::net::Shutdown::Both);
}

/// Maps a per-connection receive/send error to the drop bucket the
/// membership log records.
fn drop_reason(e: &NetError) -> DropReason {
    match e {
        NetError::Timeout(_) => DropReason::Timeout,
        NetError::Disconnect(_) | NetError::Io(_) => DropReason::Disconnect,
        NetError::Decode(_) | NetError::Protocol(_) | NetError::Quorum { .. } => {
            DropReason::Protocol
        }
    }
}

impl Coordinator {
    /// Binds the rendezvous listener. `127.0.0.1:0` picks a free loopback
    /// port (read it back via [`Coordinator::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Coordinator, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Coordinator {
            listener,
            accept_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(60),
            policy: RoundPolicy::default(),
            telemetry: None,
        })
    }

    /// The bound address workers should connect to.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Replaces the hang guards: how long to wait for all `K` workers to
    /// connect (also the wait budget for a scheduled re-admission), and
    /// the per-read/per-write socket timeout outside the deposit phase. A
    /// worker that stalls past the I/O timeout — silent on a read, or not
    /// draining its receive buffer on a write — is dropped (or fails the
    /// run, during formation) instead of wedging the rendezvous forever.
    pub fn set_timeouts(&mut self, accept: Duration, io: Duration) {
        self.accept_timeout = accept;
        self.read_timeout = io;
    }

    /// Replaces the per-round liveness policy (quorum, deposit deadline,
    /// admission schedule).
    pub fn set_policy(&mut self, policy: RoundPolicy) {
        self.policy = policy;
    }

    /// Streams the versioned round-event JSONL ([`fda_obs`] schema) to
    /// `path`: one `"round"` record per FDA round — decision, estimate,
    /// per-worker deposit latency, drops, and the byte ledger — and one
    /// `"run"` summary record at the end. The stream is schema-identical
    /// to the simulator's (`RunConfig::with_telemetry`); only the
    /// `source` field differs.
    pub fn set_telemetry(&mut self, path: impl Into<PathBuf>) {
        self.telemetry = Some(path.into());
    }

    /// Accepts one connection and completes the hello handshake, returning
    /// the claimed worker id and last-seen epoch.
    fn handshake(&self, stream: TcpStream, k: usize) -> Result<(usize, u32, Conn), NetError> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.read_timeout))?;
        let mut conn = Conn {
            stream: CountingStream::new(stream),
            epoch: 0,
            rbuf: Vec::new(),
        };
        let (version, id, last_epoch) = match Msg::recv(&mut conn.stream)? {
            (
                Msg::Hello {
                    version,
                    worker_id,
                    last_epoch,
                },
                _,
            ) => (version, worker_id as usize, last_epoch),
            (other, _) => {
                return Err(NetError::Protocol(format!(
                    "expected hello, got {}",
                    other.kind_name()
                )));
            }
        };
        if version != PROTOCOL_VERSION {
            return Err(NetError::Protocol(format!(
                "worker {id} speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"
            )));
        }
        if id >= k {
            return Err(NetError::Protocol(format!(
                "worker id {id} out of range for K = {k}"
            )));
        }
        Ok((id, last_epoch, conn))
    }

    /// Accepts `k` workers, handshakes, and indexes them by worker id.
    fn accept_workers(&self, k: usize) -> Result<Vec<Conn>, NetError> {
        self.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + self.accept_timeout;
        let mut slots: Vec<Option<Conn>> = (0..k).map(|_| None).collect();
        let mut accepted = 0usize;
        while accepted < k {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let (id, _last_epoch, conn) = self.handshake(stream, k)?;
                    if slots[id].is_some() {
                        return Err(NetError::Protocol(format!("duplicate worker id {id}")));
                    }
                    slots[id] = Some(conn);
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Protocol(format!(
                            "only {accepted}/{k} workers connected within {:?}",
                            self.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all accepted"))
            .collect())
    }

    /// Drains pending reconnects into the parking lot without blocking.
    /// A hello claiming a currently-live id is a zombie and its connection
    /// is closed; a second reconnect of the same parked id replaces the
    /// first (the worker retried).
    fn drain_accepts(
        &self,
        k: usize,
        conns: &[Option<Conn>],
        pending: &mut Vec<(usize, Conn)>,
        raw: &mut (u64, u64),
    ) -> Result<(), NetError> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => match self.handshake(stream, k) {
                    Ok((id, _last_epoch, conn)) => {
                        if conns[id].is_some() {
                            retire(conn, raw);
                            continue;
                        }
                        if let Some(pos) = pending.iter().position(|(pid, _)| *pid == id) {
                            retire(pending.swap_remove(pos).1, raw);
                        }
                        pending.push((id, conn));
                    }
                    // A reconnect that fails its own handshake harms only
                    // itself; the run goes on.
                    Err(NetError::Io(e)) => return Err(NetError::Io(e)),
                    Err(_) => continue,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Runs the full FDA job across `spec.cluster.workers` TCP workers and
    /// returns the trajectory report. Blocks until the run completes, a
    /// membership drop takes it below quorum, or a formation failure.
    ///
    /// # Panics
    /// Panics on degenerate specs (`workers == 0` or `steps == 0`).
    pub fn run(&self, spec: &JobSpec) -> Result<NetReport, NetError> {
        let k = spec.cluster.workers;
        assert!(k >= 1, "coordinator: need at least one worker");
        assert!(spec.steps >= 1, "coordinator: need at least one step");
        let template = spec.cluster.model.build(spec.cluster.seed, 0);
        let dim = template.param_count();
        let w0 = template.params_flat();
        let monitor = spec.fda.variant.build_monitor(dim);
        // Template for validating deposit shapes before `average_refs`.
        let state_shape = monitor.local_state(&vec![0.0f32; dim]);
        let mode = AccountingMode::PerWorkerPayload;
        // The job's uplink codec: State/Model payloads arrive encoded and
        // are decoded against the expected shape. Accounted bytes follow
        // the simulator's convention — a state charges its raw 4-byte
        // drift scalar plus the encoded summary (the tag/dims header is
        // uncharged self-description), a model charges its encoded
        // payload (minus the 4-byte length header).
        let codec = spec.codec.build();
        let coded = !spec.codec.is_dense();
        // The job's downlink mode: `Some(codec)` switches the consensus
        // broadcast to `AvgModelDelta` frames and makes the shared lossy
        // reconstruction the authoritative consensus (see
        // `fda_comm::delta_downlink`); `None` keeps the historical dense
        // `AvgModel` broadcast bit-for-bit.
        let downlink_codec = spec.downlink.build();
        let state_overhead = state_frame_overhead(&state_shape);
        let mut tele: Option<JsonlWriter> = match &self.telemetry {
            Some(path) => Some(JsonlWriter::create(path)?),
            None => None,
        };

        // Formation: accept all K, then the uniform join handshake —
        // Config followed by the versioned handoff. At formation the
        // handoff is `Resume { round: 0, model: w_0, prev: None }`, a
        // bitwise no-op for a fresh replica, so there is exactly one join
        // path for first joins and rejoins alike.
        let mut epoch: u32 = 1;
        let formed = self.accept_workers(k)?;
        let mut conns: Vec<Option<Conn>> = formed.into_iter().map(Some).collect();
        let config_payload = fda_core::wire::encode_job(spec);
        let mut resume_model = w0;
        let mut resume_prev: Option<Vec<f32>> = None;
        for conn in conns.iter_mut().flatten() {
            conn.send_raw(epoch, FrameKind::Config, &config_payload)?;
            let (kind, payload) = resume_msg(0, &resume_model, &resume_prev);
            conn.send_raw(epoch, kind, &payload)?;
        }

        // Charged accounting and model-AllReduce arithmetic: the
        // simulator's own code path. On a membership change the fabric is
        // rebuilt at the new K′ and the old era's charges are banked; a
        // fault-free run keeps one fabric end to end.
        let mut net = SimNetwork::new(k);
        let mut charged_banked = 0u64;
        let mut measured_payload = 0u64;
        let mut raw_retired = (0u64, 0u64); // (tx, rx) of closed conns
        let mut pending: Vec<(usize, Conn)> = Vec::new();
        let mut events: Vec<MembershipEvent> = (0..k as u32)
            .map(|w| MembershipEvent {
                round: 0,
                worker: w,
                event: MemberEvent::Joined { rejoin: false },
            })
            .collect();
        let mut decisions = Vec::with_capacity(spec.steps as usize);
        let mut estimates = Vec::with_capacity(spec.steps as usize);
        let mut syncs = 0u64;
        let mut downlink_model_bytes = 0u64;

        // Round-persistent scratch: the broadcast payload is encoded once
        // per round into `bcast` and fanned out as a borrowed slice to
        // every worker (the frame layer stamps each header separately and
        // never copies the payload), and the per-worker deposit slots are
        // reset in place — the steady-state round loop performs a small
        // constant number of allocations.
        let mut bcast: Vec<u8> = Vec::new();
        let mut states: Vec<Option<LocalState>> = (0..k).map(|_| None).collect();
        let mut state_bytes: Vec<u64> = vec![0; k];
        let mut models: Vec<Option<Vec<f32>>> = (0..k).map(|_| None).collect();
        let mut model_bytes: Vec<u64> = vec![0; k];

        // Applies a batch of drops: close, log, bump the epoch once.
        let apply_drops = |drops: &[(usize, DropReason)],
                           round: u32,
                           conns: &mut Vec<Option<Conn>>,
                           events: &mut Vec<MembershipEvent>,
                           epoch: &mut u32,
                           raw: &mut (u64, u64)| {
            if drops.is_empty() {
                return;
            }
            for &(id, reason) in drops {
                let conn = conns[id].take().expect("dropping a live conn");
                retire(conn, raw);
                events.push(MembershipEvent {
                    round,
                    worker: id as u32,
                    event: MemberEvent::Dropped(reason),
                });
            }
            *epoch += 1;
        };
        let alive_ids =
            |conns: &Vec<Option<Conn>>| (0..k).filter(|&i| conns[i].is_some()).collect::<Vec<_>>();
        let quorum = |alive: usize, round: u32| -> Result<(), NetError> {
            if alive < self.policy.min_workers {
                Err(NetError::Quorum {
                    round,
                    alive,
                    min_workers: self.policy.min_workers,
                })
            } else {
                Ok(())
            }
        };

        for step in 0..spec.steps {
            // Telemetry bookkeeping: membership events and measured bytes
            // appended past these marks belong to this round.
            let events_mark = events.len();
            let measured_before = measured_payload;
            let mut deposit_us: Vec<(u32, u64)> = Vec::new();

            // (0) Scheduled re-admissions: wait for each worker due this
            // round, then replay the join handshake at the bumped epoch
            // with the current consensus state.
            let due: Vec<u32> = self
                .policy
                .admissions
                .iter()
                .filter(|&&(r, _)| r == step)
                .map(|&(_, w)| w)
                .collect();
            for w in due {
                let id = w as usize;
                if id >= k || conns[id].is_some() {
                    return Err(NetError::Protocol(format!(
                        "admission schedule: worker {w} at round {step} is not a dropped worker"
                    )));
                }
                let deadline = Instant::now() + self.accept_timeout;
                let mut conn = loop {
                    self.drain_accepts(k, &conns, &mut pending, &mut raw_retired)?;
                    if let Some(pos) = pending.iter().position(|(pid, _)| *pid == id) {
                        break pending.swap_remove(pos).1;
                    }
                    if Instant::now() >= deadline {
                        return Err(NetError::Protocol(format!(
                            "scheduled rejoin of worker {w} at round {step} did not arrive \
                             within {:?}",
                            self.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                };
                epoch += 1;
                conn.send_raw(epoch, FrameKind::Config, &config_payload)?;
                let (kind, payload) = resume_msg(step, &resume_model, &resume_prev);
                conn.send_raw(epoch, kind, &payload)?;
                conns[id] = Some(conn);
                events.push(MembershipEvent {
                    round: step,
                    worker: w,
                    event: MemberEvent::Joined { rejoin: true },
                });
            }

            // (1) Deposit: one state frame per live worker, read in id
            // order under the round's deadline.
            let deposit_deadline = Instant::now() + self.policy.deposit_timeout;
            states.fill(None);
            state_bytes.fill(0);
            let mut drops: Vec<(usize, DropReason)> = Vec::new();
            for id in 0..k {
                let Some(conn) = conns[id].as_mut() else {
                    continue;
                };
                let remaining = deposit_deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                conn.set_read_timeout(remaining)?;
                let t0 = tele.as_ref().map(|_| Instant::now());
                match conn.recv_frame_current() {
                    // The coded decoder validates tag, dims and payload
                    // totality against the expected template before any
                    // allocation; a mismatch is the same protocol drop a
                    // wrong-shaped dense deposit always was.
                    Ok(FrameKind::State) => {
                        match decode_state_coded(&conn.rbuf[1..], &state_shape, codec.as_ref()) {
                            Ok(s) => {
                                if let Some(t0) = t0 {
                                    deposit_us.push((id as u32, t0.elapsed().as_micros() as u64));
                                }
                                states[id] = Some(s);
                                state_bytes[id] = conn.rbuf.len() as u64 - 1 - state_overhead;
                            }
                            Err(_) => drops.push((id, DropReason::Protocol)),
                        }
                    }
                    Ok(_) => drops.push((id, DropReason::Protocol)),
                    Err(e) => drops.push((id, drop_reason(&e))),
                }
            }
            apply_drops(
                &drops,
                step,
                &mut conns,
                &mut events,
                &mut epoch,
                &mut raw_retired,
            );
            let alive = alive_ids(&conns);
            quorum(alive.len(), step)?;
            for &id in &alive {
                conns[id]
                    .as_ref()
                    .expect("alive")
                    .set_read_timeout(self.read_timeout)?;
            }

            // Charge the state AllReduce at the surviving K′ and measure
            // the deposits that were actually averaged. Dense keeps the
            // historical flat charge (`monitor.state_bytes()` per worker);
            // coded payloads charge exactly what each worker emitted.
            ensure_net(&mut net, &mut charged_banked, alive.len());
            if coded {
                let payloads: Vec<u64> = alive.iter().map(|&id| state_bytes[id]).collect();
                net.charge_per_worker(&payloads);
            } else {
                net.charge_allreduce(monitor.state_bytes());
            }
            for &id in &alive {
                measured_payload += mode.per_worker_bytes(state_bytes[id], alive.len());
            }
            let round_alive = alive.len() as u32;
            let measured_after_state = measured_payload;

            // (2) Reduce over the survivor set in worker-id order + the
            // decision.
            let refs: Vec<&LocalState> = alive
                .iter()
                .map(|&id| states[id].as_ref().expect("alive worker deposited"))
                .collect();
            let avg = LocalState::average_refs(&refs);
            let estimate = monitor.estimate(&avg);
            let sync = estimate > spec.fda.theta;
            estimates.push(estimate);
            decisions.push(sync);

            // (3) Broadcast the averaged state + decision — encoded once
            // into the round scratch, fanned out as a borrowed slice; a
            // failed write is a drop, not a run abort.
            bcast.clear();
            bcast.push(sync as u8);
            encode_state_into(&avg, &mut bcast);
            let mut drops: Vec<(usize, DropReason)> = Vec::new();
            for &id in &alive {
                let conn = conns[id].as_mut().expect("alive");
                if let Err(e) = conn.send_raw(epoch, FrameKind::AvgState, &bcast) {
                    drops.push((id, drop_reason(&e)));
                }
            }
            apply_drops(
                &drops,
                step,
                &mut conns,
                &mut events,
                &mut epoch,
                &mut raw_retired,
            );
            let alive = alive_ids(&conns);
            quorum(alive.len(), step)?;

            // (4) Conditional model AllReduce through the SimNetwork.
            if sync {
                models.fill(None);
                model_bytes.fill(0);
                let mut drops: Vec<(usize, DropReason)> = Vec::new();
                for &id in &alive {
                    let conn = conns[id].as_mut().expect("alive");
                    match conn.recv_frame_current() {
                        Ok(FrameKind::Model) => {
                            match decode_vector_coded(&conn.rbuf[1..], dim, codec.as_ref()) {
                                Ok(v) => {
                                    models[id] = Some(v);
                                    // Charge the encoded payload; the
                                    // 4-byte length header is framing.
                                    model_bytes[id] = conn.rbuf.len() as u64 - 1 - 4;
                                }
                                Err(_) => drops.push((id, DropReason::Protocol)),
                            }
                        }
                        Ok(_) => drops.push((id, DropReason::Protocol)),
                        Err(e) => drops.push((id, drop_reason(&e))),
                    }
                }
                apply_drops(
                    &drops,
                    step,
                    &mut conns,
                    &mut events,
                    &mut epoch,
                    &mut raw_retired,
                );
                let alive = alive_ids(&conns);
                quorum(alive.len(), step)?;

                ensure_net(&mut net, &mut charged_banked, alive.len());
                let mut bufs: Vec<Vec<f32>> = alive
                    .iter()
                    .map(|&id| models[id].take().expect("alive worker uploaded"))
                    .collect();
                if coded {
                    let payloads: Vec<u64> = alive.iter().map(|&id| model_bytes[id]).collect();
                    net.allreduce_mean_with(&mut bufs, &payloads);
                } else {
                    net.allreduce_mean(&mut bufs);
                }
                for &id in &alive {
                    measured_payload += mode.per_worker_bytes(model_bytes[id], alive.len());
                }

                // Downlink: encode the consensus once into the round
                // scratch — dense `AvgModel`, or the delta against the
                // previous broadcast under delta mode, in which case the
                // authoritative consensus becomes the shared lossy
                // reconstruction (what every worker will compute).
                let mean = bufs.swap_remove(0);
                bcast.clear();
                let (kind, consensus) = match &downlink_codec {
                    Some(dc) => {
                        let (payload, recon) = delta_downlink(&resume_model, &mean, dc.as_ref());
                        bcast.extend_from_slice(&(dim as u32).to_le_bytes());
                        bcast.extend_from_slice(&payload);
                        (FrameKind::AvgModelDelta, recon)
                    }
                    None => {
                        encode_vector_into(&mean, &mut bcast);
                        (FrameKind::AvgModel, mean)
                    }
                };
                let mut drops: Vec<(usize, DropReason)> = Vec::new();
                for &id in &alive {
                    let conn = conns[id].as_mut().expect("alive");
                    match conn.send_raw(epoch, kind, &bcast) {
                        Ok(()) => downlink_model_bytes += bcast.len() as u64,
                        Err(e) => drops.push((id, drop_reason(&e))),
                    }
                }
                apply_drops(
                    &drops,
                    step,
                    &mut conns,
                    &mut events,
                    &mut epoch,
                    &mut raw_retired,
                );
                quorum(alive_ids(&conns).len(), step)?;

                // The versioned handoff advances with the consensus (the
                // reconstruction, under delta mode — a rejoin's dense
                // `Resume` must hand over exactly what the survivors
                // hold).
                resume_prev = Some(std::mem::replace(&mut resume_model, consensus));
                syncs += 1;
            }

            if let Some(w) = tele.as_mut() {
                let drops: Vec<DropRecord> = events[events_mark..]
                    .iter()
                    .filter_map(|e| match e.event {
                        MemberEvent::Dropped(r) => Some(DropRecord {
                            worker: e.worker,
                            reason: r.as_str().to_string(),
                        }),
                        MemberEvent::Joined { .. } => None,
                    })
                    .collect();
                let ev = RoundEvent {
                    source: "net".into(),
                    round: step + 1,
                    epoch,
                    alive: round_alive,
                    decision: sync,
                    estimate,
                    theta: spec.fda.theta,
                    codec: spec.codec.name().into(),
                    state_bytes: measured_after_state - measured_before,
                    model_bytes: measured_payload - measured_after_state,
                    charged_bytes: charged_banked + net.total_bytes(),
                    measured_bytes: measured_payload,
                    deposit_us,
                    drops,
                };
                w.write(&ev.to_json())?;
            }
        }

        // Final collection (uncharged, like `Cluster::average_params`).
        let alive = alive_ids(&conns);
        let mut survivors: Vec<u32> = Vec::with_capacity(alive.len());
        let mut worker_params: Vec<Vec<f32>> = Vec::with_capacity(alive.len());
        let mut drops: Vec<(usize, DropReason)> = Vec::new();
        for &id in &alive {
            let conn = conns[id].as_mut().expect("alive");
            match conn.recv_current() {
                Ok(Msg::FinalModel(v)) if v.len() == dim => {
                    survivors.push(id as u32);
                    worker_params.push(v);
                }
                Ok(_) => drops.push((id, DropReason::Protocol)),
                Err(e) => drops.push((id, drop_reason(&e))),
            }
        }
        apply_drops(
            &drops,
            spec.steps,
            &mut conns,
            &mut events,
            &mut epoch,
            &mut raw_retired,
        );
        quorum(survivors.len(), spec.steps)?;
        for conn in conns.iter_mut().flatten() {
            conn.send_raw(epoch, FrameKind::Shutdown, &[])?;
            conn.stream.flush()?;
        }

        let refs: Vec<&[f32]> = worker_params.iter().map(|p| p.as_slice()).collect();
        let final_params = vector::mean(&refs);
        let live_tx: u64 = conns.iter().flatten().map(|c| c.stream.tx_bytes()).sum();
        let live_rx: u64 = conns.iter().flatten().map(|c| c.stream.rx_bytes()).sum();
        let parked_tx: u64 = pending.iter().map(|(_, c)| c.stream.tx_bytes()).sum();
        let parked_rx: u64 = pending.iter().map(|(_, c)| c.stream.rx_bytes()).sum();
        let report = NetReport {
            syncs,
            decisions,
            estimates,
            charged_bytes: charged_banked + net.total_bytes(),
            measured_payload_bytes: measured_payload,
            raw_tx_bytes: raw_retired.0 + live_tx + parked_tx,
            raw_rx_bytes: raw_retired.1 + live_rx + parked_rx,
            downlink_model_bytes,
            worker_params,
            final_params,
            survivors,
            events,
        };
        if let Some(mut w) = tele {
            w.write(&run_event(&report, spec).to_json())?;
            w.flush()?;
        }
        Ok(report)
    }
}

/// Builds the schema'd end-of-run summary record from a finished run — the
/// record `fda_node` prints as its run report and every telemetry stream
/// ends with. Membership events serialize as `"join"`, `"rejoin"`, or
/// `"drop-<reason>"`.
pub fn run_event(report: &NetReport, spec: &JobSpec) -> RunEvent {
    let membership = report
        .events
        .iter()
        .map(|e| {
            let event = match e.event {
                MemberEvent::Joined { rejoin: false } => "join".to_string(),
                MemberEvent::Joined { rejoin: true } => "rejoin".to_string(),
                MemberEvent::Dropped(r) => format!("drop-{}", r.as_str()),
            };
            MembershipRecord {
                round: e.round,
                worker: e.worker,
                event,
            }
        })
        .collect();
    RunEvent {
        source: "net".into(),
        workers: spec.cluster.workers as u32,
        variant: spec.fda.variant.name().into(),
        theta: spec.fda.theta,
        steps: spec.steps,
        syncs: report.syncs,
        decisions: report
            .decisions
            .iter()
            .map(|&d| if d { '1' } else { '0' })
            .collect(),
        codec: spec.codec.name().into(),
        charged_bytes: report.charged_bytes,
        measured_payload_bytes: report.measured_payload_bytes,
        raw_tx_bytes: report.raw_tx_bytes,
        raw_rx_bytes: report.raw_rx_bytes,
        survivors: report.survivors.clone(),
        membership,
    }
}

/// Encodes the `Resume` handoff without cloning the model vectors into a
/// `Msg`.
fn resume_msg(round: u32, model: &[f32], prev: &Option<Vec<f32>>) -> (FrameKind, Vec<u8>) {
    let mut p = Vec::with_capacity(9 + model.len() * 4);
    p.extend_from_slice(&round.to_le_bytes());
    p.push(prev.is_some() as u8);
    p.extend_from_slice(&encode_vector(model));
    if let Some(prev) = prev {
        p.extend_from_slice(&encode_vector(prev));
    }
    (FrameKind::Resume, p)
}

/// Rebuilds the charged fabric when the live worker count changes, banking
/// the finished era's charges. A fault-free run never rebuilds, so its
/// charged counters are the simulator's, untouched.
fn ensure_net(net: &mut SimNetwork, banked: &mut u64, k: usize) {
    if net.workers() != k {
        *banked += net.total_bytes();
        *net = SimNetwork::new(k);
    }
}
