//! The TCP worker loop.
//!
//! A [`NetWorker`] is one OS process's half of the protocol. It rebuilds
//! its exact simulator replica from the config frame —
//! [`fda_core::cluster::ClusterConfig::build_worker`] derives model init, `w_0`, dropout
//! stream, shard and batch order deterministically from `(seed, id)` — and
//! then drives [`Worker::step_once`], the *same* training code path the
//! simulator's `Cluster::local_step` runs. Everything that crosses the
//! process boundary goes through `fda_core::wire`, whose decode is exact
//! (f32 bits round-trip), so the K-process trajectory is bit-identical to
//! the K-worker simulator.

use crate::frame::{CountingStream, NetError};
use crate::protocol::Msg;
use fda_core::cluster::Worker;
use fda_core::wire::JobSpec;
use fda_tensor::vector;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Summary a worker returns after a completed run (for logging/tests; the
/// authoritative trajectory lives in the coordinator's report).
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Steps performed.
    pub steps: u64,
    /// Synchronizations participated in.
    pub syncs: u64,
}

/// One connected worker process.
pub struct NetWorker {
    stream: CountingStream<TcpStream>,
    id: u32,
}

impl NetWorker {
    /// Connects to the coordinator, retrying until `connect_timeout`
    /// elapses (the coordinator may still be binding when a spawned worker
    /// process starts), then handshakes as worker `id`.
    pub fn connect<A: ToSocketAddrs + Clone>(
        addr: A,
        id: u32,
        connect_timeout: Duration,
    ) -> Result<NetWorker, NetError> {
        let deadline = Instant::now() + connect_timeout;
        let stream = loop {
            match TcpStream::connect(addr.clone()) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(60)))?;
        let mut stream = CountingStream::new(stream);
        Msg::hello(id).send(&mut stream)?;
        Ok(NetWorker { stream, id })
    }

    /// Overrides the per-read/per-write socket timeout (the hang guard;
    /// default 60 s each way).
    pub fn set_io_timeout(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.stream.get_ref().set_read_timeout(Some(timeout))?;
        self.stream.get_ref().set_write_timeout(Some(timeout))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, NetError> {
        Msg::recv(&mut self.stream)
    }

    fn protocol_err(&self, expected: &str, got: &Msg) -> NetError {
        NetError::Protocol(format!(
            "worker {}: expected {expected}, got {}",
            self.id,
            got.kind_name()
        ))
    }

    /// Receives the job and runs the full FDA worker loop: local step →
    /// state upload → averaged state + decision → conditional model
    /// AllReduce — the socket transcription of `Fda::step`'s phases 1–4.
    pub fn run(&mut self) -> Result<WorkerSummary, NetError> {
        let spec: JobSpec = match self.recv()? {
            Msg::Config(job) => job,
            other => return Err(self.protocol_err("config", &other)),
        };
        let task = spec.synth.generate(&spec.task_name);
        let mut worker: Worker = spec.cluster.build_worker(&task.train, self.id as usize);
        let dim = worker.model().param_count();
        let mut monitor = spec.fda.variant.build_monitor(dim);

        // `w_t0`: the model at the last synchronization (starts at w_0).
        let mut w_sync = worker.params();
        let mut params = vec![0.0f32; dim];
        let mut drift = vec![0.0f32; dim];
        let mut syncs = 0u64;

        for _ in 0..spec.steps {
            // (1) Local training — the simulator's exact code path.
            worker.step_once(&task.train);
            worker.model().copy_params_to(&mut params);

            // (2) Local state from the drift.
            vector::sub_into(&params, &w_sync, &mut drift);
            let state = monitor.local_state(&drift);
            Msg::State(state).send(&mut self.stream)?;

            // (3) The averaged state. As in the threaded driver, every
            // worker holds the same S̄ and evaluates `H(S̄) > Θ` itself —
            // the decision byte is a cross-check, not a trusted oracle;
            // any disagreement (a coordinator running different monitor
            // code, a corrupted frame that still decoded) is a protocol
            // error, not a silent divergence.
            let (avg, sync) = match self.recv()? {
                Msg::AvgState { state, sync } => (state, sync),
                other => return Err(self.protocol_err("avg-state", &other)),
            };
            let local_decision = monitor.estimate(&avg) > spec.fda.theta;
            if local_decision != sync {
                return Err(NetError::Protocol(format!(
                    "worker {}: local H(S̄) decision ({local_decision}) disagrees \
                     with coordinator broadcast ({sync})",
                    self.id
                )));
            }

            // (4) Conditional model AllReduce.
            if sync {
                Msg::Model(params.clone()).send(&mut self.stream)?;
                let avg = match self.recv()? {
                    Msg::AvgModel(v) if v.len() == dim => v,
                    Msg::AvgModel(v) => {
                        return Err(NetError::Protocol(format!(
                            "worker {}: consensus model has {} params, expected {dim}",
                            self.id,
                            v.len()
                        )));
                    }
                    other => return Err(self.protocol_err("avg-model", &other)),
                };
                worker.model_mut().load_params(&avg);
                monitor.on_sync(&avg, &w_sync);
                w_sync.copy_from_slice(&avg);
                params.copy_from_slice(&avg);
                syncs += 1;
            }
        }

        // Final replica collection + shutdown.
        Msg::FinalModel(params).send(&mut self.stream)?;
        match self.recv()? {
            Msg::Shutdown => {}
            other => return Err(self.protocol_err("shutdown", &other)),
        }
        Ok(WorkerSummary {
            steps: spec.steps as u64,
            syncs,
        })
    }
}
