//! The TCP worker loop.
//!
//! A worker process is one half of the protocol. It rebuilds its exact
//! simulator replica from the config frame —
//! [`fda_core::cluster::ClusterConfig::build_worker`] derives model init,
//! `w_0`, dropout stream, shard and batch order deterministically from
//! `(seed, id)` — and then drives [`Worker::step_once`], the *same*
//! training code path the simulator's `Cluster::local_step` runs.
//! Everything that crosses the process boundary goes through
//! `fda_core::wire`, whose decode is exact (f32 bits round-trip), so the
//! K-process trajectory is bit-identical to the K-worker simulator.
//!
//! # Sessions, faults and rejoin
//!
//! One *session* is one connection's worth of protocol: connect (with
//! exponential backoff + jitter under `connect_timeout`), hello, `Config`,
//! the versioned `Resume` handoff, then rounds from `Resume.round`
//! onwards. Scripted [`FaultAction`]s fire when the session is about to
//! upload a given step's state. If the session dies retryably
//! (disconnect, timeout) and a [`RejoinPolicy`] is set, the worker opens a
//! new session presenting its id + last-seen epoch; the coordinator's
//! `Resume` tells it where to restart. A rejoin is a **warm restart**: the
//! replica, optimizer state and data stream are rebuilt from `(seed, id)`
//! and the parameters are loaded from the consensus model — deterministic
//! given the coordinator's admission schedule, though not a continuation
//! of the dropped session's local trajectory.

use crate::fault::{Backoff, FaultAction, RejoinPolicy, FAULT_EXIT_CODE};
use crate::frame::{
    encode_frame, read_frame_into, write_frame, CountingStream, FrameKind, NetError,
};
use crate::protocol::Msg;
use fda_comm::apply_delta_downlink;
use fda_core::cluster::Worker;
use fda_core::wire::{encode_state_coded_into, encode_vector_coded_into, JobSpec};
use fda_tensor::vector;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Summary a worker returns after a completed run (for logging/tests; the
/// authoritative trajectory lives in the coordinator's report).
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Steps performed (across all sessions).
    pub steps: u64,
    /// Synchronizations participated in.
    pub syncs: u64,
    /// Times this worker reconnected after losing a session.
    pub rejoins: u64,
}

/// How a worker run ended.
#[derive(Debug, Clone, Copy)]
pub enum WorkerOutcome {
    /// Ran every remaining round through shutdown.
    Completed(WorkerSummary),
    /// A terminal scripted fault ended the run on purpose. Spawned worker
    /// processes exit with [`FAULT_EXIT_CODE`] instead of returning this
    /// (see [`WorkerOptions::exit_process_on_fault`]).
    Faulted {
        /// Step the fault fired at.
        step: u32,
        /// The scripted action.
        action: FaultAction,
    },
}

/// Knobs for one worker run.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Deadline for each session's connect loop (the coordinator may
    /// still be binding when a spawned worker starts).
    pub connect_timeout: Duration,
    /// Per-read/per-write socket timeout (the hang guard).
    pub io_timeout: Duration,
    /// When set, retryable session failures trigger reconnect attempts;
    /// when `None`, the first failure is final.
    pub rejoin: Option<RejoinPolicy>,
    /// Scripted faults for this worker.
    pub faults: Vec<FaultAction>,
    /// Spawned processes set this so a terminal fault exits the process
    /// with [`FAULT_EXIT_CODE`] (the harness reaper treats that exit as
    /// scripted); in-process (thread) workers leave it false and return
    /// [`WorkerOutcome::Faulted`] instead.
    pub exit_process_on_fault: bool,
    /// Perturbs backoff jitter only — never numerics.
    pub backoff_seed: u64,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            connect_timeout: Duration::from_secs(20),
            io_timeout: Duration::from_secs(60),
            rejoin: None,
            faults: Vec::new(),
            exit_process_on_fault: false,
            backoff_seed: 0,
        }
    }
}

/// One connection's worth of protocol state.
struct Session {
    stream: CountingStream<TcpStream>,
    id: u32,
    /// Epoch of the last frame received — stamped on everything this
    /// session sends, so the coordinator can tell live deposits from a
    /// zombie's.
    epoch: u32,
    /// Round-persistent receive buffer (frame bodies land here; the
    /// payload of the last received frame is `rbuf[1..]`).
    rbuf: Vec<u8>,
}

impl Session {
    /// Connects with exponential backoff + jitter under the
    /// `connect_timeout` deadline, then sends the extended hello. The
    /// address is borrowed through the backoff loop — retries never clone
    /// it.
    fn connect<A: ToSocketAddrs + ?Sized>(
        addr: &A,
        id: u32,
        last_epoch: u32,
        opts: &WorkerOptions,
        backoff: &mut Backoff,
    ) -> Result<Session, NetError> {
        let deadline = Instant::now() + opts.connect_timeout;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::from_io(e));
                    }
                    let wait = backoff
                        .next_delay()
                        .min(deadline.saturating_duration_since(now));
                    std::thread::sleep(wait);
                }
            }
        };
        backoff.reset();
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.io_timeout))?;
        stream.set_write_timeout(Some(opts.io_timeout))?;
        let mut stream = CountingStream::new(stream);
        Msg::hello(id, last_epoch).send(&mut stream, last_epoch)?;
        Ok(Session {
            stream,
            id,
            epoch: last_epoch,
            rbuf: Vec::new(),
        })
    }

    fn recv(&mut self) -> Result<Msg, NetError> {
        let kind = self.recv_frame()?;
        Msg::decode(kind, &self.rbuf[1..])
    }

    /// Receives one frame into the session buffer without interpreting
    /// the payload (it lands at `self.rbuf[1..]`) — the downlink path for
    /// payloads whose decoding needs the job's downlink codec.
    fn recv_frame(&mut self) -> Result<FrameKind, NetError> {
        let (kind, epoch) = read_frame_into(&mut self.stream, &mut self.rbuf)?;
        self.epoch = epoch;
        Ok(kind)
    }

    fn send(&mut self, msg: &Msg) -> Result<(), NetError> {
        msg.send(&mut self.stream, self.epoch)
    }

    /// Sends a pre-encoded payload as one frame — the uplink path for
    /// codec-encoded state/model payloads, which `Msg` cannot represent
    /// (their byte form depends on the job's negotiated codec).
    fn send_frame(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), NetError> {
        write_frame(&mut self.stream, self.epoch, kind, payload)
    }

    fn protocol_err(&self, expected: &str, got: &Msg) -> NetError {
        NetError::Protocol(format!(
            "worker {}: expected {expected}, got {}",
            self.id,
            got.kind_name()
        ))
    }

    fn shutdown(&self) {
        let _ = self.stream.get_ref().shutdown(std::net::Shutdown::Both);
    }
}

/// How one session ended (distinct from how the whole run ends: a
/// retryable session error may turn into a rejoin).
enum SessionEnd {
    Completed { steps: u64 },
    Faulted { step: u32, action: FaultAction },
}

/// Runs one worker to completion, surviving session loss when a
/// [`RejoinPolicy`] is configured. This is the entry point for both
/// in-process (thread) workers and the `fda_node worker` binary.
pub fn run_worker<A: ToSocketAddrs>(
    addr: A,
    id: u32,
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, NetError> {
    let policy = opts.rejoin.unwrap_or_default();
    let mut backoff = Backoff::new(
        policy.base_backoff,
        policy.max_backoff,
        opts.backoff_seed ^ (0x5EED ^ u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut last_epoch = 0u32;
    let mut attempts_left = opts.rejoin.map(|p| p.max_attempts).unwrap_or(0);
    let mut rejoins = 0u64;
    let mut syncs = 0u64;

    loop {
        let mut session = Session::connect(&addr, id, last_epoch, opts, &mut backoff)?;
        match run_session(&mut session, opts, &mut syncs) {
            Ok(SessionEnd::Completed { steps }) => {
                return Ok(WorkerOutcome::Completed(WorkerSummary {
                    steps,
                    syncs,
                    rejoins,
                }));
            }
            Ok(SessionEnd::Faulted { step, action }) => {
                session.shutdown();
                if opts.exit_process_on_fault {
                    std::process::exit(FAULT_EXIT_CODE);
                }
                return Ok(WorkerOutcome::Faulted { step, action });
            }
            Err(e) if e.is_retryable() && attempts_left > 0 => {
                attempts_left -= 1;
                rejoins += 1;
                last_epoch = session.epoch;
                session.shutdown();
            }
            Err(e) => return Err(e),
        }
    }
}

/// One session: `Config` → `Resume` handoff → rounds from `Resume.round`.
fn run_session(
    session: &mut Session,
    opts: &WorkerOptions,
    syncs: &mut u64,
) -> Result<SessionEnd, NetError> {
    let spec: JobSpec = match session.recv()? {
        Msg::Config(job) => *job,
        other => return Err(session.protocol_err("config", &other)),
    };
    let (start_round, resume_model, resume_prev) = match session.recv()? {
        Msg::Resume {
            round,
            model,
            prev_model,
        } => (round, model, prev_model),
        other => return Err(session.protocol_err("resume", &other)),
    };

    let task = spec.synth.generate(&spec.task_name);
    let mut worker: Worker = spec.cluster.build_worker(&task.train, session.id as usize);
    let dim = worker.model().param_count();
    let mut monitor = spec.fda.variant.build_monitor(dim);
    // The job's uplink codec: every State/Model upload is its encoding.
    // For `Dense` the encoded frames are byte-identical to the historical
    // layouts, so dense runs are bitwise indistinguishable from pre-codec
    // peers.
    let codec = spec.codec.build();
    // The job's downlink spec: under a delta downlink the consensus model
    // arrives as an `AvgModelDelta` frame coded against the last synced
    // model, not a dense `AvgModel` broadcast. Rejoin handoffs (`Resume`)
    // stay dense either way.
    let downlink_codec = spec.downlink.build();
    if resume_model.len() != dim {
        return Err(NetError::Protocol(format!(
            "worker {}: resume model has {} params, replica has {dim}",
            session.id,
            resume_model.len()
        )));
    }

    // The versioned handoff: adopt the consensus model as `w_t0` and, when
    // a synchronization already happened, replay its `on_sync` so
    // direction-tracking monitors (LinearFDA's ξ) match the workers that
    // never left, bit for bit. At formation this loads `w_0` into a
    // replica already holding `w_0` — a bitwise no-op.
    if let Some(prev) = &resume_prev {
        if prev.len() != dim {
            return Err(NetError::Protocol(format!(
                "worker {}: resume prev-model has {} params, replica has {dim}",
                session.id,
                prev.len()
            )));
        }
        monitor.on_sync(&resume_model, prev);
    }
    worker.model_mut().load_params(&resume_model);
    let mut w_sync = resume_model;
    let mut params = vec![0.0f32; dim];
    let mut drift = vec![0.0f32; dim];
    // Round-persistent uplink scratch: every State/Model payload is
    // encoded into this buffer in place, so steady-state rounds don't
    // allocate on the send path.
    let mut ubuf: Vec<u8> = Vec::new();

    for step in start_round..spec.steps {
        // (1) Local training — the simulator's exact code path.
        worker.step_once(&task.train);
        worker.model().copy_params_to(&mut params);

        // (2) Local state from the drift — the point scripted faults hit.
        vector::sub_into(&params, &w_sync, &mut drift);
        let state = monitor.local_state(&drift);
        ubuf.clear();
        encode_state_coded_into(&state, codec.as_ref(), &mut ubuf);
        match apply_faults(session, step, opts, &ubuf)? {
            FaultOutcome::Sent => {}
            FaultOutcome::Terminal(action) => {
                return Ok(SessionEnd::Faulted { step, action });
            }
        }

        // (3) The averaged state. As in the threaded driver, every
        // worker holds the same S̄ and evaluates `H(S̄) > Θ` itself —
        // the decision byte is a cross-check, not a trusted oracle;
        // any disagreement (a coordinator running different monitor
        // code, a corrupted frame that still decoded) is a protocol
        // error, not a silent divergence.
        let (avg, sync) = match session.recv()? {
            Msg::AvgState { state, sync } => (state, sync),
            other => return Err(session.protocol_err("avg-state", &other)),
        };
        let local_decision = monitor.estimate(&avg) > spec.fda.theta;
        if local_decision != sync {
            return Err(NetError::Protocol(format!(
                "worker {}: local H(S̄) decision ({local_decision}) disagrees \
                 with coordinator broadcast ({sync})",
                session.id
            )));
        }

        // (4) Conditional model AllReduce.
        if sync {
            ubuf.clear();
            encode_vector_coded_into(&params, codec.as_ref(), &mut ubuf);
            session.send_frame(FrameKind::Model, &ubuf)?;
            let avg: Vec<f32> = match &downlink_codec {
                Some(dc) => {
                    let kind = session.recv_frame()?;
                    if kind != FrameKind::AvgModelDelta {
                        return Err(NetError::Protocol(format!(
                            "worker {}: expected avg-model-delta, got {}",
                            session.id,
                            kind.label()
                        )));
                    }
                    let payload = &session.rbuf[1..];
                    if payload.len() < 4 {
                        return Err(NetError::Protocol(format!(
                            "worker {}: avg-model-delta frame too short ({} bytes)",
                            session.id,
                            payload.len()
                        )));
                    }
                    let sent_dim =
                        u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]])
                            as usize;
                    if sent_dim != dim {
                        return Err(NetError::Protocol(format!(
                            "worker {}: delta consensus has {sent_dim} params, expected {dim}",
                            session.id
                        )));
                    }
                    apply_delta_downlink(&w_sync, &payload[4..], dc.as_ref()).map_err(|e| {
                        NetError::Protocol(format!(
                            "worker {}: undecodable delta downlink: {e}",
                            session.id
                        ))
                    })?
                }
                None => match session.recv()? {
                    Msg::AvgModel(v) if v.len() == dim => v,
                    Msg::AvgModel(v) => {
                        return Err(NetError::Protocol(format!(
                            "worker {}: consensus model has {} params, expected {dim}",
                            session.id,
                            v.len()
                        )));
                    }
                    other => return Err(session.protocol_err("avg-model", &other)),
                },
            };
            worker.model_mut().load_params(&avg);
            monitor.on_sync(&avg, &w_sync);
            w_sync.copy_from_slice(&avg);
            params.copy_from_slice(&avg);
            *syncs += 1;
        }
    }

    // Final replica collection + shutdown.
    session.send(&Msg::FinalModel(params))?;
    match session.recv()? {
        Msg::Shutdown => {}
        other => return Err(session.protocol_err("shutdown", &other)),
    }
    Ok(SessionEnd::Completed {
        steps: u64::from(spec.steps - start_round),
    })
}

enum FaultOutcome {
    /// The state frame went out (clean, delayed, or deliberately mangled).
    Sent,
    /// A terminal fault fired; the session is over by design.
    Terminal(FaultAction),
}

/// Applies every scripted fault anchored to `step` in place of (or around)
/// the state upload. `state_payload` is the already codec-encoded state —
/// faults mangle the exact bytes a clean send would have produced.
fn apply_faults(
    session: &mut Session,
    step: u32,
    opts: &WorkerOptions,
    state_payload: &[u8],
) -> Result<FaultOutcome, NetError> {
    let mut actions: Vec<FaultAction> = opts
        .faults
        .iter()
        .filter(|a| a.step() == step)
        .copied()
        .collect();
    actions.sort_by_key(|a| a.is_terminal()); // stalls first, then at most one terminal
    for action in actions {
        match action {
            FaultAction::StallState { ms, .. } => {
                std::thread::sleep(Duration::from_millis(u64::from(ms)));
            }
            FaultAction::KillBeforeState(_) => {
                return Ok(FaultOutcome::Terminal(action));
            }
            FaultAction::ExitBeforeState(_) => {
                if opts.exit_process_on_fault {
                    std::process::exit(FAULT_EXIT_CODE);
                }
                return Ok(FaultOutcome::Terminal(action));
            }
            FaultAction::FlipStateBit { bit, .. } => {
                // Corrupt the frame past the length field so the
                // coordinator reads a complete frame and the checksum —
                // not a short read — must catch it.
                let mut frame = encode_frame(session.epoch, FrameKind::State, state_payload);
                let body_bits = (frame.len() - 4) * 8;
                let b = bit as usize % body_bits;
                frame[4 + b / 8] ^= 1 << (b % 8);
                session.stream.write_all(&frame)?;
                session.stream.flush()?;
                return Ok(FaultOutcome::Sent);
            }
            FaultAction::TruncateState { keep, .. } => {
                let frame = encode_frame(session.epoch, FrameKind::State, state_payload);
                let keep = (keep as usize).min(frame.len().saturating_sub(1));
                session.stream.write_all(&frame[..keep])?;
                session.stream.flush()?;
                session.shutdown();
                // The session is unusable; surface it as the disconnect
                // the coordinator also observes, so the rejoin machinery
                // takes over.
                return Err(NetError::Disconnect(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "scripted mid-frame truncation",
                )));
            }
        }
    }
    session.send_frame(FrameKind::State, state_payload)?;
    Ok(FaultOutcome::Sent)
}
