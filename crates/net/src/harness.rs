//! Run harnesses: whole FDA jobs over loopback TCP.
//!
//! Drivers around the same [`Coordinator`]:
//!
//! * [`run_with_thread_workers`] — workers are threads of the calling
//!   process, each speaking real TCP to the coordinator over loopback.
//!   Used by unit tests and the bench (no process-spawn cost in the
//!   measurement, sockets still real).
//! * [`run_with_spawned_workers`] — workers are **OS processes** spawned
//!   from an `fda_node` binary; the multi-process deployment the paper's
//!   byte accounting is ultimately about. Child processes are killed if
//!   the coordinator fails, so a wedged worker cannot leak past the run.
//! * [`run_chaos_with_thread_workers`] / [`run_chaos_with_spawned_workers`]
//!   — the same two drivers under a scripted [`FaultPlan`]: scripted
//!   deaths are *expected* (the thread variant returns every worker's
//!   individual result; the spawned variant accepts any exit status from
//!   a worker the plan targets), and the coordinator result is returned
//!   even when it is a typed failure like [`NetError::Quorum`].

use crate::coordinator::{Coordinator, NetReport, RoundPolicy};
use crate::fault::{FaultPlan, RejoinPolicy};
use crate::frame::NetError;
use crate::worker::{run_worker, WorkerOptions, WorkerOutcome};
use fda_core::wire::JobSpec;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Default worker-connect window.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(20);

/// How long spawned workers get to exit after shutdown before being
/// killed.
const REAP_TIMEOUT: Duration = Duration::from_secs(10);

/// Runs `spec` with in-process worker threads over loopback TCP.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn run_with_thread_workers(spec: &JobSpec) -> Result<NetReport, NetError> {
    run_with_thread_workers_telemetry(spec, None)
}

/// [`run_with_thread_workers`] with an optional round-event JSONL sink
/// (the [`fda_obs`] schema, streamed by the coordinator).
///
/// # Panics
/// Panics if a worker thread panics.
pub fn run_with_thread_workers_telemetry(
    spec: &JobSpec,
    telemetry: Option<&Path>,
) -> Result<NetReport, NetError> {
    let mut coordinator = Coordinator::bind("127.0.0.1:0")?;
    if let Some(path) = telemetry {
        coordinator.set_telemetry(path);
    }
    let addr = coordinator.local_addr()?;
    let k = spec.cluster.workers;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|id| {
                scope.spawn(move || -> Result<(), NetError> {
                    let opts = WorkerOptions {
                        connect_timeout: CONNECT_TIMEOUT,
                        ..WorkerOptions::default()
                    };
                    run_worker(addr, id as u32, &opts).map(|_| ())
                })
            })
            .collect();
        let report = coordinator.run(spec);
        for (id, h) in handles.into_iter().enumerate() {
            let worker_result = h.join().expect("worker thread panicked");
            // A coordinator error usually kills the workers too; report
            // the coordinator's (root-cause) error first.
            if report.is_ok() {
                worker_result
                    .map_err(|e| NetError::Protocol(format!("worker {id} failed: {e}")))?;
            }
        }
        report
    })
}

/// Runs `spec` with thread workers under a scripted fault plan.
///
/// Returns the coordinator's result **and** every worker's individual
/// result, because under chaos both sides' endings are assertions: a
/// worker may legitimately finish [`WorkerOutcome::Faulted`] or with a
/// disconnect error while the coordinator completes with K′ survivors —
/// or the coordinator may abort with [`NetError::Quorum`] while workers
/// ran fine. `io_timeout` bounds every socket wait so an injected hang
/// converts to a timeout instead of wedging the scope join.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn run_chaos_with_thread_workers(
    spec: &JobSpec,
    plan: &FaultPlan,
    policy: RoundPolicy,
    rejoin: Option<RejoinPolicy>,
    io_timeout: Duration,
) -> (
    Result<NetReport, NetError>,
    Vec<Result<WorkerOutcome, NetError>>,
) {
    let mut coordinator = match Coordinator::bind("127.0.0.1:0") {
        Ok(c) => c,
        Err(e) => return (Err(e), Vec::new()),
    };
    let addr = match coordinator.local_addr() {
        Ok(a) => a,
        Err(e) => return (Err(e), Vec::new()),
    };
    coordinator.set_timeouts(CONNECT_TIMEOUT, io_timeout);
    coordinator.set_policy(policy);
    let k = spec.cluster.workers;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|id| {
                let faults = plan.faults_for(id as u32);
                scope.spawn(move || {
                    let opts = WorkerOptions {
                        connect_timeout: Duration::from_secs(5),
                        io_timeout,
                        rejoin,
                        faults,
                        exit_process_on_fault: false,
                        backoff_seed: 0x0DD_BA11 ^ id as u64,
                    };
                    run_worker(addr, id as u32, &opts)
                })
            })
            .collect();
        let report = coordinator.run(spec);
        // Unbind the listener before joining: a worker still retrying a
        // rejoin gets connection-refused promptly instead of parking on a
        // dead rendezvous until its io timeout.
        drop(coordinator);
        let worker_results = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        (report, worker_results)
    })
}

/// Kills still-running children on drop, so a failed run cannot leak
/// worker processes.
struct ReapGuard {
    children: Vec<Child>,
}

impl ReapGuard {
    /// Waits for every child to exit, killing laggards after
    /// [`REAP_TIMEOUT`]. Returns an error naming the first child that
    /// exited unsuccessfully, unless `fault_expected` marks it as a
    /// scripted casualty (any exit status accepted — a scripted death may
    /// surface as [`crate::fault::FAULT_EXIT_CODE`] or as a nonzero error
    /// exit, depending on where the fault cut the protocol).
    fn reap(mut self, fault_expected: &[bool]) -> Result<(), NetError> {
        let deadline = Instant::now() + REAP_TIMEOUT;
        for (id, child) in self.children.iter_mut().enumerate() {
            let status = loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = child.kill();
                            break child.wait().map_err(NetError::Io)?;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(NetError::Io(e)),
                }
            };
            if !status.success() && !fault_expected.get(id).copied().unwrap_or(false) {
                // Return without clearing: `Drop` still kills the
                // remaining (possibly wedged) siblings.
                return Err(NetError::Protocol(format!(
                    "worker process {id} exited with {status}"
                )));
            }
        }
        self.children.clear();
        Ok(())
    }
}

impl Drop for ReapGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_workers(
    spec: &JobSpec,
    node_bin: &Path,
    addr: &str,
    plan: &FaultPlan,
) -> Result<ReapGuard, NetError> {
    let mut guard = ReapGuard {
        children: Vec::new(),
    };
    for id in 0..spec.cluster.workers {
        let child = Command::new(node_bin)
            .arg("worker")
            .arg("--connect")
            .arg(addr)
            .arg("--id")
            .arg(id.to_string())
            .args(plan.worker_args(id as u32))
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        guard.children.push(child);
    }
    Ok(guard)
}

/// Runs `spec` with `K` spawned `fda_node` worker processes.
///
/// `node_bin` must be a binary accepting
/// `worker --connect <addr> --id <k>` (the workspace's `fda_node`).
/// Worker stderr is inherited so failures surface in test output.
pub fn run_with_spawned_workers(spec: &JobSpec, node_bin: &Path) -> Result<NetReport, NetError> {
    let coordinator = Coordinator::bind("127.0.0.1:0")?;
    let addr = coordinator.local_addr()?;
    let guard = spawn_workers(spec, node_bin, &addr.to_string(), &FaultPlan::new())?;
    let report = coordinator.run(spec)?;
    guard.reap(&vec![false; spec.cluster.workers])?;
    Ok(report)
}

/// [`run_chaos_with_spawned_workers`] with an optional round-event JSONL
/// sink (the [`fda_obs`] schema, streamed by the coordinator).
pub fn run_chaos_with_spawned_workers_telemetry(
    spec: &JobSpec,
    node_bin: &Path,
    plan: &FaultPlan,
    policy: RoundPolicy,
    io_timeout: Duration,
    telemetry: Option<&Path>,
) -> Result<NetReport, NetError> {
    let mut coordinator = Coordinator::bind("127.0.0.1:0")?;
    if let Some(path) = telemetry {
        coordinator.set_telemetry(path);
    }
    let addr = coordinator.local_addr()?;
    coordinator.set_timeouts(CONNECT_TIMEOUT, io_timeout);
    coordinator.set_policy(policy);
    let guard = spawn_workers(spec, node_bin, &addr.to_string(), plan)?;
    let report = coordinator.run(spec);
    drop(coordinator);
    let fault_expected: Vec<bool> = (0..spec.cluster.workers)
        .map(|id| plan.has_fault(id as u32) || report.is_err())
        .collect();
    guard.reap(&fault_expected)?;
    report
}

/// Runs `spec` with spawned worker processes under a scripted fault plan:
/// the multi-process chaos driver. Workers the plan targets are passed
/// their `--fault` scripts on the command line and may exit with any
/// status; untargeted workers must still exit cleanly. The coordinator's
/// result is returned as-is — a typed [`NetError::Quorum`] is a valid,
/// asserted-on ending.
pub fn run_chaos_with_spawned_workers(
    spec: &JobSpec,
    node_bin: &Path,
    plan: &FaultPlan,
    policy: RoundPolicy,
    io_timeout: Duration,
) -> Result<NetReport, NetError> {
    run_chaos_with_spawned_workers_telemetry(spec, node_bin, plan, policy, io_timeout, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_core::cluster::ClusterConfig;
    use fda_core::fda::{Fda, FdaConfig};
    use fda_core::strategy::Strategy;
    use fda_data::synth::SynthSpec;

    fn tiny_spec(k: usize, fda: FdaConfig, steps: u32) -> JobSpec {
        JobSpec {
            cluster: ClusterConfig {
                workers: k,
                ..ClusterConfig::small_test(k)
            },
            fda,
            codec: fda_comm::CodecSpec::Dense,
            downlink: fda_comm::DownlinkSpec::Dense,
            steps,
            synth: SynthSpec {
                n_train: 240,
                n_test: 80,
                ..SynthSpec::synth_mnist()
            },
            task_name: "tiny".to_string(),
        }
    }

    /// Thread-worker smoke parity: a K = 2 LinearFDA TCP run must retrace
    /// the sequential simulator bit-for-bit (the full multi-process matrix
    /// lives in the root `net_parity` integration suite).
    #[test]
    fn loopback_run_matches_simulator() {
        let spec = tiny_spec(2, FdaConfig::linear(0.02), 6);
        let report = run_with_thread_workers(&spec).expect("net run");

        let task = spec.synth.generate(&spec.task_name);
        let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
        let mut decisions = Vec::new();
        let mut estimates = Vec::new();
        for _ in 0..spec.steps {
            let out = sim.step();
            decisions.push(out.synced);
            estimates.push(out.variance_estimate.expect("fda reports estimates"));
        }
        assert_eq!(report.decisions, decisions, "sync schedule diverged");
        assert_eq!(report.estimates, estimates, "estimates diverged");
        assert!(report.syncs > 0, "horizon should exercise a sync");
        for (kk, params) in report.worker_params.iter().enumerate() {
            assert_eq!(
                params,
                &sim.cluster().worker(kk).params(),
                "worker {kk} final params diverged"
            );
        }
        assert_eq!(report.charged_bytes, sim.comm_bytes(), "charged diverged");
        assert_eq!(
            report.measured_payload_bytes, report.charged_bytes,
            "socket-measured payload != charged"
        );
        // Framing + control plane exist but are small.
        assert!(report.raw_rx_bytes > report.measured_payload_bytes);
        // A fault-free run keeps everyone: K joins, zero drops.
        assert_eq!(report.survivors, vec![0, 1]);
        assert_eq!(report.events.len(), 2);
    }

    /// K = 1 degenerate cluster: runs, charges nothing (the accounting
    /// convention), still produces the simulator's exact trajectory.
    #[test]
    fn single_worker_run_charges_nothing() {
        let spec = tiny_spec(1, FdaConfig::linear(0.05), 4);
        let report = run_with_thread_workers(&spec).expect("net run");
        assert_eq!(report.charged_bytes, 0);
        assert_eq!(report.measured_payload_bytes, 0);
        assert!(report.raw_rx_bytes > 0, "frames still crossed the socket");

        let task = spec.synth.generate(&spec.task_name);
        let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
        let decisions: Vec<bool> = (0..spec.steps).map(|_| sim.step().synced).collect();
        assert_eq!(report.decisions, decisions);
        assert_eq!(report.worker_params[0], sim.cluster().worker(0).params());
    }
}
