//! Run harnesses: whole FDA jobs over loopback TCP.
//!
//! Two drivers around the same [`Coordinator`]:
//!
//! * [`run_with_thread_workers`] — workers are threads of the calling
//!   process, each speaking real TCP to the coordinator over loopback.
//!   Used by unit tests and the bench (no process-spawn cost in the
//!   measurement, sockets still real).
//! * [`run_with_spawned_workers`] — workers are **OS processes** spawned
//!   from an `fda_node` binary; the multi-process deployment the paper's
//!   byte accounting is ultimately about. Child processes are killed if
//!   the coordinator fails, so a wedged worker cannot leak past the run.

use crate::coordinator::{Coordinator, NetReport};
use crate::frame::NetError;
use crate::worker::NetWorker;
use fda_core::wire::JobSpec;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Default worker-connect window.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(20);

/// How long spawned workers get to exit after shutdown before being
/// killed.
const REAP_TIMEOUT: Duration = Duration::from_secs(10);

/// Runs `spec` with in-process worker threads over loopback TCP.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn run_with_thread_workers(spec: &JobSpec) -> Result<NetReport, NetError> {
    let coordinator = Coordinator::bind("127.0.0.1:0")?;
    let addr = coordinator.local_addr()?;
    let k = spec.cluster.workers;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|id| {
                scope.spawn(move || -> Result<(), NetError> {
                    NetWorker::connect(addr, id as u32, CONNECT_TIMEOUT)?
                        .run()
                        .map(|_| ())
                })
            })
            .collect();
        let report = coordinator.run(spec);
        for (id, h) in handles.into_iter().enumerate() {
            let worker_result = h.join().expect("worker thread panicked");
            // A coordinator error usually kills the workers too; report
            // the coordinator's (root-cause) error first.
            if report.is_ok() {
                worker_result
                    .map_err(|e| NetError::Protocol(format!("worker {id} failed: {e}")))?;
            }
        }
        report
    })
}

/// Kills still-running children on drop, so a failed run cannot leak
/// worker processes.
struct ReapGuard {
    children: Vec<Child>,
}

impl ReapGuard {
    /// Waits for every child to exit, killing laggards after
    /// [`REAP_TIMEOUT`]. Returns an error naming the first child that
    /// exited unsuccessfully.
    fn reap(mut self) -> Result<(), NetError> {
        let deadline = Instant::now() + REAP_TIMEOUT;
        for (id, child) in self.children.iter_mut().enumerate() {
            let status = loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = child.kill();
                            break child.wait().map_err(NetError::Io)?;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(NetError::Io(e)),
                }
            };
            if !status.success() {
                // Return without clearing: `Drop` still kills the
                // remaining (possibly wedged) siblings.
                return Err(NetError::Protocol(format!(
                    "worker process {id} exited with {status}"
                )));
            }
        }
        self.children.clear();
        Ok(())
    }
}

impl Drop for ReapGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs `spec` with `K` spawned `fda_node` worker processes.
///
/// `node_bin` must be a binary accepting
/// `worker --connect <addr> --id <k>` (the workspace's `fda_node`).
/// Worker stderr is inherited so failures surface in test output.
pub fn run_with_spawned_workers(spec: &JobSpec, node_bin: &Path) -> Result<NetReport, NetError> {
    let coordinator = Coordinator::bind("127.0.0.1:0")?;
    let addr = coordinator.local_addr()?;
    let mut guard = ReapGuard {
        children: Vec::new(),
    };
    for id in 0..spec.cluster.workers {
        let child = Command::new(node_bin)
            .arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--id")
            .arg(id.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        guard.children.push(child);
    }
    let report = coordinator.run(spec)?;
    guard.reap()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_core::cluster::ClusterConfig;
    use fda_core::fda::{Fda, FdaConfig};
    use fda_core::strategy::Strategy;
    use fda_data::synth::SynthSpec;

    fn tiny_spec(k: usize, fda: FdaConfig, steps: u32) -> JobSpec {
        JobSpec {
            cluster: ClusterConfig {
                workers: k,
                ..ClusterConfig::small_test(k)
            },
            fda,
            steps,
            synth: SynthSpec {
                n_train: 240,
                n_test: 80,
                ..SynthSpec::synth_mnist()
            },
            task_name: "tiny".to_string(),
        }
    }

    /// Thread-worker smoke parity: a K = 2 LinearFDA TCP run must retrace
    /// the sequential simulator bit-for-bit (the full multi-process matrix
    /// lives in the root `net_parity` integration suite).
    #[test]
    fn loopback_run_matches_simulator() {
        let spec = tiny_spec(2, FdaConfig::linear(0.02), 6);
        let report = run_with_thread_workers(&spec).expect("net run");

        let task = spec.synth.generate(&spec.task_name);
        let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
        let mut decisions = Vec::new();
        let mut estimates = Vec::new();
        for _ in 0..spec.steps {
            let out = sim.step();
            decisions.push(out.synced);
            estimates.push(out.variance_estimate.expect("fda reports estimates"));
        }
        assert_eq!(report.decisions, decisions, "sync schedule diverged");
        assert_eq!(report.estimates, estimates, "estimates diverged");
        assert!(report.syncs > 0, "horizon should exercise a sync");
        for (kk, params) in report.worker_params.iter().enumerate() {
            assert_eq!(
                params,
                &sim.cluster().worker(kk).params(),
                "worker {kk} final params diverged"
            );
        }
        assert_eq!(report.charged_bytes, sim.comm_bytes(), "charged diverged");
        assert_eq!(
            report.measured_payload_bytes, report.charged_bytes,
            "socket-measured payload != charged"
        );
        // Framing + control plane exist but are small.
        assert!(report.raw_rx_bytes > report.measured_payload_bytes);
    }

    /// K = 1 degenerate cluster: runs, charges nothing (the accounting
    /// convention), still produces the simulator's exact trajectory.
    #[test]
    fn single_worker_run_charges_nothing() {
        let spec = tiny_spec(1, FdaConfig::linear(0.05), 4);
        let report = run_with_thread_workers(&spec).expect("net run");
        assert_eq!(report.charged_bytes, 0);
        assert_eq!(report.measured_payload_bytes, 0);
        assert!(report.raw_rx_bytes > 0, "frames still crossed the socket");

        let task = spec.synth.generate(&spec.task_name);
        let mut sim = Fda::new(spec.fda, spec.cluster.clone(), &task);
        let decisions: Vec<bool> = (0..spec.steps).map(|_| sim.step().synced).collect();
        assert_eq!(report.decisions, decisions);
        assert_eq!(report.worker_params[0], sim.cluster().worker(0).params());
    }
}
