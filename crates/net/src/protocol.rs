//! Typed messages over the frame layer.
//!
//! A [`Msg`] is one frame; payloads are the `fda_core::wire` encodings, so
//! the bytes a worker puts on the socket for a local state are *exactly*
//! the bytes the simulator's accounting charges (plus the framing header,
//! which [`Msg::accounted_bytes`] deliberately excludes — the paper's
//! convention charges payload floats, and sub-1% framing overhead is
//! reported separately by the measured raw counters).
//!
//! Every frame carries the coordinator's **membership epoch** in its
//! header. Senders stamp frames with the last epoch they were told;
//! receivers validate with [`recv_at_epoch`], which *discards* frames from
//! an older epoch (a zombie connection's in-flight deposit racing a drop/
//! rejoin) instead of averaging them, and rejects frames claiming a future
//! epoch as protocol violations.

use crate::frame::{
    read_frame, read_frame_into, write_frame, FrameKind, NetError, PROTOCOL_VERSION,
};
use fda_core::monitor::LocalState;
use fda_core::wire::{
    decode_job, decode_state, decode_vector, decode_vector_at, encode_job, encode_state,
    encode_vector, JobSpec,
};
use std::io::{Read, Write};

/// How many consecutive stale-epoch frames [`recv_at_epoch`] will discard
/// on one connection before declaring the peer a protocol violator. A
/// legitimate zombie has at most a handful of in-flight frames; an
/// endless stale stream is a broken or hostile peer.
pub const MAX_STALE_FRAMES: u32 = 8;

/// One protocol message (see [`FrameKind`] for the direction of each).
#[derive(Debug)]
pub enum Msg {
    /// Worker → coordinator handshake.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// The worker's stable id in `0..K` — the reduction order key.
        worker_id: u32,
        /// The membership epoch the worker last observed — 0 on a fresh
        /// join, the last broadcast epoch on a reconnect (so the
        /// coordinator can tell a rejoin from a restart).
        last_epoch: u32,
    },
    /// Coordinator → worker: the job (boxed: a `JobSpec` dwarfs every
    /// other variant, and `Msg` values travel through `Result`s and
    /// matches where the large-variant footprint would tax all of them).
    Config(Box<JobSpec>),
    /// Worker → coordinator: this round's local state.
    State(LocalState),
    /// Coordinator → worker: the averaged state and the round's decision.
    AvgState {
        /// `S̄_t`, averaged in worker-id order over the round's survivors.
        state: LocalState,
        /// `H(S̄_t) > Θ` — whether a model AllReduce follows.
        sync: bool,
    },
    /// Worker → coordinator: full parameters for the model AllReduce.
    Model(Vec<f32>),
    /// Coordinator → worker: the consensus model.
    AvgModel(Vec<f32>),
    /// Worker → coordinator: final replica (uncharged evaluation traffic).
    FinalModel(Vec<f32>),
    /// Coordinator → worker: the versioned state handoff sent on every
    /// (re)join, right after [`Msg::Config`].
    Resume {
        /// The round the worker resumes at (0 at initial formation).
        round: u32,
        /// The consensus model — `w_0` before any sync, the last
        /// AllReduced model after.
        model: Vec<f32>,
        /// The consensus model of the *previous* synchronization, when one
        /// exists — what `LinearMonitor::on_sync` needs to reconstruct ξ
        /// bit-identically to the workers that never left.
        prev_model: Option<Vec<f32>>,
    },
    /// Coordinator → worker: run complete.
    Shutdown,
}

impl Msg {
    /// Builds the handshake message for this library's protocol version.
    pub fn hello(worker_id: u32, last_epoch: u32) -> Msg {
        Msg::Hello {
            version: PROTOCOL_VERSION,
            worker_id,
            last_epoch,
        }
    }

    /// The bytes the paper's accounting convention charges for this
    /// message: the `f32` payload of data-plane messages (`‖u‖²` +
    /// summary for a state, the parameter vector for a model upload), and
    /// zero for control-plane messages (handshake, config, resume,
    /// broadcasts — the convention counts bytes *transmitted by workers*)
    /// and for the uncharged final-model evaluation collection.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Msg::State(s) => 4 + s.summary_slice().len() as u64 * 4,
            Msg::Model(v) => v.len() as u64 * 4,
            _ => 0,
        }
    }

    /// Serializes this message's frame kind and payload.
    pub fn encode(&self) -> (FrameKind, Vec<u8>) {
        match self {
            Msg::Hello {
                version,
                worker_id,
                last_epoch,
            } => {
                let mut p = Vec::with_capacity(10);
                p.extend_from_slice(&version.to_le_bytes());
                p.extend_from_slice(&worker_id.to_le_bytes());
                p.extend_from_slice(&last_epoch.to_le_bytes());
                (FrameKind::Hello, p)
            }
            Msg::Config(job) => (FrameKind::Config, encode_job(job)),
            Msg::State(s) => (FrameKind::State, encode_state(s)),
            Msg::AvgState { state, sync } => {
                let mut p = vec![*sync as u8];
                p.extend_from_slice(&encode_state(state));
                (FrameKind::AvgState, p)
            }
            Msg::Model(v) => (FrameKind::Model, encode_vector(v)),
            Msg::AvgModel(v) => (FrameKind::AvgModel, encode_vector(v)),
            Msg::FinalModel(v) => (FrameKind::FinalModel, encode_vector(v)),
            Msg::Resume {
                round,
                model,
                prev_model,
            } => {
                let mut p = Vec::with_capacity(9 + model.len() * 4);
                p.extend_from_slice(&round.to_le_bytes());
                p.push(prev_model.is_some() as u8);
                p.extend_from_slice(&encode_vector(model));
                if let Some(prev) = prev_model {
                    p.extend_from_slice(&encode_vector(prev));
                }
                (FrameKind::Resume, p)
            }
            Msg::Shutdown => (FrameKind::Shutdown, Vec::new()),
        }
    }

    /// Writes this message as one frame stamped with `epoch`.
    pub fn send<W: Write>(&self, w: &mut W, epoch: u32) -> Result<(), NetError> {
        let (kind, payload) = self.encode();
        write_frame(w, epoch, kind, &payload)
    }

    /// Decodes a message from a frame's kind + payload.
    pub fn decode(kind: FrameKind, payload: &[u8]) -> Result<Msg, NetError> {
        Ok(match kind {
            FrameKind::Hello => {
                if payload.len() != 10 {
                    return Err(NetError::Protocol(format!(
                        "hello payload must be 10 bytes, got {}",
                        payload.len()
                    )));
                }
                Msg::Hello {
                    version: u16::from_le_bytes(payload[0..2].try_into().expect("len 2")),
                    worker_id: u32::from_le_bytes(payload[2..6].try_into().expect("len 4")),
                    last_epoch: u32::from_le_bytes(payload[6..10].try_into().expect("len 4")),
                }
            }
            FrameKind::Config => Msg::Config(Box::new(decode_job(payload)?)),
            FrameKind::State => Msg::State(decode_state(payload)?),
            FrameKind::AvgState => {
                let (&sync_byte, state_bytes) = payload
                    .split_first()
                    .ok_or_else(|| NetError::Protocol("empty avg-state payload".to_string()))?;
                let sync = match sync_byte {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(NetError::Protocol(format!("bad sync byte {b}")));
                    }
                };
                Msg::AvgState {
                    state: decode_state(state_bytes)?,
                    sync,
                }
            }
            FrameKind::Model => Msg::Model(decode_vector(payload)?),
            FrameKind::AvgModel => Msg::AvgModel(decode_vector(payload)?),
            FrameKind::FinalModel => Msg::FinalModel(decode_vector(payload)?),
            FrameKind::Resume => {
                if payload.len() < 5 {
                    return Err(NetError::Protocol("resume payload too short".to_string()));
                }
                let round = u32::from_le_bytes(payload[0..4].try_into().expect("len 4"));
                let has_prev = match payload[4] {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(NetError::Protocol(format!("bad resume prev flag {b}")));
                    }
                };
                let mut off = 5usize;
                let model = decode_vector_at(payload, &mut off)?;
                let prev_model = if has_prev {
                    Some(decode_vector_at(payload, &mut off)?)
                } else {
                    None
                };
                if off != payload.len() {
                    return Err(NetError::Protocol(
                        "trailing bytes after resume payload".to_string(),
                    ));
                }
                Msg::Resume {
                    round,
                    model,
                    prev_model,
                }
            }
            FrameKind::Shutdown => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol(
                        "shutdown carries no payload".to_string(),
                    ));
                }
                Msg::Shutdown
            }
            // A delta downlink is only decodable with the job's downlink
            // codec and model dimension in hand — delta-mode receivers use
            // the frame-layer path (`recv_frame_at_epoch_into`), never the
            // typed one, so reaching here means the peer sent a delta to a
            // dense-mode receiver.
            FrameKind::AvgModelDelta => {
                return Err(NetError::Protocol(
                    "avg-model-delta frame outside a delta-downlink job".to_string(),
                ));
            }
        })
    }

    /// Reads the next message off the stream, returning it with the epoch
    /// its frame was stamped with.
    pub fn recv<R: Read>(r: &mut R) -> Result<(Msg, u32), NetError> {
        let (kind, epoch, payload) = read_frame(r)?;
        Ok((Msg::decode(kind, &payload)?, epoch))
    }

    /// Short name for protocol-error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "hello",
            Msg::Config(_) => "config",
            Msg::State(_) => "state",
            Msg::AvgState { .. } => "avg-state",
            Msg::Model(_) => "model",
            Msg::AvgModel(_) => "avg-model",
            Msg::FinalModel(_) => "final-model",
            Msg::Resume { .. } => "resume",
            Msg::Shutdown => "shutdown",
        }
    }
}

/// Receives the next message stamped with exactly `epoch`.
///
/// Frames from an **older** epoch are discarded (up to
/// [`MAX_STALE_FRAMES`]): they are the in-flight deposits of a connection
/// that raced a membership change — a zombie's state must be dropped, not
/// averaged into `S̄`. A frame claiming a **future** epoch is a protocol
/// violation (the coordinator is the only epoch authority).
pub fn recv_at_epoch<R: Read>(r: &mut R, epoch: u32) -> Result<Msg, NetError> {
    let (kind, payload) = recv_frame_at_epoch(r, epoch)?;
    Msg::decode(kind, &payload)
}

/// [`recv_at_epoch`] at the frame layer: returns the current-epoch frame's
/// kind and raw payload without interpreting it. This is the receive path
/// for payloads whose decoding needs out-of-band context (a coded state or
/// model upload needs the negotiated codec and the expected shape);
/// stale-epoch frames are skipped on their headers alone — a zombie's
/// coded deposit must be discardable without being decodable.
pub fn recv_frame_at_epoch<R: Read>(
    r: &mut R,
    epoch: u32,
) -> Result<(FrameKind, Vec<u8>), NetError> {
    let mut buf = Vec::new();
    let kind = recv_frame_at_epoch_into(r, epoch, &mut buf)?;
    buf.copy_within(1.., 0);
    buf.truncate(buf.len() - 1);
    Ok((kind, buf))
}

/// [`recv_frame_at_epoch`] into a caller-owned buffer: on success `buf`
/// holds the frame body (kind byte + payload, so the payload is
/// `&buf[1..]`, as with [`read_frame_into`]). The round loops hold one
/// buffer per connection and call this, so steady-state receives allocate
/// nothing.
pub fn recv_frame_at_epoch_into<R: Read>(
    r: &mut R,
    epoch: u32,
    buf: &mut Vec<u8>,
) -> Result<FrameKind, NetError> {
    let mut stale = 0u32;
    loop {
        let (kind, frame_epoch) = read_frame_into(r, buf)?;
        if frame_epoch == epoch {
            return Ok(kind);
        }
        if frame_epoch > epoch {
            return Err(NetError::Protocol(format!(
                "frame from future epoch {frame_epoch} (current {epoch})"
            )));
        }
        stale += 1;
        if stale > MAX_STALE_FRAMES {
            return Err(NetError::Protocol(format!(
                "more than {MAX_STALE_FRAMES} stale-epoch frames (last {frame_epoch}, \
                 current {epoch})"
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_core::monitor::{LinearMonitor, SketchMonitor, VarianceMonitor};
    use fda_sketch::SketchConfig;

    fn roundtrip(msg: &Msg) -> (Msg, u32) {
        let mut buf: Vec<u8> = Vec::new();
        msg.send(&mut buf, 11).unwrap();
        Msg::recv(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn hello_roundtrip() {
        match roundtrip(&Msg::hello(3, 42)) {
            (
                Msg::Hello {
                    version,
                    worker_id,
                    last_epoch,
                },
                epoch,
            ) => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(worker_id, 3);
                assert_eq!(last_epoch, 42);
                assert_eq!(epoch, 11);
            }
            (other, _) => panic!("wrong kind: {}", other.kind_name()),
        }
    }

    #[test]
    fn state_and_avg_state_roundtrip_bitwise() {
        let drift: Vec<f32> = (0..96).map(|i| (i as f32 * 0.11).sin()).collect();
        for state in [
            LinearMonitor::new().local_state(&drift),
            SketchMonitor::new(SketchConfig::new(3, 16, 5), drift.len()).local_state(&drift),
        ] {
            match roundtrip(&Msg::State(state.clone())) {
                (Msg::State(back), epoch) => {
                    assert_eq!(back, state);
                    assert_eq!(epoch, 11);
                }
                (other, _) => panic!("wrong kind: {}", other.kind_name()),
            }
            match roundtrip(&Msg::AvgState {
                state: state.clone(),
                sync: true,
            }) {
                (Msg::AvgState { state: back, sync }, _) => {
                    assert_eq!(back, state);
                    assert!(sync);
                }
                (other, _) => panic!("wrong kind: {}", other.kind_name()),
            }
        }
    }

    #[test]
    fn resume_roundtrip_with_and_without_prev() {
        let model: Vec<f32> = (0..50).map(|i| i as f32 * 0.25).collect();
        let prev: Vec<f32> = (0..50).map(|i| i as f32 * -0.5).collect();
        for prev_model in [None, Some(prev.clone())] {
            let msg = Msg::Resume {
                round: 6,
                model: model.clone(),
                prev_model: prev_model.clone(),
            };
            match roundtrip(&msg) {
                (
                    Msg::Resume {
                        round,
                        model: m,
                        prev_model: p,
                    },
                    _,
                ) => {
                    assert_eq!(round, 6);
                    assert_eq!(m, model);
                    assert_eq!(p, prev_model);
                }
                (other, _) => panic!("wrong kind: {}", other.kind_name()),
            }
            assert_eq!(msg.accounted_bytes(), 0, "resume is control plane");
        }
    }

    #[test]
    fn model_roundtrip_and_accounting() {
        let v: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
        let msg = Msg::Model(v.clone());
        assert_eq!(msg.accounted_bytes(), 4000);
        match roundtrip(&msg) {
            (Msg::Model(back), _) => assert_eq!(back, v),
            (other, _) => panic!("wrong kind: {}", other.kind_name()),
        }
        // Control-plane and evaluation messages are never charged.
        assert_eq!(Msg::AvgModel(v.clone()).accounted_bytes(), 0);
        assert_eq!(Msg::FinalModel(v).accounted_bytes(), 0);
        assert_eq!(Msg::Shutdown.accounted_bytes(), 0);
    }

    /// A state message's accounted bytes must equal the monitor's
    /// `state_bytes` — the exact quantity the simulator charges per step.
    #[test]
    fn state_accounting_matches_monitor_convention() {
        let drift: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let lin = LinearMonitor::new();
        assert_eq!(
            Msg::State(lin.local_state(&drift)).accounted_bytes(),
            lin.state_bytes()
        );
        let sk = SketchMonitor::new(SketchConfig::new(5, 25, 1), 64);
        assert_eq!(
            Msg::State(sk.local_state(&drift)).accounted_bytes(),
            sk.state_bytes()
        );
    }

    /// The zombie guard: stale-epoch frames are skipped, the current-epoch
    /// frame behind them is delivered, future epochs and stale floods are
    /// protocol errors.
    #[test]
    fn stale_epochs_skipped_future_rejected() {
        let state = LinearMonitor::new().local_state(&[1.0, 2.0, 3.0]);
        let mut buf: Vec<u8> = Vec::new();
        Msg::State(state.clone()).send(&mut buf, 3).unwrap(); // stale
        Msg::State(state.clone()).send(&mut buf, 4).unwrap(); // stale
        Msg::Model(vec![9.0]).send(&mut buf, 5).unwrap(); // current
        let mut cursor = std::io::Cursor::new(buf);
        match recv_at_epoch(&mut cursor, 5).unwrap() {
            Msg::Model(v) => assert_eq!(v, vec![9.0]),
            other => panic!("wrong kind: {}", other.kind_name()),
        }

        // Future epoch → protocol violation.
        let mut buf: Vec<u8> = Vec::new();
        Msg::State(state.clone()).send(&mut buf, 9).unwrap();
        assert!(matches!(
            recv_at_epoch(&mut std::io::Cursor::new(buf), 5),
            Err(NetError::Protocol(_))
        ));

        // A flood of stale frames → protocol violation, not an endless
        // discard loop.
        let mut buf: Vec<u8> = Vec::new();
        for _ in 0..(MAX_STALE_FRAMES + 2) {
            Msg::State(state.clone()).send(&mut buf, 1).unwrap();
        }
        assert!(matches!(
            recv_at_epoch(&mut std::io::Cursor::new(buf), 5),
            Err(NetError::Protocol(_))
        ));
    }
}
