//! Typed messages over the frame layer.
//!
//! A [`Msg`] is one frame; payloads are the `fda_core::wire` encodings, so
//! the bytes a worker puts on the socket for a local state are *exactly*
//! the bytes the simulator's accounting charges (plus the framing header,
//! which [`Msg::accounted_bytes`] deliberately excludes — the paper's
//! convention charges payload floats, and sub-1% framing overhead is
//! reported separately by the measured raw counters).

use crate::frame::{read_frame, write_frame, FrameKind, NetError, PROTOCOL_VERSION};
use fda_core::monitor::LocalState;
use fda_core::wire::{
    decode_job, decode_state, decode_vector, encode_job, encode_state, encode_vector, JobSpec,
};
use std::io::{Read, Write};

/// One protocol message (see [`FrameKind`] for the direction of each).
#[derive(Debug)]
pub enum Msg {
    /// Worker → coordinator handshake.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// The worker's stable id in `0..K` — the reduction order key.
        worker_id: u32,
    },
    /// Coordinator → worker: the job.
    Config(JobSpec),
    /// Worker → coordinator: this round's local state.
    State(LocalState),
    /// Coordinator → worker: the averaged state and the round's decision.
    AvgState {
        /// `S̄_t`, averaged in worker-id order.
        state: LocalState,
        /// `H(S̄_t) > Θ` — whether a model AllReduce follows.
        sync: bool,
    },
    /// Worker → coordinator: full parameters for the model AllReduce.
    Model(Vec<f32>),
    /// Coordinator → worker: the consensus model.
    AvgModel(Vec<f32>),
    /// Worker → coordinator: final replica (uncharged evaluation traffic).
    FinalModel(Vec<f32>),
    /// Coordinator → worker: run complete.
    Shutdown,
}

impl Msg {
    /// Builds the handshake message for this library's protocol version.
    pub fn hello(worker_id: u32) -> Msg {
        Msg::Hello {
            version: PROTOCOL_VERSION,
            worker_id,
        }
    }

    /// The bytes the paper's accounting convention charges for this
    /// message: the `f32` payload of data-plane messages (`‖u‖²` +
    /// summary for a state, the parameter vector for a model upload), and
    /// zero for control-plane messages (handshake, config, broadcasts —
    /// the convention counts bytes *transmitted by workers*) and for the
    /// uncharged final-model evaluation collection.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Msg::State(s) => 4 + s.summary_slice().len() as u64 * 4,
            Msg::Model(v) => v.len() as u64 * 4,
            _ => 0,
        }
    }

    /// Writes this message as one frame.
    pub fn send<W: Write>(&self, w: &mut W) -> Result<(), NetError> {
        let (kind, payload) = match self {
            Msg::Hello { version, worker_id } => {
                let mut p = Vec::with_capacity(6);
                p.extend_from_slice(&version.to_le_bytes());
                p.extend_from_slice(&worker_id.to_le_bytes());
                (FrameKind::Hello, p)
            }
            Msg::Config(job) => (FrameKind::Config, encode_job(job)),
            Msg::State(s) => (FrameKind::State, encode_state(s)),
            Msg::AvgState { state, sync } => {
                let mut p = vec![*sync as u8];
                p.extend_from_slice(&encode_state(state));
                (FrameKind::AvgState, p)
            }
            Msg::Model(v) => (FrameKind::Model, encode_vector(v)),
            Msg::AvgModel(v) => (FrameKind::AvgModel, encode_vector(v)),
            Msg::FinalModel(v) => (FrameKind::FinalModel, encode_vector(v)),
            Msg::Shutdown => (FrameKind::Shutdown, Vec::new()),
        };
        write_frame(w, kind, &payload)
    }

    /// Reads the next message off the stream.
    pub fn recv<R: Read>(r: &mut R) -> Result<Msg, NetError> {
        let (kind, payload) = read_frame(r)?;
        Ok(match kind {
            FrameKind::Hello => {
                if payload.len() != 6 {
                    return Err(NetError::Protocol(format!(
                        "hello payload must be 6 bytes, got {}",
                        payload.len()
                    )));
                }
                Msg::Hello {
                    version: u16::from_le_bytes(payload[0..2].try_into().expect("len 2")),
                    worker_id: u32::from_le_bytes(payload[2..6].try_into().expect("len 4")),
                }
            }
            FrameKind::Config => Msg::Config(decode_job(&payload)?),
            FrameKind::State => Msg::State(decode_state(&payload)?),
            FrameKind::AvgState => {
                let (&sync_byte, state_bytes) = payload
                    .split_first()
                    .ok_or_else(|| NetError::Protocol("empty avg-state payload".to_string()))?;
                let sync = match sync_byte {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(NetError::Protocol(format!("bad sync byte {b}")));
                    }
                };
                Msg::AvgState {
                    state: decode_state(state_bytes)?,
                    sync,
                }
            }
            FrameKind::Model => Msg::Model(decode_vector(&payload)?),
            FrameKind::AvgModel => Msg::AvgModel(decode_vector(&payload)?),
            FrameKind::FinalModel => Msg::FinalModel(decode_vector(&payload)?),
            FrameKind::Shutdown => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol(
                        "shutdown carries no payload".to_string(),
                    ));
                }
                Msg::Shutdown
            }
        })
    }

    /// Short name for protocol-error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "hello",
            Msg::Config(_) => "config",
            Msg::State(_) => "state",
            Msg::AvgState { .. } => "avg-state",
            Msg::Model(_) => "model",
            Msg::AvgModel(_) => "avg-model",
            Msg::FinalModel(_) => "final-model",
            Msg::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_core::monitor::{LinearMonitor, SketchMonitor, VarianceMonitor};
    use fda_sketch::SketchConfig;

    fn roundtrip(msg: &Msg) -> Msg {
        let mut buf: Vec<u8> = Vec::new();
        msg.send(&mut buf).unwrap();
        Msg::recv(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn hello_roundtrip() {
        match roundtrip(&Msg::hello(3)) {
            Msg::Hello { version, worker_id } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(worker_id, 3);
            }
            other => panic!("wrong kind: {}", other.kind_name()),
        }
    }

    #[test]
    fn state_and_avg_state_roundtrip_bitwise() {
        let drift: Vec<f32> = (0..96).map(|i| (i as f32 * 0.11).sin()).collect();
        for state in [
            LinearMonitor::new().local_state(&drift),
            SketchMonitor::new(SketchConfig::new(3, 16, 5), drift.len()).local_state(&drift),
        ] {
            match roundtrip(&Msg::State(state.clone())) {
                Msg::State(back) => assert_eq!(back, state),
                other => panic!("wrong kind: {}", other.kind_name()),
            }
            match roundtrip(&Msg::AvgState {
                state: state.clone(),
                sync: true,
            }) {
                Msg::AvgState { state: back, sync } => {
                    assert_eq!(back, state);
                    assert!(sync);
                }
                other => panic!("wrong kind: {}", other.kind_name()),
            }
        }
    }

    #[test]
    fn model_roundtrip_and_accounting() {
        let v: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
        let msg = Msg::Model(v.clone());
        assert_eq!(msg.accounted_bytes(), 4000);
        match roundtrip(&msg) {
            Msg::Model(back) => assert_eq!(back, v),
            other => panic!("wrong kind: {}", other.kind_name()),
        }
        // Control-plane and evaluation messages are never charged.
        assert_eq!(Msg::AvgModel(v.clone()).accounted_bytes(), 0);
        assert_eq!(Msg::FinalModel(v).accounted_bytes(), 0);
        assert_eq!(Msg::Shutdown.accounted_bytes(), 0);
    }

    /// A state message's accounted bytes must equal the monitor's
    /// `state_bytes` — the exact quantity the simulator charges per step.
    #[test]
    fn state_accounting_matches_monitor_convention() {
        let drift: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let lin = LinearMonitor::new();
        assert_eq!(
            Msg::State(lin.local_state(&drift)).accounted_bytes(),
            lin.state_bytes()
        );
        let sk = SketchMonitor::new(SketchConfig::new(5, 25, 1), 64);
        assert_eq!(
            Msg::State(sk.local_state(&drift)).accounted_bytes(),
            sk.state_bytes()
        );
    }
}
