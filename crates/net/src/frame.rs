//! Length-prefixed frame protocol over a byte stream.
//!
//! Every message on an `fda_net` connection is one frame:
//!
//! ```text
//! [ len: u32 ] [ kind: u8 ] [ payload: (len − 1) bytes ]
//! ```
//!
//! `len` counts the kind byte plus the payload (little endian, like all of
//! `fda_core::wire`), so a reader always knows exactly how many bytes to
//! pull off the socket before touching a decoder. Frame payloads are the
//! `fda_core::wire` encodings — the frame layer adds transport concerns
//! only: typing, length, and a size cap so a corrupt or hostile length
//! header cannot make the receiver allocate unboundedly.

use fda_core::wire::DecodeError;
use std::io::{Read, Write};

/// Protocol version exchanged in the hello handshake. Bump on any frame
/// or payload layout change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's `len` field (kind byte + payload).
///
/// The largest legitimate frame is a full model vector; 256 MiB covers a
/// 67M-parameter model — far beyond the workspace zoo — while keeping a
/// corrupted length header from looking like a 4 GiB allocation request.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// Frame types of the coordinator/worker protocol, in handshake order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → coordinator: protocol version + worker id.
    Hello = 1,
    /// Coordinator → worker: the job config (`wire::encode_job`).
    Config = 2,
    /// Worker → coordinator: one round's local state
    /// (`wire::encode_state`).
    State = 3,
    /// Coordinator → worker: averaged state + sync decision.
    AvgState = 4,
    /// Worker → coordinator: full model parameters for a synchronization
    /// (`wire::encode_vector`).
    Model = 5,
    /// Coordinator → worker: the AllReduced consensus model.
    AvgModel = 6,
    /// Worker → coordinator: final replica parameters after the last step
    /// (evaluation traffic — uncharged, like `Cluster::average_params`).
    FinalModel = 7,
    /// Coordinator → worker: run complete, close the connection.
    Shutdown = 8,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Config),
            3 => Some(FrameKind::State),
            4 => Some(FrameKind::AvgState),
            5 => Some(FrameKind::Model),
            6 => Some(FrameKind::AvgModel),
            7 => Some(FrameKind::FinalModel),
            8 => Some(FrameKind::Shutdown),
            _ => None,
        }
    }
}

/// Errors of the socket transport.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error (includes read timeouts — the hang guard).
    Io(std::io::Error),
    /// A frame payload failed to decode.
    Decode(DecodeError),
    /// The peer violated the protocol (wrong frame kind, bad handshake,
    /// oversized frame, …).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net io error: {e}"),
            NetError::Decode(e) => write!(f, "net decode error: {e}"),
            NetError::Protocol(what) => write!(f, "net protocol error: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> NetError {
        NetError::Decode(e)
    }
}

/// A byte stream with transmit/receive byte counters — the probe that
/// turns "charged" traffic accounting into *measured* accounting. Counts
/// every byte that crosses the wrapped stream, framing included.
pub struct CountingStream<S> {
    inner: S,
    tx: u64,
    rx: u64,
}

impl<S> CountingStream<S> {
    /// Wraps a stream with zeroed counters.
    pub fn new(inner: S) -> CountingStream<S> {
        CountingStream {
            inner,
            tx: 0,
            rx: 0,
        }
    }

    /// Bytes written to the stream so far.
    pub fn tx_bytes(&self) -> u64 {
        self.tx
    }

    /// Bytes read from the stream so far.
    pub fn rx_bytes(&self) -> u64 {
        self.rx
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.rx += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.tx += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Writes one frame as a single `write_all` (header and payload composed
/// first, so small frames cost one syscall and never interleave).
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — a sender-side bug,
/// not a peer-controlled condition.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), NetError> {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| l <= MAX_FRAME_BYTES as usize)
        .expect("frame payload exceeds MAX_FRAME_BYTES");
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(kind as u8);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, validating the length header against
/// [`MAX_FRAME_BYTES`] before allocating the payload buffer.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(FrameKind, Vec<u8>), NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(NetError::Protocol(format!(
            "frame length {len} outside (0, {MAX_FRAME_BYTES}]"
        )));
    }
    let mut kind_byte = [0u8; 1];
    r.read_exact(&mut kind_byte)?;
    let kind = FrameKind::from_u8(kind_byte[0])
        .ok_or_else(|| NetError::Protocol(format!("unknown frame kind {}", kind_byte[0])))?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, FrameKind::State, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, FrameKind::Shutdown, &[]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (k1, p1) = read_frame(&mut cursor).unwrap();
        assert_eq!((k1, p1.as_slice()), (FrameKind::State, &[1u8, 2, 3][..]));
        let (k2, p2) = read_frame(&mut cursor).unwrap();
        assert_eq!((k2, p2.len()), (FrameKind::Shutdown, 0));
    }

    #[test]
    fn oversized_and_zero_length_headers_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        buf.push(1);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
        let zero = 0u32.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(zero)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(250);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, FrameKind::Model, &[0u8; 64]).unwrap();
        buf.truncate(20);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn counting_stream_counts_both_directions() {
        let mut inner = std::io::Cursor::new(vec![0u8; 32]);
        let mut cs = CountingStream::new(&mut inner);
        cs.write_all(&[1, 2, 3]).unwrap();
        let mut sink = [0u8; 5];
        cs.read_exact(&mut sink).unwrap();
        assert_eq!(cs.tx_bytes(), 3);
        assert_eq!(cs.rx_bytes(), 5);
    }
}
