//! Length-prefixed, checksummed, epoch-stamped frame protocol.
//!
//! Every message on an `fda_net` connection is one frame:
//!
//! ```text
//! [ len: u32 ] [ epoch: u32 ] [ crc: u32 ] [ kind: u8 ] [ payload: (len − 1) bytes ]
//! ```
//!
//! `len` counts the kind byte plus the payload (little endian, like all of
//! `fda_core::wire`), so a reader always knows exactly how many bytes to
//! pull off the socket before touching a decoder. Frame payloads are the
//! `fda_core::wire` encodings — the frame layer adds transport concerns
//! only:
//!
//! * **typing and length** — plus a size cap so a corrupt or hostile
//!   length header cannot make the receiver allocate unboundedly;
//! * **integrity** — `crc` is an FNV-1a checksum over
//!   `[epoch][kind][payload]`, so a bit-flipped frame becomes a clean
//!   per-connection protocol error instead of a silently-wrong decode (the
//!   `len` field is the only unchecksummed region, and a corrupted length
//!   desynchronizes the stream into a checksum or I/O error anyway);
//! * **membership versioning** — `epoch` is the coordinator's membership
//!   epoch (bumped on every worker drop or rejoin), so a stale deposit
//!   from a zombie connection is rejected instead of averaged (see
//!   `protocol::recv_at_epoch` and the coordinator's failure model).

use fda_core::wire::DecodeError;
use std::io::{Read, Write};

/// Protocol version exchanged in the hello handshake. Bump on any frame
/// or payload layout change.
///
/// v2: checksummed + epoch-stamped frame headers, extended hello
/// (`last_epoch`), and the `Resume` handoff frame.
///
/// v3: the config frame carries the uplink payload codec (`JobSpec` wire
/// v2), and `State`/`Model` uplink payloads are codec-encoded — dense
/// runs stay byte-identical to v2, but a v2 peer cannot decode a
/// non-dense upload, so the version gates the pairing.
///
/// v4: the config frame carries the downlink spec (`JobSpec` wire v3)
/// and delta-mode jobs broadcast `AvgModelDelta` frames instead of
/// `AvgModel`. Dense-downlink runs stay byte-identical to v3, but a v3
/// peer cannot decode a delta downlink, so the version gates the pairing.
pub const PROTOCOL_VERSION: u16 = 4;

/// Upper bound on one frame's `len` field (kind byte + payload).
///
/// The largest legitimate frame is a full model vector; 256 MiB covers a
/// 67M-parameter model — far beyond the workspace zoo — while keeping a
/// corrupted length header from looking like a 4 GiB allocation request.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// FNV-1a 32-bit hash — the frame checksum. Dependency-free, one
/// multiply per byte, and more than strong enough to turn random
/// corruption into a detected protocol error (it is an integrity check
/// against faults, not an authenticator against adversaries).
pub fn fnv1a_32(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Frame types of the coordinator/worker protocol, in handshake order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → coordinator: protocol version + worker id + last-seen
    /// membership epoch (0 on a fresh join).
    Hello = 1,
    /// Coordinator → worker: the job config (`wire::encode_job`).
    Config = 2,
    /// Worker → coordinator: one round's local state
    /// (`wire::encode_state`).
    State = 3,
    /// Coordinator → worker: averaged state + sync decision.
    AvgState = 4,
    /// Worker → coordinator: full model parameters for a synchronization
    /// (`wire::encode_vector`).
    Model = 5,
    /// Coordinator → worker: the AllReduced consensus model.
    AvgModel = 6,
    /// Worker → coordinator: final replica parameters after the last step
    /// (evaluation traffic — uncharged, like `Cluster::average_params`).
    FinalModel = 7,
    /// Coordinator → worker: run complete, close the connection.
    Shutdown = 8,
    /// Coordinator → worker: versioned state handoff on (re)join — the
    /// round to resume from, the consensus model, and (when a sync has
    /// happened) the previous consensus for monitor reconstruction.
    Resume = 9,
    /// Coordinator → worker: the downlink-codec-encoded delta between the
    /// previous consensus model and the round's AllReduce mean. Only sent
    /// when the job's `DownlinkSpec` is delta mode; rejoins still receive
    /// a dense `Resume`, so the handoff stays bitwise-exact.
    AvgModelDelta = 10,
}

impl FrameKind {
    /// Lowercase label for metrics and event records.
    pub fn label(&self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::Config => "config",
            FrameKind::State => "state",
            FrameKind::AvgState => "avg_state",
            FrameKind::Model => "model",
            FrameKind::AvgModel => "avg_model",
            FrameKind::FinalModel => "final_model",
            FrameKind::Shutdown => "shutdown",
            FrameKind::Resume => "resume",
            FrameKind::AvgModelDelta => "avg_model_delta",
        }
    }

    /// Per-kind transmit byte counter name (frame image bytes, framing
    /// included) — fed by [`write_frame`].
    fn tx_counter(&self) -> &'static str {
        match self {
            FrameKind::Hello => "net_tx_bytes_hello",
            FrameKind::Config => "net_tx_bytes_config",
            FrameKind::State => "net_tx_bytes_state",
            FrameKind::AvgState => "net_tx_bytes_avg_state",
            FrameKind::Model => "net_tx_bytes_model",
            FrameKind::AvgModel => "net_tx_bytes_avg_model",
            FrameKind::FinalModel => "net_tx_bytes_final_model",
            FrameKind::Shutdown => "net_tx_bytes_shutdown",
            FrameKind::Resume => "net_tx_bytes_resume",
            FrameKind::AvgModelDelta => "net_tx_bytes_avg_model_delta",
        }
    }

    /// Per-kind receive byte counter name — fed by [`read_frame`].
    fn rx_counter(&self) -> &'static str {
        match self {
            FrameKind::Hello => "net_rx_bytes_hello",
            FrameKind::Config => "net_rx_bytes_config",
            FrameKind::State => "net_rx_bytes_state",
            FrameKind::AvgState => "net_rx_bytes_avg_state",
            FrameKind::Model => "net_rx_bytes_model",
            FrameKind::AvgModel => "net_rx_bytes_avg_model",
            FrameKind::FinalModel => "net_rx_bytes_final_model",
            FrameKind::Shutdown => "net_rx_bytes_shutdown",
            FrameKind::Resume => "net_rx_bytes_resume",
            FrameKind::AvgModelDelta => "net_rx_bytes_avg_model_delta",
        }
    }

    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Config),
            3 => Some(FrameKind::State),
            4 => Some(FrameKind::AvgState),
            5 => Some(FrameKind::Model),
            6 => Some(FrameKind::AvgModel),
            7 => Some(FrameKind::FinalModel),
            8 => Some(FrameKind::Shutdown),
            9 => Some(FrameKind::Resume),
            10 => Some(FrameKind::AvgModelDelta),
            _ => None,
        }
    }
}

/// Errors of the socket transport, split by what the retry policy and the
/// coordinator's drop accounting need to distinguish.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error that is neither a timeout nor a peer
    /// disappearance (address in use, permission, …).
    Io(std::io::Error),
    /// A read or write exceeded its liveness deadline — the peer is slow
    /// or stalled, not (yet) known dead. Retryable.
    Timeout(std::io::Error),
    /// The peer went away: EOF, connection reset, broken pipe. Retryable
    /// via the reconnect path.
    Disconnect(std::io::Error),
    /// A frame payload failed to decode.
    Decode(DecodeError),
    /// The peer violated the protocol (wrong frame kind, bad handshake,
    /// oversized frame, checksum mismatch, epoch from the future, …).
    /// Not retryable on the same connection.
    Protocol(String),
    /// The coordinator's live membership fell below the configured
    /// quorum — the typed abort of an unsurvivable run.
    Quorum {
        /// Round at which the quorum was lost.
        round: u32,
        /// Workers still alive.
        alive: usize,
        /// The configured `min_workers` floor.
        min_workers: usize,
    },
}

impl NetError {
    /// Classifies a raw I/O error into [`NetError::Timeout`],
    /// [`NetError::Disconnect`], or [`NetError::Io`].
    pub fn from_io(e: std::io::Error) -> NetError {
        use std::io::ErrorKind as K;
        match e.kind() {
            K::TimedOut | K::WouldBlock => NetError::Timeout(e),
            K::UnexpectedEof
            | K::ConnectionReset
            | K::ConnectionAborted
            | K::BrokenPipe
            | K::NotConnected => NetError::Disconnect(e),
            _ => NetError::Io(e),
        }
    }

    /// Whether a worker's rejoin policy may retry after this error
    /// (timeouts and disconnects — a protocol violation or decode failure
    /// on our own stream would just repeat).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Timeout(_) | NetError::Disconnect(_) | NetError::Io(_)
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net io error: {e}"),
            NetError::Timeout(e) => write!(f, "net timeout: {e}"),
            NetError::Disconnect(e) => write!(f, "net disconnect: {e}"),
            NetError::Decode(e) => write!(f, "net decode error: {e}"),
            NetError::Protocol(what) => write!(f, "net protocol error: {what}"),
            NetError::Quorum {
                round,
                alive,
                min_workers,
            } => write!(
                f,
                "quorum lost at round {round}: {alive} workers alive, need {min_workers}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::from_io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> NetError {
        NetError::Decode(e)
    }
}

/// A byte stream with transmit/receive byte counters — the probe that
/// turns "charged" traffic accounting into *measured* accounting. Counts
/// every byte that crosses the wrapped stream, framing included.
pub struct CountingStream<S> {
    inner: S,
    tx: u64,
    rx: u64,
}

impl<S> CountingStream<S> {
    /// Wraps a stream with zeroed counters.
    pub fn new(inner: S) -> CountingStream<S> {
        CountingStream {
            inner,
            tx: 0,
            rx: 0,
        }
    }

    /// Bytes written to the stream so far.
    pub fn tx_bytes(&self) -> u64 {
        self.tx
    }

    /// Bytes read from the stream so far.
    pub fn rx_bytes(&self) -> u64 {
        self.rx
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.rx += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.tx += n as u64;
        Ok(n)
    }

    // Must delegate explicitly: the `Write` default forwards only the
    // first non-empty buffer, which would silently split every vectored
    // frame write into two syscalls.
    fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
        let n = self.inner.write_vectored(bufs)?;
        self.tx += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Composes one frame's full byte image — header, checksum, kind and
/// payload. Exposed (besides [`write_frame`]) so the fault-injection layer
/// can corrupt or truncate a *realistic* frame before it hits the socket.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — a sender-side bug,
/// not a peer-controlled condition.
pub fn encode_frame(epoch: u32, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| l <= MAX_FRAME_BYTES as usize)
        .expect("frame payload exceeds MAX_FRAME_BYTES");
    let epoch_bytes = epoch.to_le_bytes();
    let crc = fnv1a_32(&[&epoch_bytes, &[kind as u8], payload]);
    let mut buf = Vec::with_capacity(12 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&epoch_bytes);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.push(kind as u8);
    buf.extend_from_slice(payload);
    buf
}

/// Composes one frame's 13-byte head — `[len][epoch][crc][kind]` — on the
/// stack. The checksum covers the payload via the chunked FNV, so the
/// payload bytes are never copied.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — a sender-side bug,
/// not a peer-controlled condition.
fn frame_head(epoch: u32, kind: FrameKind, payload: &[u8]) -> [u8; 13] {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| l <= MAX_FRAME_BYTES as usize)
        .expect("frame payload exceeds MAX_FRAME_BYTES");
    let epoch_bytes = epoch.to_le_bytes();
    let crc = fnv1a_32(&[&epoch_bytes, &[kind as u8], payload]);
    let mut head = [0u8; 13];
    head[0..4].copy_from_slice(&(len as u32).to_le_bytes());
    head[4..8].copy_from_slice(&epoch_bytes);
    head[8..12].copy_from_slice(&crc.to_le_bytes());
    head[12] = kind as u8;
    head
}

/// Writes one frame zero-copy: the 13-byte head lives on the stack and the
/// payload is handed to the socket as a borrowed [`IoSlice`], so the write
/// path allocates nothing and still lands in one syscall on streams with
/// real scatter-gather support. Byte-for-byte identical on the wire to
/// [`encode_frame`] (pinned by the equivalence test below).
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(
    w: &mut W,
    epoch: u32,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), NetError> {
    let head = {
        let _span = fda_obs::histogram!("net_frame_encode_us").span();
        frame_head(epoch, kind, payload)
    };
    {
        let _span = fda_obs::histogram!("net_socket_write_us").span();
        // Manual gather loop: `write_vectored` has no `write_all`
        // counterpart, so advance through partial writes by hand. While
        // any head bytes remain, offer both slices; after that, finish
        // the payload with plain writes.
        let total = head.len() + payload.len();
        let mut pos = 0usize;
        while pos < total {
            let n = if pos < head.len() {
                w.write_vectored(&[
                    std::io::IoSlice::new(&head[pos..]),
                    std::io::IoSlice::new(payload),
                ])?
            } else {
                w.write(&payload[pos - head.len()..])?
            };
            if n == 0 {
                return Err(NetError::from_io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wrote 0 bytes mid-frame",
                )));
            }
            pos += n;
        }
        w.flush()?;
    }
    if fda_obs::enabled() {
        let reg = fda_obs::registry();
        let bytes = 13 + payload.len() as u64;
        reg.counter(kind.tx_counter()).add(bytes);
        reg.counter("net_tx_vectored_bytes").add(bytes);
    }
    Ok(())
}

/// Reads one frame into a caller-owned buffer, validating the length
/// header against [`MAX_FRAME_BYTES`] before growing the buffer and
/// verifying the checksum before handing the payload to any decoder.
///
/// On success `buf` holds the frame body — the kind byte followed by the
/// payload, i.e. the payload is `&buf[1..]` — and the frame's kind and
/// membership epoch stamp are returned. Reusing one buffer per connection
/// turns the read path's per-frame allocation into an amortized no-op
/// (the buffer only grows to the largest frame seen).
pub fn read_frame_into<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
) -> Result<(FrameKind, u32), NetError> {
    let mut header = [0u8; 12];
    {
        let _span = fda_obs::histogram!("net_socket_read_us").span();
        r.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("len 4"));
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(NetError::Protocol(format!(
                "frame length {len} outside (0, {MAX_FRAME_BYTES}]"
            )));
        }
        buf.clear();
        buf.resize(len as usize, 0);
        r.read_exact(buf)?;
    }
    let _span = fda_obs::histogram!("net_frame_decode_us").span();
    let epoch_bytes: [u8; 4] = header[4..8].try_into().expect("len 4");
    let epoch = u32::from_le_bytes(epoch_bytes);
    let crc = u32::from_le_bytes(header[8..12].try_into().expect("len 4"));
    let (kind_byte, payload) = buf.split_first().expect("len >= 1");
    let actual = fnv1a_32(&[&epoch_bytes, &[*kind_byte], payload]);
    if actual != crc {
        return Err(NetError::Protocol(format!(
            "frame checksum mismatch (declared {crc:#010x}, computed {actual:#010x})"
        )));
    }
    let kind = FrameKind::from_u8(*kind_byte)
        .ok_or_else(|| NetError::Protocol(format!("unknown frame kind {kind_byte}")))?;
    if fda_obs::enabled() {
        fda_obs::registry()
            .counter(kind.rx_counter())
            .add(12 + buf.len() as u64);
    }
    Ok((kind, epoch))
}

/// Reads one frame, returning an owned payload. Allocating convenience
/// wrapper over [`read_frame_into`] for handshake paths and tests; the
/// round loop holds a per-connection buffer and calls the `_into` form.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(FrameKind, u32, Vec<u8>), NetError> {
    let mut buf = Vec::new();
    let (kind, epoch) = read_frame_into(r, &mut buf)?;
    buf.copy_within(1.., 0);
    buf.truncate(buf.len() - 1);
    Ok((kind, epoch, buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, 3, FrameKind::State, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, 7, FrameKind::Shutdown, &[]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (k1, e1, p1) = read_frame(&mut cursor).unwrap();
        assert_eq!(
            (k1, e1, p1.as_slice()),
            (FrameKind::State, 3, &[1u8, 2, 3][..])
        );
        let (k2, e2, p2) = read_frame(&mut cursor).unwrap();
        assert_eq!((k2, e2, p2.len()), (FrameKind::Shutdown, 7, 0));
    }

    #[test]
    fn oversized_and_zero_length_headers_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        buf.push(1);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
        let mut zero = 0u32.to_le_bytes().to_vec();
        zero.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(zero)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        // Compose a frame with a valid checksum but an unassigned kind
        // byte: the checksum passes, the kind dispatch must still reject.
        let epoch = 5u32.to_le_bytes();
        let crc = fnv1a_32(&[&epoch, &[250u8]]);
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&epoch);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.push(250);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_stream_is_disconnect() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, 1, FrameKind::Model, &[0u8; 64]).unwrap();
        buf.truncate(20);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)),
            Err(NetError::Disconnect(_))
        ));
    }

    /// The bit-flip regression: every single-bit corruption of the frame
    /// image past the length field must surface as a clean error (checksum
    /// mismatch or unknown kind), never as a silently different decode.
    #[test]
    fn every_bit_flip_past_len_is_detected() {
        let frame = encode_frame(42, FrameKind::State, &[9, 8, 7, 6, 5]);
        for byte in 4..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                let res = read_frame(&mut std::io::Cursor::new(corrupt));
                assert!(
                    matches!(res, Err(NetError::Protocol(_))),
                    "flip of byte {byte} bit {bit} was not detected"
                );
            }
        }
    }

    /// Length-field corruption desynchronizes the stream: it must fail
    /// (checksum, bounds, or I/O) — the property is totality, not which
    /// error.
    #[test]
    fn len_field_bit_flips_never_decode() {
        let frame = encode_frame(1, FrameKind::AvgState, &[1; 40]);
        for byte in 0..4 {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    read_frame(&mut std::io::Cursor::new(corrupt)).is_err(),
                    "len flip byte {byte} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn io_error_classification() {
        use std::io::{Error, ErrorKind};
        assert!(matches!(
            NetError::from_io(Error::new(ErrorKind::TimedOut, "t")),
            NetError::Timeout(_)
        ));
        assert!(matches!(
            NetError::from_io(Error::new(ErrorKind::WouldBlock, "t")),
            NetError::Timeout(_)
        ));
        assert!(matches!(
            NetError::from_io(Error::new(ErrorKind::ConnectionReset, "r")),
            NetError::Disconnect(_)
        ));
        assert!(matches!(
            NetError::from_io(Error::new(ErrorKind::UnexpectedEof, "e")),
            NetError::Disconnect(_)
        ));
        assert!(matches!(
            NetError::from_io(Error::new(ErrorKind::AddrInUse, "a")),
            NetError::Io(_)
        ));
        assert!(NetError::from_io(Error::new(ErrorKind::TimedOut, "t")).is_retryable());
        assert!(!NetError::Protocol("x".into()).is_retryable());
    }

    #[test]
    fn counting_stream_counts_both_directions() {
        let mut inner = std::io::Cursor::new(vec![0u8; 32]);
        let mut cs = CountingStream::new(&mut inner);
        cs.write_all(&[1, 2, 3]).unwrap();
        let mut sink = [0u8; 5];
        cs.read_exact(&mut sink).unwrap();
        assert_eq!(cs.tx_bytes(), 3);
        assert_eq!(cs.rx_bytes(), 5);
    }

    /// The zero-copy invariant: the vectored write path must emit the
    /// exact octets of [`encode_frame`] for every kind, from the empty
    /// payload up through a model-sized one ("max-size" here means the
    /// largest CI-tractable image — 1 MiB; the 256 MiB cap itself is
    /// exercised by the oversize panic tests, which would need half a
    /// gigabyte of buffers to hit byte-for-byte).
    #[test]
    fn vectored_write_matches_encode_frame_for_every_kind() {
        let kinds = [
            FrameKind::Hello,
            FrameKind::Config,
            FrameKind::State,
            FrameKind::AvgState,
            FrameKind::Model,
            FrameKind::AvgModel,
            FrameKind::FinalModel,
            FrameKind::Shutdown,
            FrameKind::Resume,
            FrameKind::AvgModelDelta,
        ];
        for kind in kinds {
            for len in [0usize, 1, 12, 13, 4096, 1 << 20] {
                let payload: Vec<u8> = (0..len).map(|i| (i * 31 + kind as usize) as u8).collect();
                let reference = encode_frame(9_000 + len as u32, kind, &payload);
                // `Vec<u8>`'s `write_vectored` appends every buffer.
                let mut vectored: Vec<u8> = Vec::new();
                write_frame(&mut vectored, 9_000 + len as u32, kind, &payload).unwrap();
                assert_eq!(
                    vectored, reference,
                    "vectored bytes diverge for {kind:?} len {len}"
                );
            }
        }
    }

    /// A sink that accepts one byte per call and only implements `write`
    /// (so `write_vectored` falls back to the first-buffer default):
    /// drives the gather loop through every partial-write offset, inside
    /// the head and inside the payload.
    struct Trickle(Vec<u8>);
    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let payload: Vec<u8> = (0..257).map(|i| i as u8).collect();
        let mut sink = Trickle(Vec::new());
        write_frame(&mut sink, 77, FrameKind::Model, &payload).unwrap();
        assert_eq!(sink.0, encode_frame(77, FrameKind::Model, &payload));
    }

    #[test]
    #[should_panic(expected = "frame payload exceeds MAX_FRAME_BYTES")]
    fn vectored_write_rejects_oversized_payload() {
        let huge = vec![0u8; MAX_FRAME_BYTES as usize];
        let _ = write_frame(&mut Vec::new(), 0, FrameKind::Model, &huge);
    }

    #[test]
    fn read_frame_into_reuses_the_buffer() {
        let mut wire: Vec<u8> = Vec::new();
        write_frame(&mut wire, 2, FrameKind::Model, &[5u8; 128]).unwrap();
        write_frame(&mut wire, 2, FrameKind::State, &[9u8; 16]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let (k1, e1) = read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!((k1, e1), (FrameKind::Model, 2));
        assert_eq!(&buf[1..], &[5u8; 128][..]);
        let cap = buf.capacity();
        let (k2, _) = read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!(k2, FrameKind::State);
        assert_eq!(&buf[1..], &[9u8; 16][..]);
        assert_eq!(buf.capacity(), cap, "smaller frame must not reallocate");
    }

    #[test]
    fn counting_stream_counts_vectored_writes() {
        let mut inner: Vec<u8> = Vec::new();
        let mut cs = CountingStream::new(&mut inner);
        let n = cs
            .write_vectored(&[
                std::io::IoSlice::new(&[1, 2, 3]),
                std::io::IoSlice::new(&[4, 5]),
            ])
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(cs.tx_bytes(), 5);
        assert_eq!(inner, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fnv1a_chunking_is_concatenation() {
        let whole = fnv1a_32(&[b"abcdef"]);
        let chunked = fnv1a_32(&[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, chunked);
        assert_ne!(fnv1a_32(&[b"abcdef"]), fnv1a_32(&[b"abcdeg"]));
    }
}
