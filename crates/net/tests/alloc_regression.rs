//! Allocation-regression fence for the transport's steady-state round
//! loop: the coordinator's per-round allocation count must be a small
//! constant — payload buffers, receive buffers, and broadcast scratch are
//! round-persistent, so growing the run by N rounds may only add the
//! constant per-round bookkeeping (per-worker state decodes, the round
//! log), never per-byte work like frame re-encoding or `to_vec` copies of
//! received payloads.
//!
//! Measured with a *thread-local* counter inside the global allocator:
//! `run_with_thread_workers` runs the coordinator on the calling thread
//! and the workers on their own threads, so the calling thread's count is
//! exactly the coordinator's. Lives in its own test binary so the
//! counting allocator is isolated from the other suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fda_core::cluster::ClusterConfig;
use fda_core::fda::FdaConfig;
use fda_core::wire::JobSpec;
use fda_data::synth::SynthSpec;

struct ThreadCountingAlloc;

thread_local! {
    // Const-init `Cell<u64>` carries no destructor and no lazy
    // initialization, so the allocator can touch it without recursing.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for ThreadCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: ThreadCountingAlloc = ThreadCountingAlloc;

const K: usize = 3;

/// Runs a Θ = ∞ job (state-only rounds — the steady-state fast path) and
/// returns the coordinator thread's allocation count for the whole run.
fn coordinator_allocs(steps: u32) -> u64 {
    let spec = JobSpec {
        cluster: ClusterConfig {
            workers: K,
            ..ClusterConfig::small_test(K)
        },
        fda: FdaConfig::linear(f32::INFINITY),
        codec: fda_comm::CodecSpec::Dense,
        downlink: fda_comm::DownlinkSpec::Dense,
        steps,
        synth: SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        },
        task_name: "alloc-regression".to_string(),
    };
    let before = THREAD_ALLOCS.with(Cell::get);
    let report = fda_net::run_with_thread_workers(&spec).expect("alloc-fence run");
    let after = THREAD_ALLOCS.with(Cell::get);
    assert_eq!(report.decisions.len(), steps as usize, "all rounds ran");
    assert_eq!(report.syncs, 0, "Θ = ∞ must stay state-only");
    after - before
}

/// The fence: differencing two run lengths cancels the per-run setup
/// (listener, handshakes, config/resume encoding, final collection), so
/// the slope is the coordinator's marginal allocations per round. The
/// budget has headroom over the observed cost (K state decodes plus the
/// round log and telemetry bookkeeping) but sits far below what any
/// per-send encode buffer or per-recv `to_vec` would add.
#[test]
fn coordinator_round_loop_allocations_are_flat() {
    // Warm-up: metric registration, runtime one-time init.
    let _ = coordinator_allocs(3);
    let short = coordinator_allocs(6);
    let long = coordinator_allocs(30);
    assert!(
        long >= short,
        "longer run cannot allocate less ({long} vs {short})"
    );
    let per_round = (long - short) as f64 / (30.0 - 6.0);
    const BUDGET_PER_ROUND: f64 = 8.0;
    assert!(
        per_round <= BUDGET_PER_ROUND,
        "coordinator allocates {per_round:.1}/round (short run {short}, long \
         run {long}); budget is {BUDGET_PER_ROUND}/round — did a per-round \
         encode buffer or payload copy sneak back into the hot path?"
    );
}
