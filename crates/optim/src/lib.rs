//! # fda-optim
//!
//! Optimizers over the flat-parameter view exposed by `fda-nn`.
//!
//! The paper's experiments use (Table 2):
//! * **Adam** for LeNet-5 / VGG16* (default hyper-parameters),
//! * **SGD with Nesterov momentum** (momentum 0.9, lr 0.1) for the
//!   DenseNets, plus weight decay `1e-4`,
//! * **AdamW** for ConvNeXtLarge fine-tuning,
//! * server-side **SGD-M** (FedAvgM) and **Adam** (FedAdam) for the FedOpt
//!   baselines — the server optimizers consume the *pseudo-gradient*
//!   `−Δ = w_prev − w̄_new` as their gradient.
//!
//! All optimizers implement one trait, [`Optimizer`], operating in place on
//! a flat `&mut [f32]` parameter vector — exactly the `Optimize(w, B)`
//! abstraction of the paper (§3 Notation).

pub mod adam;
pub mod sgd;

use std::fmt;

pub use adam::{Adam, AdamW};
pub use sgd::{MomentumMode, Sgd, SgdMomentum};

/// A stateful first-order optimizer over flat parameters.
pub trait Optimizer: Send {
    /// Applies one update step: mutates `params` given `grads`.
    ///
    /// # Panics
    /// Implementations panic on length mismatches.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Resets internal state (moments, step counter).
    fn reset(&mut self);

    /// The configured base learning rate.
    fn learning_rate(&self) -> f32;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Which optimizer to instantiate — a serializable-by-hand configuration
/// used by experiment descriptors (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD with the given learning rate.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with (optionally Nesterov) momentum and decoupled weight decay.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// Nesterov vs classical momentum.
        nesterov: bool,
        /// Decoupled weight decay (0 disables).
        weight_decay: f32,
    },
    /// Adam with default betas/eps.
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// AdamW (decoupled weight decay).
    AdamW {
        /// Learning rate.
        lr: f32,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// Instantiates the optimizer for a `dim`-parameter model.
    pub fn build(self, dim: usize) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerKind::SgdMomentum {
                lr,
                momentum,
                nesterov,
                weight_decay,
            } => Box::new(SgdMomentum::new(
                lr,
                momentum,
                if nesterov {
                    MomentumMode::Nesterov
                } else {
                    MomentumMode::Classical
                },
                weight_decay,
                dim,
            )),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr, dim)),
            OptimizerKind::AdamW { lr, weight_decay } => {
                Box::new(AdamW::new(lr, weight_decay, dim))
            }
        }
    }

    /// The paper's local optimizer for LeNet-5 / VGG16*: Adam, defaults.
    pub fn paper_adam() -> OptimizerKind {
        OptimizerKind::Adam { lr: 1e-3 }
    }

    /// The paper's local optimizer for the DenseNets: SGD-NM
    /// (momentum 0.9, lr 0.1, weight decay 1e-4).
    ///
    /// Note: our scaled models train stably at lr 0.1 like the originals,
    /// but benches may pass a smaller lr when sweeping tiny batch counts.
    pub fn paper_sgd_nm(lr: f32) -> OptimizerKind {
        OptimizerKind::SgdMomentum {
            lr,
            momentum: 0.9,
            nesterov: true,
            weight_decay: 1e-4,
        }
    }

    /// The paper's optimizer for ConvNeXt fine-tuning: AdamW.
    pub fn paper_adamw() -> OptimizerKind {
        OptimizerKind::AdamW {
            lr: 1e-3,
            weight_decay: 1e-4,
        }
    }

    /// FedAvgM's server optimizer: SGD with momentum 0.9 and lr 0.316
    /// (√0.1, following Reddi et al. as cited in §4.1).
    pub fn fedavgm_server() -> OptimizerKind {
        OptimizerKind::SgdMomentum {
            lr: 0.316,
            momentum: 0.9,
            nesterov: false,
            weight_decay: 0.0,
        }
    }

    /// FedAdam's server optimizer: Adam with the reference lr 1e-2.
    pub fn fedadam_server() -> OptimizerKind {
        OptimizerKind::Adam { lr: 1e-2 }
    }
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerKind::Sgd { lr } => write!(f, "SGD(lr={lr})"),
            OptimizerKind::SgdMomentum {
                lr,
                momentum,
                nesterov,
                ..
            } => {
                if *nesterov {
                    write!(f, "SGD-NM(lr={lr},m={momentum})")
                } else {
                    write!(f, "SGD-M(lr={lr},m={momentum})")
                }
            }
            OptimizerKind::Adam { lr } => write!(f, "Adam(lr={lr})"),
            OptimizerKind::AdamW { lr, .. } => write!(f, "AdamW(lr={lr})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing the convex quadratic f(w) = Σ wᵢ² must drive ‖w‖ → 0 for
    /// every optimizer kind — a behavioural contract test over the trait.
    #[test]
    fn all_kinds_descend_on_quadratic() {
        let kinds = [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::SgdMomentum {
                lr: 0.05,
                momentum: 0.9,
                nesterov: true,
                weight_decay: 0.0,
            },
            OptimizerKind::Adam { lr: 0.05 },
            OptimizerKind::AdamW {
                lr: 0.05,
                weight_decay: 1e-4,
            },
        ];
        for kind in kinds {
            let mut opt = kind.build(4);
            let mut w = vec![1.0f32, -2.0, 0.5, 3.0];
            for _ in 0..300 {
                let g: Vec<f32> = w.iter().map(|v| 2.0 * v).collect();
                opt.step(&mut w, &g);
            }
            let norm: f32 = w.iter().map(|v| v * v).sum();
            assert!(norm < 1e-2, "{kind}: ‖w‖² = {norm} did not shrink");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OptimizerKind::paper_adam().to_string(), "Adam(lr=0.001)");
        assert!(OptimizerKind::paper_sgd_nm(0.1)
            .to_string()
            .starts_with("SGD-NM"));
    }
}
