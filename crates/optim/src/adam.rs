//! Adam and AdamW.

use crate::Optimizer;

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
///
/// Default hyper-parameters follow the original paper, which is also what
/// the FDA paper uses for LeNet-5 / VGG16* local optimization and (with a
/// larger server learning rate) for FedAdam's server step.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates Adam with default betas (0.9, 0.999) and eps 1e-7.
    pub fn new(lr: f32, dim: usize) -> Self {
        Adam::with_params(lr, 0.9, 0.999, 1e-7, dim)
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_params(lr: f32, beta1: f32, beta2: f32, eps: f32, dim: usize) -> Self {
        assert!(lr > 0.0, "adam: learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "adam: beta1 in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "adam: beta2 in [0,1)");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "adam: length mismatch");
        assert_eq!(params.len(), self.m.len(), "adam: dim mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.iter_mut().for_each(|v| *v = 0.0);
        self.v.iter_mut().for_each(|v| *v = 0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// AdamW (Loshchilov & Hutter): Adam with *decoupled* weight decay, used by
/// the paper for ConvNeXtLarge fine-tuning.
#[derive(Debug, Clone)]
pub struct AdamW {
    inner: Adam,
    weight_decay: f32,
}

impl AdamW {
    /// Creates AdamW with default betas and the given decoupled decay.
    pub fn new(lr: f32, weight_decay: f32, dim: usize) -> Self {
        assert!(weight_decay >= 0.0, "adamw: weight decay must be >= 0");
        AdamW {
            inner: Adam::new(lr, dim),
            weight_decay,
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        // Decoupled decay applied directly to weights, then an Adam step.
        let decay = self.inner.lr * self.weight_decay;
        if decay > 0.0 {
            for p in params.iter_mut() {
                *p -= decay * *p;
            }
        }
        self.inner.step(params, grads);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn learning_rate(&self) -> f32 {
        self.inner.lr
    }

    fn name(&self) -> &'static str {
        "adamw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new(0.1, 2);
        let mut w = vec![0.0f32, 0.0];
        opt.step(&mut w, &[3.0, -0.5]);
        assert!(
            (w[0] + 0.1).abs() < 1e-3,
            "step should be ≈ -lr, got {}",
            w[0]
        );
        assert!(
            (w[1] - 0.1).abs() < 1e-3,
            "step should be ≈ +lr, got {}",
            w[1]
        );
    }

    #[test]
    fn adam_converges_on_ill_conditioned_quadratic() {
        // f(w) = 100·w₀² + 0.01·w₁² — adaptive scaling should handle the
        // 10⁴ conditioning gap where plain SGD at a workable lr crawls.
        let mut opt = Adam::new(0.1, 2);
        let mut w = vec![1.0f32, 1.0];
        for _ in 0..2000 {
            let g = [200.0 * w[0], 0.02 * w[1]];
            opt.step(&mut w, &g);
        }
        assert!(w[0].abs() < 1e-3, "w0 = {}", w[0]);
        assert!(w[1].abs() < 0.15, "w1 = {}", w[1]);
    }

    #[test]
    fn adamw_decay_shrinks_without_gradient() {
        let mut opt = AdamW::new(0.1, 0.5, 1);
        let mut w = vec![1.0f32];
        // Zero gradient: only the decoupled decay moves the weight.
        opt.step(&mut w, &[0.0]);
        assert!((w[0] - 0.95).abs() < 1e-6, "1 − lr·wd = 0.95, got {}", w[0]);
    }

    #[test]
    fn adamw_equals_adam_when_decay_zero() {
        let mut a = Adam::new(0.05, 3);
        let mut aw = AdamW::new(0.05, 0.0, 3);
        let mut w1 = vec![0.3f32, -0.2, 0.9];
        let mut w2 = w1.clone();
        for s in 0..50 {
            let g: Vec<f32> = w1.iter().map(|v| v + s as f32 * 0.01).collect();
            a.step(&mut w1, &g);
            let g2: Vec<f32> = w2.iter().map(|v| v + s as f32 * 0.01).collect();
            aw.step(&mut w2, &g2);
        }
        for (x, y) in w1.iter().zip(&w2) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut opt = Adam::new(0.1, 1);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]);
        let first = w[0];
        opt.reset();
        let mut w2 = vec![0.0f32];
        opt.step(&mut w2, &[1.0]);
        assert_eq!(w2[0], first);
    }
}
