//! Stochastic gradient descent, with and without momentum.

use crate::Optimizer;

/// Plain SGD: `w ← w − η·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "sgd: learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd: length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn reset(&mut self) {}

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Classical vs Nesterov momentum update rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomentumMode {
    /// `v ← μ·v + g; w ← w − η·v`
    Classical,
    /// `v ← μ·v + g; w ← w − η·(g + μ·v)` (Sutskever formulation)
    Nesterov,
}

/// SGD with momentum and optional decoupled weight decay.
///
/// This is the paper's "SGD-NM" local optimizer for the DenseNets
/// (momentum 0.9, lr 0.1, weight decay 1e-4) and, with
/// [`MomentumMode::Classical`], the FedAvgM *server* optimizer.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    mode: MomentumMode,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates momentum SGD for a `dim`-parameter model.
    pub fn new(lr: f32, momentum: f32, mode: MomentumMode, weight_decay: f32, dim: usize) -> Self {
        assert!(lr > 0.0, "sgd-m: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "sgd-m: momentum must be in [0, 1)"
        );
        assert!(weight_decay >= 0.0, "sgd-m: weight decay must be >= 0");
        SgdMomentum {
            lr,
            momentum,
            mode,
            weight_decay,
            velocity: vec![0.0; dim],
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd-m: length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "sgd-m: dim mismatch");
        let mu = self.momentum;
        for i in 0..params.len() {
            // Decoupled weight decay (does not enter the velocity).
            if self.weight_decay > 0.0 {
                params[i] -= self.lr * self.weight_decay * params[i];
            }
            let v = mu * self.velocity[i] + grads[i];
            self.velocity[i] = v;
            let update = match self.mode {
                MomentumMode::Classical => v,
                MomentumMode::Nesterov => grads[i] + mu * v,
            };
            params[i] -= self.lr * update;
        }
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        match self.mode {
            MomentumMode::Classical => "sgd-m",
            MomentumMode::Nesterov => "sgd-nm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_known_step() {
        let mut opt = Sgd::new(0.5);
        let mut w = vec![1.0f32, 2.0];
        opt.step(&mut w, &[1.0, -1.0]);
        assert_eq!(w, vec![0.5, 2.5]);
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradient() {
        // With a constant gradient, momentum's effective step grows toward
        // η/(1−μ); after a few steps the per-step displacement must exceed
        // plain SGD's.
        let mut plain = Sgd::new(0.1);
        let mut mom = SgdMomentum::new(0.1, 0.9, MomentumMode::Classical, 0.0, 1);
        let g = [1.0f32];
        let mut wp = vec![0.0f32];
        let mut wm = vec![0.0f32];
        for _ in 0..20 {
            plain.step(&mut wp, &g);
            mom.step(&mut wm, &g);
        }
        assert!(
            wm[0] < wp[0] - 0.5,
            "momentum should travel further: {} vs {}",
            wm[0],
            wp[0]
        );
    }

    #[test]
    fn nesterov_converges_on_quadratic() {
        let mut opt = SgdMomentum::new(0.05, 0.9, MomentumMode::Nesterov, 0.0, 2);
        let mut w = vec![5.0f32, -3.0];
        for _ in 0..400 {
            let g: Vec<f32> = w.iter().map(|v| 2.0 * v).collect();
            opt.step(&mut w, &g);
        }
        assert!(w.iter().all(|v| v.abs() < 1e-3), "w = {w:?}");
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut opt = SgdMomentum::new(0.1, 0.0, MomentumMode::Classical, 0.5, 1);
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[0.0]);
        assert!((w[0] - 0.95).abs() < 1e-6, "decoupled decay: 1 - 0.1*0.5");
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = SgdMomentum::new(0.1, 0.9, MomentumMode::Classical, 0.0, 1);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]);
        opt.reset();
        let mut w2 = vec![0.0f32];
        opt.step(&mut w2, &[1.0]);
        assert_eq!(w2[0], -0.1, "first step after reset is momentum-free");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![0.0f32; 2];
        opt.step(&mut w, &[1.0]);
    }
}
