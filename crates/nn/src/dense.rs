//! Fully-connected (dense) layer and the [`Flatten`] layout boundary.
//!
//! Dense layers operate on **sample-major** activations (`batch × features`
//! rows). A conv stack runs channel-major (see [`crate::layer`]), so the
//! transition into the dense head goes through exactly one [`Flatten`],
//! which converts `c × batch·spatial` back to `batch × c·spatial` — the
//! single place in a model where the activation layout changes after entry.

use crate::init::Init;
use crate::layer::{Layer, Shape3};
use fda_tensor::{matrix, matrix::Scratch, Matrix, Rng};

/// The conv→dense layout boundary: converts a channel-major activation
/// (`c × batch·spatial`) into the sample-major `batch × c·spatial` matrix a
/// [`Dense`] layer expects, and converts the gradient back on the way down.
///
/// Feature order within each flattened row is `(channel, y, x)` — the same
/// order datasets use — so the flattened width equals
/// [`Shape3::len`] and wiring stays layout-blind.
pub struct Flatten {
    shape: Shape3,
    batch: usize,
}

impl Flatten {
    /// Creates a flatten boundary for the given spatial input shape.
    pub fn new(shape: Shape3) -> Self {
        assert!(!shape.is_empty(), "flatten: empty shape {shape:?}");
        Flatten { shape, batch: 0 }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        self.batch = self.shape.batch_of(&x, "flatten input");
        x.to_sample_major(self.batch)
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.cols(),
            self.shape.len(),
            "flatten: grad width {} != flattened dims {} of {:?}",
            dy.cols(),
            self.shape.len(),
            self.shape
        );
        assert_eq!(
            dy.rows(),
            self.batch,
            "flatten: backward without matching forward"
        );
        dy.to_channel_major(self.shape.c)
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.shape.len(),
            "flatten: wired to wrong input width (got {in_dim}, want {} for {:?})",
            self.shape.len(),
            self.shape
        );
        in_dim
    }

    fn in_shape3(&self) -> Option<Shape3> {
        Some(self.shape)
    }
}

/// A dense layer `y = x·W + b` with `W ∈ R^{in×out}`, `b ∈ R^{out}`.
///
/// Gradients accumulate across `backward` calls until [`Layer::zero_grads`];
/// this matches mini-batch accumulation semantics and lets the optimizer
/// consume a single flat gradient vector per step.
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Matrix,
    b: Vec<f32>,
    dw: Matrix,
    db: Vec<f32>,
    cache_x: Matrix,
    // GEMM packing arena, reused across steps.
    scratch: Scratch,
    // Wᵀ staging buffer for the input-gradient GEMM (refreshed each
    // backward; reused allocation).
    w_t: Matrix,
}

impl Dense {
    /// Creates a dense layer with the given initializer.
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng) -> Self {
        let mut w = Matrix::zeros(in_dim, out_dim);
        init.fill(w.as_mut_slice(), in_dim, out_dim, rng);
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            dw: Matrix::zeros(in_dim, out_dim),
            db: vec![0.0; out_dim],
            cache_x: Matrix::zeros(0, 0),
            scratch: Scratch::new(),
            w_t: Matrix::zeros(0, 0),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "dense: input width mismatch");
        let mut y = Matrix::zeros(x.rows(), self.out_dim);
        matrix::gemm_accumulate_with(&x, &self.w, &mut y, &mut self.scratch);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v += self.b[c];
            }
        }
        // Take ownership of the input as the backward cache — no copy.
        self.cache_x = x;
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(dy.cols(), self.out_dim, "dense: grad width mismatch");
        assert_eq!(
            dy.rows(),
            self.cache_x.rows(),
            "dense: backward without matching forward"
        );
        // dW += xᵀ · dy
        matrix::gemm_at_b_accumulate_with(&self.cache_x, &dy, &mut self.dw, &mut self.scratch);
        // db += column sums of dy
        for r in 0..dy.rows() {
            let row = dy.row(r);
            for (c, v) in row.iter().enumerate() {
                self.db[c] += v;
            }
        }
        // dx = dy · Wᵀ. Materializing Wᵀ (tiny, reused buffer) turns this
        // into a contiguous-B product eligible for the streaming mid
        // kernel, which beats the transpose-packed path at dense-layer
        // sizes.
        if self.w_t.rows() != self.out_dim {
            self.w_t = Matrix::zeros(self.out_dim, self.in_dim);
        }
        for r in 0..self.w.rows() {
            let row = self.w.row(r);
            for (c, &v) in row.iter().enumerate() {
                self.w_t.set(c, r, v);
            }
        }
        let mut dx = Matrix::zeros(dy.rows(), self.in_dim);
        matrix::gemm_accumulate_with(&dy, &self.w_t, &mut dx, &mut self.scratch);
        dx
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![self.dw.as_slice(), &self.db]
    }

    fn zero_grads(&mut self) {
        self.dw.clear();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(in_dim, self.in_dim, "dense: wired to wrong input width");
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(0);
        let mut layer = Dense::new(2, 2, Init::GlorotUniform, &mut rng);
        // Overwrite with known weights: W = [[1,2],[3,4]], b = [10, 20].
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        layer.b = vec![10.0, 20.0];
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let mut rng = Rng::new(1);
        let mut layer = Dense::new(3, 2, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let _ = layer.forward(x.clone(), true);
        let dy = Matrix::from_vec(4, 2, vec![1.0; 8]);
        let dx = layer.backward(dy);
        assert_eq!(dx.rows(), 4);
        assert_eq!(dx.cols(), 3);
        // Bias gradient is the column sum of dy = 4 for each output.
        assert_eq!(layer.grads()[1], &[4.0, 4.0]);
    }

    #[test]
    fn zero_grads_resets() {
        let mut rng = Rng::new(2);
        let mut layer = Dense::new(2, 2, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let _ = layer.forward(x.clone(), true);
        let _ = layer.backward(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        assert!(layer.grads().iter().any(|g| g.iter().any(|&v| v != 0.0)));
        layer.zero_grads();
        assert!(layer.grads().iter().all(|g| g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn flatten_round_trips_layout() {
        let shape = Shape3::new(2, 2, 3);
        let mut flat = Flatten::new(shape);
        // Channel-major: 2 channel rows × 2 sample blocks of 6.
        let mut x = Matrix::zeros(2, 12);
        Rng::new(5).fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let y = flat.forward(x.clone(), true);
        assert_eq!((y.rows(), y.cols()), (2, 12), "flatten emits sample rows");
        // Sample 0's features are (c0 plane, c1 plane) in dataset order.
        assert_eq!(&y.row(0)[..6], &x.row(0)[..6]);
        assert_eq!(&y.row(0)[6..], &x.row(1)[..6]);
        let dx = flat.backward(y.clone());
        assert_eq!(dx.as_slice(), x.as_slice(), "backward is the inverse");
        assert_eq!(flat.out_dim(12), 12);
    }

    #[test]
    #[should_panic(expected = "not channel-major")]
    fn flatten_mismatched_dims_panics() {
        // A sample-major batch arriving at Flatten (the historical silent
        // wrong-answer) must fail loudly.
        let mut flat = Flatten::new(Shape3::new(3, 2, 2));
        let _ = flat.forward(Matrix::zeros(4, 12), true);
    }

    #[test]
    fn param_count_matches_slices() {
        let mut rng = Rng::new(3);
        let layer = Dense::new(5, 7, Init::GlorotUniform, &mut rng);
        let total: usize = layer.params().iter().map(|p| p.len()).sum();
        assert_eq!(total, layer.param_count());
        assert_eq!(total, 5 * 7 + 7);
    }
}
