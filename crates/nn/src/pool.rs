//! Spatial pooling layers.

use crate::layer::{Layer, Shape3};
use fda_tensor::Matrix;

/// Non-overlapping 2-D max pooling with a square window.
///
/// Window size equals stride (the configuration used by LeNet/VGG-style
/// models). Input extents must be divisible by the window size.
pub struct MaxPool2d {
    in_shape: Shape3,
    out_shape: Shape3,
    size: usize,
    // argmax positions (flat input offsets), batch-major flat buffer of
    // `batch × out_len`, reused across steps.
    argmax: Vec<usize>,
    batch: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    /// Panics if `h` or `w` is not divisible by `size`.
    pub fn new(in_shape: Shape3, size: usize) -> Self {
        assert!(size >= 1, "pool window must be positive");
        assert_eq!(
            in_shape.h % size,
            0,
            "pool: height {} % {} != 0",
            in_shape.h,
            size
        );
        assert_eq!(
            in_shape.w % size,
            0,
            "pool: width {} % {} != 0",
            in_shape.w,
            size
        );
        let out_shape = Shape3::new(in_shape.c, in_shape.h / size, in_shape.w / size);
        MaxPool2d {
            in_shape,
            out_shape,
            size,
            argmax: Vec::new(),
            batch: 0,
        }
    }

    /// The output activation shape.
    pub fn out_shape(&self) -> Shape3 {
        self.out_shape
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_shape.len(),
            "maxpool: input width mismatch"
        );
        let Shape3 { c, h, w } = self.in_shape;
        let (oh, ow) = (self.out_shape.h, self.out_shape.w);
        let s = self.size;
        let batch = x.rows();
        let out_len = self.out_shape.len();
        let mut y = Matrix::zeros(batch, out_len);
        self.argmax.resize(batch * out_len, 0);
        self.batch = batch;
        if s == 2 {
            // The window used by every model in the zoo: unrolled scan of
            // the four candidates with the same strict-greater comparison
            // as the generic path below (identical tie-breaks and NaN
            // behaviour).
            for b in 0..batch {
                let row = x.row(b);
                let out_row = y.row_mut(b);
                let arg = &mut self.argmax[b * out_len..(b + 1) * out_len];
                for ch in 0..c {
                    let plane = &row[ch * h * w..(ch + 1) * h * w];
                    for oy in 0..oh {
                        let top = &plane[(2 * oy) * w..(2 * oy) * w + w];
                        let bot = &plane[(2 * oy + 1) * w..(2 * oy + 1) * w + w];
                        let out_seg = &mut out_row[(ch * oh + oy) * ow..(ch * oh + oy) * ow + ow];
                        let arg_seg = &mut arg[(ch * oh + oy) * ow..(ch * oh + oy) * ow + ow];
                        for ox in 0..ow {
                            let j = 2 * ox;
                            let base = ch * h * w + (2 * oy) * w;
                            let mut best = f32::NEG_INFINITY;
                            // Absolute index with the same initializer as
                            // the generic path, so even the degenerate
                            // all-NaN window resolves identically.
                            let mut best_idx = 0usize;
                            for (v, i) in [
                                (top[j], j),
                                (top[j + 1], j + 1),
                                (bot[j], j + w),
                                (bot[j + 1], j + 1 + w),
                            ] {
                                if v > best {
                                    best = v;
                                    best_idx = base + i;
                                }
                            }
                            out_seg[ox] = best;
                            arg_seg[ox] = best_idx;
                        }
                    }
                }
            }
            return y;
        }
        for b in 0..batch {
            let row = x.row(b);
            let out_row = y.row_mut(b);
            let arg = &mut self.argmax[b * out_len..(b + 1) * out_len];
            for ch in 0..c {
                let plane = &row[ch * h * w..(ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..s {
                            for dx in 0..s {
                                let iy = oy * s + dy;
                                let ix = ox * s + dx;
                                let idx = iy * w + ix;
                                let v = plane[idx];
                                if v > best {
                                    best = v;
                                    best_idx = ch * h * w + idx;
                                }
                            }
                        }
                        let out_idx = (ch * oh + oy) * ow + ox;
                        out_row[out_idx] = best;
                        arg[out_idx] = best_idx;
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.cols(),
            self.out_shape.len(),
            "maxpool: grad width mismatch"
        );
        assert_eq!(
            dy.rows(),
            self.batch,
            "maxpool: backward without matching forward"
        );
        let out_len = self.out_shape.len();
        let mut dx = Matrix::zeros(dy.rows(), self.in_shape.len());
        for b in 0..dy.rows() {
            let g = dy.row(b);
            let arg = &self.argmax[b * out_len..(b + 1) * out_len];
            let dst = dx.row_mut(b);
            for (out_idx, &src_idx) in arg.iter().enumerate() {
                dst[src_idx] += g[out_idx];
            }
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "maxpool: wired to wrong input width"
        );
        self.out_shape.len()
    }
}

/// Global average pooling: collapses each channel plane to its mean.
pub struct GlobalAvgPool {
    in_shape: Shape3,
    batch: usize,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new(in_shape: Shape3) -> Self {
        GlobalAvgPool { in_shape, batch: 0 }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_shape.len(), "gap: input width mismatch");
        let Shape3 { c, h, w } = self.in_shape;
        let plane = (h * w) as f32;
        self.batch = x.rows();
        let mut y = Matrix::zeros(x.rows(), c);
        for b in 0..x.rows() {
            let row = x.row(b);
            let out = y.row_mut(b);
            for (ch, o) in out.iter_mut().enumerate() {
                *o = fda_tensor::vector::sum(&row[ch * h * w..(ch + 1) * h * w]) / plane;
            }
        }
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(dy.cols(), self.in_shape.c, "gap: grad width mismatch");
        assert_eq!(
            dy.rows(),
            self.batch,
            "gap: backward without matching forward"
        );
        let Shape3 { c, h, w } = self.in_shape;
        let inv_plane = 1.0 / (h * w) as f32;
        let mut dx = Matrix::zeros(dy.rows(), self.in_shape.len());
        for b in 0..dy.rows() {
            let g = dy.row(b);
            let dst = dx.row_mut(b);
            for ch in 0..c {
                let gv = g[ch] * inv_plane;
                for v in &mut dst[ch * h * w..(ch + 1) * h * w] {
                    *v = gv;
                }
            }
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "gap: wired to wrong input width"
        );
        self.in_shape.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_known() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 4, 4), 2);
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 16, vec![
            1.0, 2.0,   5.0, 6.0,
            3.0, 4.0,   7.0, 8.0,

            9.0, 10.0,  13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ]);
        let y = pool.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    /// The 2×2 fast path must keep the generic strict-greater scan
    /// semantics: a NaN never wins over a later finite candidate, and ties
    /// pick the first position in scan order.
    #[test]
    fn maxpool_2x2_nan_and_tie_semantics() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 2, 2), 2);
        let x = Matrix::from_vec(1, 4, vec![f32::NAN, 5.0, 1.0, 2.0]);
        let _ = pool.forward(x, true);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![3.0]));
        assert_eq!(
            dx.as_slice(),
            &[0.0, 3.0, 0.0, 0.0],
            "NaN must not capture the argmax"
        );
        // Ties: the first of equal values (scan order t0,t1,b0,b1) wins.
        let x = Matrix::from_vec(1, 4, vec![7.0, 7.0, 7.0, 7.0]);
        let y = pool.forward(x, true);
        assert_eq!(y.as_slice(), &[7.0]);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![1.0]));
        assert_eq!(dx.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 2, 2), 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(x.clone(), true);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![5.0]));
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_multichannel_shapes() {
        let mut pool = MaxPool2d::new(Shape3::new(3, 6, 6), 2);
        assert_eq!(pool.out_shape(), Shape3::new(3, 3, 3));
        let x = Matrix::zeros(2, 3 * 36);
        let y = pool.forward(x.clone(), true);
        assert_eq!((y.rows(), y.cols()), (2, 27));
    }

    #[test]
    fn gap_mean_and_backward() {
        let mut gap = GlobalAvgPool::new(Shape3::new(2, 2, 2));
        let x = Matrix::from_vec(1, 8, vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let y = gap.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let dx = gap.backward(Matrix::from_vec(1, 2, vec![4.0, 8.0]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "pool: height")]
    fn indivisible_input_panics() {
        let _ = MaxPool2d::new(Shape3::new(1, 5, 4), 2);
    }
}
