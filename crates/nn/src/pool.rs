//! Spatial pooling layers (channel-major activations).

use crate::layer::{Layer, Shape3};
use fda_tensor::Matrix;

/// Non-overlapping 2-D max pooling with a square window.
///
/// Window size equals stride (the configuration used by LeNet/VGG-style
/// models). Input extents must be divisible by the window size.
/// Consumes and produces channel-major activations (`c × batch·spatial`):
/// each channel row is pooled per sample block, so the layer is a set of
/// contiguous plane scans with no layout staging.
pub struct MaxPool2d {
    in_shape: Shape3,
    out_shape: Shape3,
    size: usize,
    // argmax positions as flat offsets into the channel-major input
    // storage, aligned with the flat output storage; reused across steps.
    argmax: Vec<usize>,
    batch: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    /// Panics if `h` or `w` is not divisible by `size`.
    pub fn new(in_shape: Shape3, size: usize) -> Self {
        assert!(size >= 1, "pool window must be positive");
        assert_eq!(
            in_shape.h % size,
            0,
            "pool: height {} % {} != 0",
            in_shape.h,
            size
        );
        assert_eq!(
            in_shape.w % size,
            0,
            "pool: width {} % {} != 0",
            in_shape.w,
            size
        );
        let out_shape = Shape3::new(in_shape.c, in_shape.h / size, in_shape.w / size);
        MaxPool2d {
            in_shape,
            out_shape,
            size,
            argmax: Vec::new(),
            batch: 0,
        }
    }

    /// The output activation shape.
    pub fn out_shape(&self) -> Shape3 {
        self.out_shape
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        let batch = self.in_shape.batch_of(&x, "maxpool input");
        let Shape3 { c, h, w } = self.in_shape;
        let (oh, ow) = (self.out_shape.h, self.out_shape.w);
        let (hw, out_hw) = (h * w, oh * ow);
        let s = self.size;
        let mut y = Matrix::zeros(c, batch * out_hw);
        self.argmax.resize(c * batch * out_hw, 0);
        self.batch = batch;
        if s == 2 {
            // The window used by every model in the zoo: unrolled scan of
            // the four candidates with the same strict-greater comparison
            // as the generic path below (identical tie-breaks and NaN
            // behaviour).
            for ch in 0..c {
                let row = x.row(ch);
                let out_row = y.row_mut(ch);
                let arg_row = &mut self.argmax[ch * batch * out_hw..(ch + 1) * batch * out_hw];
                for b in 0..batch {
                    let plane = &row[b * hw..(b + 1) * hw];
                    // Absolute base of this plane in the input storage.
                    let base_abs = ch * batch * hw + b * hw;
                    for oy in 0..oh {
                        let top = &plane[(2 * oy) * w..(2 * oy) * w + w];
                        let bot = &plane[(2 * oy + 1) * w..(2 * oy + 1) * w + w];
                        let out_seg = &mut out_row[b * out_hw + oy * ow..b * out_hw + oy * ow + ow];
                        let arg_seg = &mut arg_row[b * out_hw + oy * ow..b * out_hw + oy * ow + ow];
                        for ox in 0..ow {
                            let j = 2 * ox;
                            let base = base_abs + (2 * oy) * w;
                            let mut best = f32::NEG_INFINITY;
                            // Absolute index with the same initializer as
                            // the generic path, so even the degenerate
                            // all-NaN window resolves identically.
                            let mut best_idx = 0usize;
                            for (v, i) in [
                                (top[j], j),
                                (top[j + 1], j + 1),
                                (bot[j], j + w),
                                (bot[j + 1], j + 1 + w),
                            ] {
                                if v > best {
                                    best = v;
                                    best_idx = base + i;
                                }
                            }
                            out_seg[ox] = best;
                            arg_seg[ox] = best_idx;
                        }
                    }
                }
            }
            return y;
        }
        for ch in 0..c {
            let row = x.row(ch);
            let out_row = y.row_mut(ch);
            let arg_row = &mut self.argmax[ch * batch * out_hw..(ch + 1) * batch * out_hw];
            for b in 0..batch {
                let plane = &row[b * hw..(b + 1) * hw];
                let base_abs = ch * batch * hw + b * hw;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..s {
                            for dx in 0..s {
                                let iy = oy * s + dy;
                                let ix = ox * s + dx;
                                let idx = iy * w + ix;
                                let v = plane[idx];
                                if v > best {
                                    best = v;
                                    best_idx = base_abs + idx;
                                }
                            }
                        }
                        let out_idx = b * out_hw + oy * ow + ox;
                        out_row[out_idx] = best;
                        arg_row[out_idx] = best_idx;
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.rows(),
            self.out_shape.c,
            "maxpool: grad not channel-major (rows = {}, want c = {})",
            dy.rows(),
            self.out_shape.c
        );
        assert_eq!(
            dy.cols(),
            self.batch * self.out_shape.spatial(),
            "maxpool: backward without matching forward (grad width {}, want batch {} × spatial {})",
            dy.cols(),
            self.batch,
            self.out_shape.spatial()
        );
        let mut dx = Matrix::zeros(self.in_shape.c, self.batch * self.in_shape.spatial());
        let dst = dx.as_mut_slice();
        for (&src_idx, &g) in self.argmax.iter().zip(dy.as_slice()) {
            dst[src_idx] += g;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "maxpool: wired to wrong input width"
        );
        self.out_shape.len()
    }

    fn in_shape3(&self) -> Option<Shape3> {
        Some(self.in_shape)
    }
}

/// Global average pooling: collapses each channel plane to its mean.
///
/// This layer is a layout boundary: it consumes channel-major activations
/// (`c × batch·spatial`) and produces the sample-major `batch × c` feature
/// matrix a dense head expects — no separate [`crate::dense::Flatten`] is
/// needed after it.
pub struct GlobalAvgPool {
    in_shape: Shape3,
    batch: usize,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new(in_shape: Shape3) -> Self {
        GlobalAvgPool { in_shape, batch: 0 }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        let Shape3 { c, h, w } = self.in_shape;
        let hw = h * w;
        let batch = self.in_shape.batch_of(&x, "gap input");
        let plane = hw as f32;
        self.batch = batch;
        let mut y = Matrix::zeros(batch, c);
        for ch in 0..c {
            let row = x.row(ch);
            for b in 0..batch {
                let v = fda_tensor::vector::sum(&row[b * hw..(b + 1) * hw]) / plane;
                y.set(b, ch, v);
            }
        }
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(dy.cols(), self.in_shape.c, "gap: grad width mismatch");
        assert_eq!(
            dy.rows(),
            self.batch,
            "gap: backward without matching forward"
        );
        let Shape3 { c, h, w } = self.in_shape;
        let hw = h * w;
        let inv_plane = 1.0 / hw as f32;
        let mut dx = Matrix::zeros(c, self.batch * hw);
        for ch in 0..c {
            let dst = dx.row_mut(ch);
            for b in 0..self.batch {
                let gv = dy.get(b, ch) * inv_plane;
                for v in &mut dst[b * hw..(b + 1) * hw] {
                    *v = gv;
                }
            }
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "gap: wired to wrong input width"
        );
        self.in_shape.c
    }

    fn in_shape3(&self) -> Option<Shape3> {
        Some(self.in_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_known() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 4, 4), 2);
        // Channel-major, 1 channel × 1 sample: one 4×4 plane.
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 16, vec![
            1.0, 2.0,   5.0, 6.0,
            3.0, 4.0,   7.0, 8.0,

            9.0, 10.0,  13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ]);
        let y = pool.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    /// The 2×2 fast path must keep the generic strict-greater scan
    /// semantics: a NaN never wins over a later finite candidate, and ties
    /// pick the first position in scan order.
    #[test]
    fn maxpool_2x2_nan_and_tie_semantics() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 2, 2), 2);
        let x = Matrix::from_vec(1, 4, vec![f32::NAN, 5.0, 1.0, 2.0]);
        let _ = pool.forward(x, true);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![3.0]));
        assert_eq!(
            dx.as_slice(),
            &[0.0, 3.0, 0.0, 0.0],
            "NaN must not capture the argmax"
        );
        // Ties: the first of equal values (scan order t0,t1,b0,b1) wins.
        let x = Matrix::from_vec(1, 4, vec![7.0, 7.0, 7.0, 7.0]);
        let y = pool.forward(x, true);
        assert_eq!(y.as_slice(), &[7.0]);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![1.0]));
        assert_eq!(dx.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(Shape3::new(1, 2, 2), 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(x.clone(), true);
        let dx = pool.backward(Matrix::from_vec(1, 1, vec![5.0]));
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_multichannel_shapes() {
        let mut pool = MaxPool2d::new(Shape3::new(3, 6, 6), 2);
        assert_eq!(pool.out_shape(), Shape3::new(3, 3, 3));
        // Channel-major: 3 channels × 2 sample blocks of 36.
        let x = Matrix::zeros(3, 2 * 36);
        let y = pool.forward(x.clone(), true);
        assert_eq!((y.rows(), y.cols()), (3, 2 * 9));
    }

    /// Multi-channel, multi-sample pooling matches pooling each sample
    /// alone — the per-sample block indexing must not leak across blocks.
    #[test]
    fn maxpool_batch_matches_per_sample() {
        use fda_tensor::Rng;
        let shape = Shape3::new(2, 4, 4);
        let mut pool = MaxPool2d::new(shape, 2);
        let mut x = Matrix::zeros(2, 3 * 16);
        Rng::new(31).fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let y = pool.forward(x.clone(), true);
        let mut dy = Matrix::zeros(2, 3 * 4);
        Rng::new(32).fill_normal(dy.as_mut_slice(), 0.0, 1.0);
        let dx = pool.backward(dy.clone());
        for s in 0..3 {
            // Slice sample s out of the channel-major batch.
            let mut xs = Matrix::zeros(2, 16);
            let mut dys = Matrix::zeros(2, 4);
            for ch in 0..2 {
                xs.row_mut(ch)
                    .copy_from_slice(&x.row(ch)[s * 16..(s + 1) * 16]);
                dys.row_mut(ch)
                    .copy_from_slice(&dy.row(ch)[s * 4..(s + 1) * 4]);
            }
            let mut solo = MaxPool2d::new(shape, 2);
            let ys = solo.forward(xs, true);
            let dxs = solo.backward(dys);
            for ch in 0..2 {
                assert_eq!(ys.row(ch), &y.row(ch)[s * 4..(s + 1) * 4], "fwd s={s}");
                assert_eq!(dxs.row(ch), &dx.row(ch)[s * 16..(s + 1) * 16], "bwd s={s}");
            }
        }
    }

    #[test]
    fn gap_mean_and_backward() {
        let mut gap = GlobalAvgPool::new(Shape3::new(2, 2, 2));
        // Channel-major: 2 channel rows × 1 sample block of 4.
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let y = gap.forward(x.clone(), true);
        assert_eq!((y.rows(), y.cols()), (1, 2), "gap output is sample-major");
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let dx = gap.backward(Matrix::from_vec(1, 2, vec![4.0, 8.0]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "pool: height")]
    fn indivisible_input_panics() {
        let _ = MaxPool2d::new(Shape3::new(1, 5, 4), 2);
    }

    #[test]
    #[should_panic(expected = "not channel-major")]
    fn wrong_layout_panics() {
        let mut pool = MaxPool2d::new(Shape3::new(3, 4, 4), 2);
        // Sample-major batch (2 × 48) has the wrong row count.
        let _ = pool.forward(Matrix::zeros(2, 48), true);
    }
}
