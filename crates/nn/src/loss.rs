//! Loss functions.
//!
//! The classification experiments use softmax cross-entropy; MSE is kept
//! for regression-style tests and for validating optimizer behaviour on
//! quadratic objectives.

use fda_tensor::Matrix;

/// Numerically stable softmax over each row of `logits`, written in place.
pub fn softmax_rows(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Softmax cross-entropy over integer class labels.
///
/// `forward` fuses softmax, mean NLL loss and its gradient (`(p − y)/B`) in
/// one pass — the textbook simplification that avoids materializing the
/// softmax Jacobian.
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes `(mean loss, dL/dlogits, #correct predictions)`.
    ///
    /// # Panics
    /// Panics if any label is out of range or batch sizes mismatch.
    pub fn forward(&self, logits: &Matrix, labels: &[usize]) -> (f32, Matrix, usize) {
        assert_eq!(logits.rows(), labels.len(), "loss: batch size mismatch");
        assert!(!labels.is_empty(), "loss: empty batch");
        let classes = logits.cols();
        let batch = logits.rows() as f32;
        let mut probs = logits.clone();
        softmax_rows(&mut probs);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            assert!(
                label < classes,
                "loss: label {label} out of range {classes}"
            );
            let row = probs.row(r);
            // Clamp avoids -inf on (unlikely) exactly-zero probability.
            loss -= row[label].max(1e-12).ln();
            let pred = argmax(row);
            if pred == label {
                correct += 1;
            }
        }
        loss /= batch;
        // Gradient: (softmax − one_hot) / batch, reusing the probs buffer.
        let mut grad = probs;
        for (r, &label) in labels.iter().enumerate() {
            let row = grad.row_mut(r);
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v /= batch;
            }
        }
        (loss, grad, correct)
    }
}

/// Mean-squared-error loss `L = (1/B) Σ ‖pred − target‖²`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mse;

impl Mse {
    /// Computes `(loss, dL/dpred)`.
    pub fn forward(&self, pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
        assert_eq!(pred.rows(), target.rows(), "mse: batch mismatch");
        assert_eq!(pred.cols(), target.cols(), "mse: dim mismatch");
        let batch = pred.rows() as f32;
        let mut grad = pred.clone();
        let mut loss = 0.0f32;
        for (g, t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
            let diff = *g - t;
            loss += diff * diff;
            *g = 2.0 * diff / batch;
        }
        (loss / batch, grad)
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut m = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        softmax_rows(&mut m);
        assert!(m.as_slice().iter().all(|p| p.is_finite()));
        assert!((m.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_logits_give_ln_c_loss() {
        let logits = Matrix::zeros(4, 10);
        let labels = vec![0, 3, 7, 9];
        let (loss, _, _) = SoftmaxCrossEntropy.forward(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_low_loss_full_accuracy() {
        let mut logits = Matrix::zeros(2, 3);
        logits.set(0, 1, 50.0);
        logits.set(1, 2, 50.0);
        let (loss, _, correct) = SoftmaxCrossEntropy.forward(&logits, &[1, 2]);
        assert!(loss < 1e-4);
        assert_eq!(correct, 2);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Σ_c (p_c − y_c) = 1 − 1 = 0 per sample.
        let logits = Matrix::from_vec(2, 4, vec![0.3, -1.0, 2.0, 0.1, 1.0, 1.0, 1.0, 1.0]);
        let (_, grad, _) = SoftmaxCrossEntropy.forward(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.5, -0.2, 0.1]);
        let labels = [2usize];
        let (_, grad, _) = SoftmaxCrossEntropy.forward(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (loss_p, _, _) = SoftmaxCrossEntropy.forward(&lp, &labels);
            let (loss_m, _, _) = SoftmaxCrossEntropy.forward(&lm, &labels);
            let fd = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "component {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn mse_zero_at_target() {
        let pred = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (loss, grad) = Mse.forward(&pred, &pred.clone());
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let logits = Matrix::zeros(1, 3);
        let _ = SoftmaxCrossEntropy.forward(&logits, &[5]);
    }
}
