//! Element-wise activation layers.

use crate::layer::Layer;
use fda_tensor::Matrix;

/// Rectified linear unit `y = max(0, x)`.
#[derive(Default)]
pub struct Relu {
    // Cache of the forward input sign: true where x > 0.
    mask: Vec<bool>,
    cols: usize,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        self.cols = x.cols();
        self.mask.clear();
        self.mask.reserve(x.len());
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            let active = *v > 0.0;
            self.mask.push(active);
            if !active {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "relu: backward without matching forward"
        );
        let mut dx = dy.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

/// Hyperbolic tangent activation.
#[derive(Default)]
pub struct Tanh {
    // Cache of the forward output (tanh'(x) = 1 − y²).
    y: Vec<f32>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = v.tanh();
        }
        self.y = y.as_slice().to_vec();
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.y.len(),
            "tanh: backward without matching forward"
        );
        let mut dx = dy.clone();
        for (v, &yv) in dx.as_mut_slice().iter_mut().zip(&self.y) {
            *v *= 1.0 - yv * yv;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

/// Leaky ReLU `y = x if x > 0 else α·x`.
pub struct LeakyRelu {
    alpha: f32,
    mask: Vec<bool>,
}

impl LeakyRelu {
    /// Creates a Leaky ReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            mask: Vec::new(),
        }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        self.mask.clear();
        self.mask.reserve(x.len());
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            let active = *v > 0.0;
            self.mask.push(active);
            if !active {
                *v *= self.alpha;
            }
        }
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "leaky_relu: backward without matching forward"
        );
        let mut dx = dy.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            if !m {
                *v *= self.alpha;
            }
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut layer = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = layer.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = layer.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut layer = Tanh::new();
        let x = Matrix::from_vec(1, 1, vec![0.0]);
        let _ = layer.forward(&x, true);
        let dx = layer.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        assert!((dx.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut layer = LeakyRelu::new(0.1);
        let x = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        let y = layer.forward(&x, true);
        assert_eq!(y.as_slice(), &[-1.0, 10.0]);
        let dx = layer.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        assert!((dx.as_slice()[0] - 0.1).abs() < 1e-7);
        assert_eq!(dx.as_slice()[1], 1.0);
    }

    #[test]
    fn relu_preserves_shape() {
        let mut layer = Relu::new();
        let x = Matrix::zeros(3, 5);
        let y = layer.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (3, 5));
        assert_eq!(layer.out_dim(5), 5);
    }
}
