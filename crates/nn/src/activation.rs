//! Element-wise activation layers.
//!
//! Hot-path discipline: masks are stored as `f32` multipliers (not
//! `Vec<bool>`) in buffers that are resized, never re-pushed, so both the
//! forward max and the backward multiply compile to straight-line
//! branch-free SIMD loops.

use crate::layer::Layer;
use fda_tensor::Matrix;

/// Rectified linear unit `y = max(0, x)`.
#[derive(Default)]
pub struct Relu {
    // Forward gate as a multiplier: 1.0 where x > 0, else 0.0. Reused
    // across steps.
    mask: Vec<f32>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, mut x: Matrix, _train: bool) -> Matrix {
        self.mask.resize(x.len(), 0.0);
        for (v, m) in x.as_mut_slice().iter_mut().zip(self.mask.iter_mut()) {
            *m = if *v > 0.0 { 1.0 } else { 0.0 };
            *v = v.max(0.0);
        }
        x
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "relu: backward without matching forward"
        );
        let mut dx = dy;
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

/// Hyperbolic tangent activation.
#[derive(Default)]
pub struct Tanh {
    // Cache of the forward output (tanh'(x) = 1 − y²).
    y: Vec<f32>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, mut x: Matrix, _train: bool) -> Matrix {
        for v in x.as_mut_slice() {
            *v = v.tanh();
        }
        self.y.clear();
        self.y.extend_from_slice(x.as_slice());
        x
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.y.len(),
            "tanh: backward without matching forward"
        );
        let mut dx = dy;
        for (v, &yv) in dx.as_mut_slice().iter_mut().zip(&self.y) {
            *v *= 1.0 - yv * yv;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

/// Leaky ReLU `y = x if x > 0 else α·x`.
pub struct LeakyRelu {
    alpha: f32,
    // Forward gate as a multiplier: 1.0 where x > 0, else α.
    mask: Vec<f32>,
}

impl LeakyRelu {
    /// Creates a Leaky ReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            mask: Vec::new(),
        }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, mut x: Matrix, _train: bool) -> Matrix {
        self.mask.resize(x.len(), 0.0);
        let alpha = self.alpha;
        for (v, m) in x.as_mut_slice().iter_mut().zip(self.mask.iter_mut()) {
            *m = if *v > 0.0 { 1.0 } else { alpha };
            *v *= *m;
        }
        x
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "leaky_relu: backward without matching forward"
        );
        let mut dx = dy;
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut layer = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = layer.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = layer.backward(dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut layer = Tanh::new();
        let x = Matrix::from_vec(1, 1, vec![0.0]);
        let _ = layer.forward(x.clone(), true);
        let dx = layer.backward(Matrix::from_vec(1, 1, vec![1.0]));
        assert!((dx.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut layer = LeakyRelu::new(0.1);
        let x = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        let y = layer.forward(x.clone(), true);
        assert_eq!(y.as_slice(), &[-1.0, 10.0]);
        let dx = layer.backward(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        assert!((dx.as_slice()[0] - 0.1).abs() < 1e-7);
        assert_eq!(dx.as_slice()[1], 1.0);
    }

    #[test]
    fn relu_preserves_shape() {
        let mut layer = Relu::new();
        let x = Matrix::zeros(3, 5);
        let y = layer.forward(x.clone(), false);
        assert_eq!((y.rows(), y.cols()), (3, 5));
        assert_eq!(layer.out_dim(5), 5);
    }
}
