//! 2-D convolution via im2col.
//!
//! The paper's models (LeNet-5, VGG16*, DenseNets) are convolutional; this
//! layer provides the same computational structure at CPU scale. The
//! implementation lowers each sample to a column matrix
//! (`in_c·kh·kw × out_h·out_w`), turning convolution into GEMM — the
//! standard trick that keeps hot loops in cache-friendly matrix code.

use crate::init::Init;
use crate::layer::{Layer, Shape3};
use fda_tensor::{matrix, Matrix, Rng};

/// A 2-D convolution with square stride-1 kernels and symmetric zero
/// padding.
///
/// Activations arrive as flattened rows (`c·h·w` per sample); the layer
/// knows its input [`Shape3`] from construction.
pub struct Conv2d {
    in_shape: Shape3,
    out_shape: Shape3,
    k: usize,
    pad: usize,
    /// Weights as `out_c × (in_c·k·k)`.
    w: Matrix,
    b: Vec<f32>,
    dw: Matrix,
    db: Vec<f32>,
    // Cached per-sample column matrices from the last forward.
    cols: Vec<Matrix>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `pad` is applied on all four sides; output spatial size is
    /// `h + 2·pad − k + 1` (stride 1).
    ///
    /// # Panics
    /// Panics if the kernel is larger than the padded input.
    pub fn new(in_shape: Shape3, out_c: usize, k: usize, pad: usize, init: Init, rng: &mut Rng) -> Self {
        let oh = in_shape.h + 2 * pad + 1;
        assert!(oh > k, "conv: kernel {k} too large for input {in_shape:?} with pad {pad}");
        let out_h = in_shape.h + 2 * pad - k + 1;
        let out_w = in_shape.w + 2 * pad - k + 1;
        let fan_in = in_shape.c * k * k;
        let fan_out = out_c * k * k;
        let mut w = Matrix::zeros(out_c, fan_in);
        init.fill(w.as_mut_slice(), fan_in, fan_out, rng);
        Conv2d {
            in_shape,
            out_shape: Shape3::new(out_c, out_h, out_w),
            k,
            pad,
            w,
            b: vec![0.0; out_c],
            dw: Matrix::zeros(out_c, fan_in),
            db: vec![0.0; out_c],
            cols: Vec::new(),
        }
    }

    /// The input activation shape.
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// The output activation shape.
    pub fn out_shape(&self) -> Shape3 {
        self.out_shape
    }

    /// Lowers one flattened sample into its column matrix
    /// (`in_c·k·k × out_h·out_w`).
    fn im2col(&self, sample: &[f32]) -> Matrix {
        let Shape3 { c, h, w } = self.in_shape;
        let (oh, ow) = (self.out_shape.h, self.out_shape.w);
        let k = self.k;
        let pad = self.pad as isize;
        let mut col = Matrix::zeros(c * k * k, oh * ow);
        for ch in 0..c {
            let plane = &sample[ch * h * w..(ch + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_idx = (ch * k + ky) * k + kx;
                    let col_row = col.row_mut(row_idx);
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = ox as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            col_row[oy * ow + ox] = plane[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
        col
    }

    /// Scatters a column-matrix gradient back to a flattened input gradient
    /// (the adjoint of [`Conv2d::im2col`]).
    fn col2im(&self, dcol: &Matrix, out: &mut [f32]) {
        let Shape3 { c, h, w } = self.in_shape;
        let (oh, ow) = (self.out_shape.h, self.out_shape.w);
        let k = self.k;
        let pad = self.pad as isize;
        for ch in 0..c {
            let plane = &mut out[ch * h * w..(ch + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_idx = (ch * k + ky) * k + kx;
                    let col_row = dcol.row(row_idx);
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = ox as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            plane[iy * w + ix as usize] += col_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_shape.len(), "conv: input width mismatch");
        let batch = x.rows();
        let (oc, spatial) = (self.out_shape.c, self.out_shape.h * self.out_shape.w);
        let mut y = Matrix::zeros(batch, self.out_shape.len());
        self.cols.clear();
        self.cols.reserve(batch);
        for s in 0..batch {
            let col = self.im2col(x.row(s));
            // y_s = W · col  (oc × spatial), flattened row-major into y.
            let mut ys = Matrix::zeros(oc, spatial);
            matrix::gemm_accumulate(&self.w, &col, &mut ys);
            let y_row = y.row_mut(s);
            for c in 0..oc {
                let src = ys.row(c);
                let dst = &mut y_row[c * spatial..(c + 1) * spatial];
                for (d, (v, bias)) in dst.iter_mut().zip(src.iter().zip(std::iter::repeat(&self.b[c]))) {
                    *d = v + bias;
                }
            }
            self.cols.push(col);
        }
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let batch = dy.rows();
        assert_eq!(dy.cols(), self.out_shape.len(), "conv: grad width mismatch");
        assert_eq!(batch, self.cols.len(), "conv: backward without matching forward");
        let (oc, spatial) = (self.out_shape.c, self.out_shape.h * self.out_shape.w);
        let mut dx = Matrix::zeros(batch, self.in_shape.len());
        for s in 0..batch {
            // Reinterpret this sample's dy as (oc × spatial).
            let dy_s = Matrix::from_vec(oc, spatial, dy.row(s).to_vec());
            // dW += dy_s · colᵀ
            matrix::gemm_a_bt_accumulate(&dy_s, &self.cols[s], &mut self.dw);
            // db += row sums of dy_s
            for c in 0..oc {
                self.db[c] += dy_s.row(c).iter().sum::<f32>();
            }
            // dcol = Wᵀ · dy_s, then scatter back.
            let mut dcol = Matrix::zeros(self.w.cols(), spatial);
            matrix::gemm_at_b_accumulate(&self.w, &dy_s, &mut dcol);
            self.col2im(&dcol, dx.row_mut(s));
        }
        dx
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![self.dw.as_slice(), &self.db]
    }

    fn zero_grads(&mut self) {
        self.dw.clear();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(in_dim, self.in_shape.len(), "conv: wired to wrong input width");
        self.out_shape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-channel 3×3 input with a known 2-channel 2×2 kernel (pad 0).
    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(0);
        let in_shape = Shape3::new(1, 3, 3);
        let mut conv = Conv2d::new(in_shape, 1, 2, 0, Init::GlorotUniform, &mut rng);
        // Kernel = [[1, 0], [0, 1]] (trace of each 2×2 patch), bias 0.5.
        conv.w = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 1.0]);
        conv.b = vec![0.5];
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 9, vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ]);
        let y = conv.forward(&x, true);
        // Patches: (1+5), (2+6), (4+8), (5+9) plus bias.
        assert_eq!(y.as_slice(), &[6.5, 8.5, 12.5, 14.5]);
        assert_eq!(conv.out_shape(), Shape3::new(1, 2, 2));
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let mut rng = Rng::new(1);
        let conv = Conv2d::new(Shape3::new(2, 5, 5), 4, 3, 1, Init::HeNormal, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(4, 5, 5));
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn backward_bias_gradient_sums_spatial() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(Shape3::new(1, 3, 3), 2, 2, 0, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(1, 9, (0..9).map(|i| i as f32).collect());
        let _ = conv.forward(&x, true);
        let dy = Matrix::from_vec(1, 2 * 4, vec![1.0; 8]);
        let _ = conv.backward(&dy);
        // Each output channel has 4 spatial positions with grad 1.
        assert_eq!(conv.grads()[1], &[4.0, 4.0]);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property,
        // which is exactly what makes the conv backward pass correct.
        let mut rng = Rng::new(3);
        let conv = Conv2d::new(Shape3::new(2, 4, 4), 3, 3, 1, Init::HeNormal, &mut rng);
        let mut x = vec![0.0f32; 2 * 16];
        rng.clone().fill_normal(&mut x, 0.0, 1.0);
        let col = conv.im2col(&x);
        let mut y = Matrix::zeros(col.rows(), col.cols());
        rng.clone().fill_normal(y.as_mut_slice(), 0.0, 1.0);
        let forward_ip = fda_tensor::vector::dot(col.as_slice(), y.as_slice());
        let mut back = vec![0.0f32; x.len()];
        conv.col2im(&y, &mut back);
        let backward_ip = fda_tensor::vector::dot(&x, &back);
        assert!(
            (forward_ip - backward_ip).abs() < 1e-2 * (1.0 + forward_ip.abs()),
            "{forward_ip} vs {backward_ip}"
        );
    }

    #[test]
    fn batch_forward_matches_per_sample() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(Shape3::new(1, 4, 4), 2, 3, 1, Init::HeNormal, &mut rng);
        let mut x = Matrix::zeros(3, 16);
        Rng::new(9).fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let y_batch = conv.forward(&x, true);
        for s in 0..3 {
            let xi = Matrix::from_vec(1, 16, x.row(s).to_vec());
            let yi = conv.forward(&xi, true);
            assert_eq!(yi.as_slice(), y_batch.row(s));
        }
    }
}
