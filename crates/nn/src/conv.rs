//! 2-D convolution via batch-level im2col on channel-major activations.
//!
//! The paper's models (LeNet-5, VGG16*, DenseNets) are convolutional; this
//! layer provides the same computational structure at CPU scale. The whole
//! minibatch is lowered into **one** column matrix
//! (`in_c·kh·kw × batch·out_h·out_w`), turning each of forward, weight-grad
//! and input-grad into a single large GEMM per layer — large enough for the
//! blocked kernel in `fda_tensor::matrix` to run at full tilt, instead of
//! one small GEMM per sample.
//!
//! Activations arrive and leave **channel-major** (`c × batch·spatial`,
//! per-sample column blocks — see [`crate::layer`]). That is exactly the
//! shape of the forward GEMM product `W · cols` and of the backward GEMM
//! operand `dy`, so the layer performs **no layout staging**: the GEMM
//! output *is* the layer output, and the incoming gradient feeds the
//! weight/input-gradient GEMMs directly. (Earlier revisions kept
//! sample-major activations and paid a full gather + scatter pass over
//! `out_c × batch·spatial` staging buffers on every forward *and* backward
//! of every conv layer.)
//!
//! All lowering buffers (`cols`, `dcol`, and the GEMM packing [`Scratch`])
//! are keyed on **capacity**: they grow to the largest batch seen and are
//! thereafter reshaped in place, so steady-state training performs no
//! per-step allocation inside the convolution beyond its output matrix —
//! and batch size changes (e.g. the ragged final chunk of an evaluation
//! pass) cost a memset instead of a reallocation.

use crate::init::Init;
use crate::layer::{Layer, Shape3};
use fda_tensor::{matrix, matrix::Scratch, Matrix, Rng};

/// A 2-D convolution with square stride-1 kernels and symmetric zero
/// padding.
///
/// Consumes and produces channel-major activations; the layer knows its
/// input [`Shape3`] from construction and asserts the incoming layout.
pub struct Conv2d {
    in_shape: Shape3,
    out_shape: Shape3,
    k: usize,
    /// Weights as `out_c × (in_c·k·k)`.
    w: Matrix,
    b: Vec<f32>,
    dw: Matrix,
    db: Vec<f32>,
    /// Batched column matrix from the last forward
    /// (`in_c·k·k × batch·spatial`); padded positions are zeroed once at
    /// allocation and never dirtied, valid positions are overwritten each
    /// step.
    cols: Matrix,
    /// Batch size the lowering buffers were built for (0 = not yet built).
    cols_batch: usize,
    /// Column-gradient buffer (`in_c·k·k × batch·spatial`), sized lazily on
    /// first backward so inference-only use never pays for it.
    dcol: Matrix,
    /// GEMM packing arena, reused across steps.
    scratch: Scratch,
    /// Precomputed im2col copy runs (see [`build_copy_plan`]).
    plan: Vec<CopyRun>,
}

/// One contiguous copy between a channel plane of the input and a
/// column-matrix row:
/// `cols[row][col_off + dst ..+len] ↔ x[src_row][blk_off + src ..+len]`,
/// where `col_off`/`blk_off` select the sample's column block in the
/// respective channel-major matrix and `src` is relative to the sample's
/// `h·w` plane.
#[derive(Debug, Clone, Copy)]
struct CopyRun {
    row: u32,
    src_row: u32,
    dst: u32,
    src: u32,
    len: u32,
}

/// Precomputes the im2col copy runs for a fixed geometry: all the padding
/// clipping and index arithmetic happens once at layer construction, and
/// adjacent runs that are contiguous on both sides (e.g. the unclipped
/// centre kernel column) are coalesced into single long copies. The same
/// plan drives the forward gather and (as its exact adjoint) the backward
/// scatter.
fn build_copy_plan(in_shape: Shape3, out_shape: Shape3, k: usize, pad: usize) -> Vec<CopyRun> {
    let Shape3 { c, h, w } = in_shape;
    let (oh, ow) = (out_shape.h, out_shape.w);
    let pad = pad as isize;
    let mut plan: Vec<CopyRun> = Vec::new();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row_idx = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = oy as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let ox_lo = (pad - kx as isize).max(0) as usize;
                    let ox_hi = (w as isize + pad - kx as isize).min(ow as isize).max(0) as usize;
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    let ix0 = (ox_lo as isize + kx as isize - pad) as usize;
                    let run = CopyRun {
                        row: row_idx as u32,
                        src_row: ch as u32,
                        dst: (oy * ow + ox_lo) as u32,
                        src: (iy as usize * w + ix0) as u32,
                        len: (ox_hi - ox_lo) as u32,
                    };
                    match plan.last_mut() {
                        Some(last)
                            if last.row == run.row
                                && last.src_row == run.src_row
                                && last.dst + last.len == run.dst
                                && last.src + last.len == run.src =>
                        {
                            last.len += run.len;
                        }
                        _ => plan.push(run),
                    }
                }
            }
        }
    }
    plan
}

/// Lowers one sample's planes from a channel-major batch into the shared
/// column matrix at column offset `col_off` (the sample's `spatial`-wide
/// block); `blk_off` is the sample's block offset in the input
/// (`sample · in_spatial`). Only in-bounds input positions are written:
/// padded positions stay at their initial zero, which is why the buffer
/// never needs re-clearing.
fn im2col_into(plan: &[CopyRun], x: &Matrix, blk_off: usize, cols: &mut Matrix, col_off: usize) {
    let ncols = cols.cols();
    let x_ncols = x.cols();
    let x_data = x.as_slice();
    let data = cols.as_mut_slice();
    for run in plan {
        let dst = run.row as usize * ncols + col_off + run.dst as usize;
        let src = run.src_row as usize * x_ncols + blk_off + run.src as usize;
        let len = run.len as usize;
        data[dst..dst + len].copy_from_slice(&x_data[src..src + len]);
    }
}

/// Scatter-accumulates one sample's column-gradient block (at column offset
/// `col_off`) back into a channel-major input gradient — the adjoint of
/// [`im2col_into`].
fn col2im_from(plan: &[CopyRun], dcol: &Matrix, col_off: usize, dx: &mut Matrix, blk_off: usize) {
    let ncols = dcol.cols();
    let dx_ncols = dx.cols();
    let data = dcol.as_slice();
    let dst_data = dx.as_mut_slice();
    for run in plan {
        let src = run.row as usize * ncols + col_off + run.dst as usize;
        let dst = run.src_row as usize * dx_ncols + blk_off + run.src as usize;
        let len = run.len as usize;
        for (d, s) in dst_data[dst..dst + len]
            .iter_mut()
            .zip(&data[src..src + len])
        {
            *d += s;
        }
    }
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `pad` is applied on all four sides; output spatial size is
    /// `h + 2·pad − k + 1` (stride 1).
    ///
    /// # Panics
    /// Panics if the kernel is larger than the padded input (in either
    /// spatial dimension).
    pub fn new(
        in_shape: Shape3,
        out_c: usize,
        k: usize,
        pad: usize,
        init: Init,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            k <= in_shape.h + 2 * pad && k <= in_shape.w + 2 * pad,
            "conv: kernel {k} too large for input {in_shape:?} with pad {pad}"
        );
        let out_h = in_shape.h + 2 * pad - k + 1;
        let out_w = in_shape.w + 2 * pad - k + 1;
        let fan_in = in_shape.c * k * k;
        let fan_out = out_c * k * k;
        let mut w = Matrix::zeros(out_c, fan_in);
        init.fill(w.as_mut_slice(), fan_in, fan_out, rng);
        let out_shape = Shape3::new(out_c, out_h, out_w);
        let plan = build_copy_plan(in_shape, out_shape, k, pad);
        Conv2d {
            in_shape,
            out_shape,
            k,
            w,
            b: vec![0.0; out_c],
            dw: Matrix::zeros(out_c, fan_in),
            db: vec![0.0; out_c],
            cols: Matrix::zeros(0, 0),
            cols_batch: 0,
            dcol: Matrix::zeros(0, 0),
            scratch: Scratch::new(),
            plan,
        }
    }

    /// The input activation shape.
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// The output activation shape.
    pub fn out_shape(&self) -> Shape3 {
        self.out_shape
    }

    /// (Re)shapes the `cols` lowering buffer for `batch` samples. A no-op
    /// when the batch size is unchanged — the common training case. Scratch
    /// is keyed on **capacity**, not exact shape: a batch-size change
    /// reshapes in place ([`Matrix::resize_zeroed`]) and only grows the
    /// allocation past its high-water mark, so the ragged final eval chunk
    /// — which used to reallocate all lowering buffers twice per
    /// evaluation pass — costs a memset. The backward-only `dcol` buffer is
    /// sized lazily in [`Conv2d::ensure_backward_buffers`] so
    /// inference-only use (e.g. the harness eval model) never pays for it.
    fn ensure_buffers(&mut self, batch: usize) {
        if self.cols_batch == batch {
            return;
        }
        let fan_in = self.in_shape.c * self.k * self.k;
        let n = batch * self.out_shape.spatial();
        // The re-zero keeps the padded-positions-stay-zero invariant that
        // the im2col gather relies on.
        self.cols.resize_zeroed(fan_in, n);
        self.dcol.resize_zeroed(0, 0);
        self.cols_batch = batch;
    }

    /// Shapes the backward staging buffer on first backward for the current
    /// batch size (capacity-keyed like the forward buffers).
    fn ensure_backward_buffers(&mut self) {
        let n = self.cols_batch * self.out_shape.spatial();
        if self.dcol.cols() != n {
            let fan_in = self.in_shape.c * self.k * self.k;
            self.dcol.resize_zeroed(fan_in, n);
        }
    }

    /// Lowers a channel-major batch into `self.cols`.
    fn lower(&mut self, x: &Matrix, batch: usize) {
        let (in_spatial, spatial) = (self.in_shape.spatial(), self.out_shape.spatial());
        for s in 0..batch {
            im2col_into(&self.plan, x, s * in_spatial, &mut self.cols, s * spatial);
        }
    }

    // -----------------------------------------------------------------
    // Test / property-suite support: the lowering operators as plain
    // matrix functions, so invariants (adjointness, plan coverage) can be
    // checked from outside the crate.
    // -----------------------------------------------------------------

    /// Lowers a channel-major batch (`in_c × batch·in_spatial`) and
    /// returns a copy of the column matrix
    /// (`in_c·k·k × batch·out_spatial`). Test/diagnostic support — the hot
    /// path keeps the buffer internal.
    pub fn im2col_batch(&mut self, x: &Matrix) -> Matrix {
        let batch = self.in_shape.batch_of(x, "conv im2col input");
        self.ensure_buffers(batch);
        self.lower(x, batch);
        self.cols.clone()
    }

    /// The adjoint scatter: accumulates a column-matrix gradient
    /// (`in_c·k·k × batch·out_spatial`) back into a channel-major
    /// input-shaped matrix. Test/diagnostic support.
    pub fn col2im_batch(&self, dcol: &Matrix) -> Matrix {
        let spatial = self.out_shape.spatial();
        assert_eq!(
            dcol.rows(),
            self.in_shape.c * self.k * self.k,
            "conv: col2im rows mismatch"
        );
        assert_eq!(
            dcol.cols() % spatial,
            0,
            "conv: col2im width {} is not a multiple of out spatial {spatial}",
            dcol.cols()
        );
        let batch = dcol.cols() / spatial;
        let in_spatial = self.in_shape.spatial();
        let mut dx = Matrix::zeros(self.in_shape.c, batch * in_spatial);
        for s in 0..batch {
            col2im_from(&self.plan, dcol, s * spatial, &mut dx, s * in_spatial);
        }
        dx
    }

    /// The precomputed copy-run plan as
    /// `(cols_row, src_channel, dst_offset, src_offset, len)` tuples —
    /// offsets relative to a sample's output block / input plane. Exposed
    /// so the workspace property suite can check coverage and disjointness
    /// invariants directly.
    pub fn plan_runs(&self) -> Vec<(usize, usize, usize, usize, usize)> {
        self.plan
            .iter()
            .map(|r| {
                (
                    r.row as usize,
                    r.src_row as usize,
                    r.dst as usize,
                    r.src as usize,
                    r.len as usize,
                )
            })
            .collect()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        let batch = self.in_shape.batch_of(&x, "conv input");
        let (oc, spatial) = (self.out_shape.c, self.out_shape.spatial());
        self.ensure_buffers(batch);
        self.lower(&x, batch);
        // One large GEMM for the whole batch; the product is already the
        // channel-major layer output — no staging scatter. Accumulate into
        // the freshly zeroed output (numerically identical to the
        // clearing `gemm_into_with`, minus one redundant pass over y).
        let mut y = Matrix::zeros(oc, batch * spatial);
        matrix::gemm_accumulate_with(&self.w, &self.cols, &mut y, &mut self.scratch);
        for c in 0..oc {
            let bias = self.b[c];
            for v in y.row_mut(c) {
                *v += bias;
            }
        }
        y
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        let (oc, spatial) = (self.out_shape.c, self.out_shape.spatial());
        assert_eq!(
            dy.rows(),
            oc,
            "conv: grad not channel-major for {:?} (rows = {}, want out_c = {oc})",
            self.out_shape,
            dy.rows()
        );
        assert_eq!(
            dy.cols(),
            self.cols_batch * spatial,
            "conv: backward without matching forward (grad width {}, want batch {} × spatial {spatial})",
            dy.cols(),
            self.cols_batch
        );
        let batch = self.cols_batch;
        self.ensure_backward_buffers();
        // dW += dy · colsᵀ — one large GEMM for the whole batch; dy is
        // already channel-major, no staging gather.
        matrix::gemm_a_bt_accumulate_with(&dy, &self.cols, &mut self.dw, &mut self.scratch);
        // db += row sums of dy.
        for c in 0..oc {
            self.db[c] += fda_tensor::vector::sum(dy.row(c));
        }
        // dcol = Wᵀ · dy, then scatter each sample's block back.
        self.dcol.clear();
        matrix::gemm_at_b_accumulate_with(&self.w, &dy, &mut self.dcol, &mut self.scratch);
        let in_spatial = self.in_shape.spatial();
        let mut dx = Matrix::zeros(self.in_shape.c, batch * in_spatial);
        for s in 0..batch {
            col2im_from(&self.plan, &self.dcol, s * spatial, &mut dx, s * in_spatial);
        }
        dx
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![self.dw.as_slice(), &self.db]
    }

    fn zero_grads(&mut self) {
        self.dw.clear();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "conv: wired to wrong input width"
        );
        self.out_shape.len()
    }

    fn in_shape3(&self) -> Option<Shape3> {
        Some(self.in_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-channel 3×3 input with a known 1-channel 2×2 kernel (pad 0).
    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(0);
        let in_shape = Shape3::new(1, 3, 3);
        let mut conv = Conv2d::new(in_shape, 1, 2, 0, Init::GlorotUniform, &mut rng);
        // Kernel = [[1, 0], [0, 1]] (trace of each 2×2 patch), bias 0.5.
        conv.w = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 1.0]);
        conv.b = vec![0.5];
        // Channel-major, 1 channel × 1 sample: one row of the 3×3 plane.
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 9, vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ]);
        let y = conv.forward(x.clone(), true);
        // Patches: (1+5), (2+6), (4+8), (5+9) plus bias.
        assert_eq!(y.as_slice(), &[6.5, 8.5, 12.5, 14.5]);
        assert_eq!((y.rows(), y.cols()), (1, 4), "output is channel-major");
        assert_eq!(conv.out_shape(), Shape3::new(1, 2, 2));
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let mut rng = Rng::new(1);
        let conv = Conv2d::new(Shape3::new(2, 5, 5), 4, 3, 1, Init::HeNormal, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(4, 5, 5));
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn backward_bias_gradient_sums_spatial() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(Shape3::new(1, 3, 3), 2, 2, 0, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(1, 9, (0..9).map(|i| i as f32).collect());
        let _ = conv.forward(x.clone(), true);
        // Channel-major gradient: 2 output channels × 4 spatial positions.
        let dy = Matrix::from_vec(2, 4, vec![1.0; 8]);
        let _ = conv.backward(dy);
        // Each output channel has 4 spatial positions with grad 1.
        assert_eq!(conv.grads()[1], &[4.0, 4.0]);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property,
        // which is exactly what makes the conv backward pass correct.
        let mut rng = Rng::new(3);
        let mut conv = Conv2d::new(Shape3::new(2, 4, 4), 3, 3, 1, Init::HeNormal, &mut rng);
        // Channel-major batch of 2 samples.
        let mut x = Matrix::zeros(2, 2 * 16);
        rng.clone().fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let col = conv.im2col_batch(&x);
        let mut y = Matrix::zeros(col.rows(), col.cols());
        rng.clone().fill_normal(y.as_mut_slice(), 0.0, 1.0);
        let forward_ip = fda_tensor::vector::dot(col.as_slice(), y.as_slice());
        let back = conv.col2im_batch(&y);
        let backward_ip = fda_tensor::vector::dot(x.as_slice(), back.as_slice());
        assert!(
            (forward_ip - backward_ip).abs() < 1e-2 * (1.0 + forward_ip.abs()),
            "{forward_ip} vs {backward_ip}"
        );
    }

    #[test]
    fn batch_forward_matches_per_sample() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(Shape3::new(1, 4, 4), 2, 3, 1, Init::HeNormal, &mut rng);
        // Channel-major: 1 channel × 3 sample blocks of 16.
        let mut x = Matrix::zeros(1, 3 * 16);
        Rng::new(9).fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let y_batch = conv.forward(x.clone(), true);
        let spatial = conv.out_shape().spatial();
        for s in 0..3 {
            let xi = Matrix::from_vec(1, 16, x.row(0)[s * 16..(s + 1) * 16].to_vec());
            let yi = conv.forward(xi.clone(), true);
            for c in 0..2 {
                assert_eq!(
                    yi.row(c),
                    &y_batch.row(c)[s * spatial..(s + 1) * spatial],
                    "sample {s} channel {c}"
                );
            }
        }
    }

    /// Regression for the kernel-size guard: `k == h + 2·pad` is the exact
    /// boundary (output collapses to 1×1 in that dimension) and must be
    /// accepted; one past it must panic.
    #[test]
    fn kernel_size_boundary_accepted() {
        let mut rng = Rng::new(5);
        // h = 3, pad = 1 ⇒ padded extent 5; a 5×5 kernel is exactly legal.
        let conv = Conv2d::new(Shape3::new(1, 3, 3), 2, 5, 1, Init::HeNormal, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(2, 1, 1));
        // Unpadded boundary too: k == h with pad = 0.
        let conv0 = Conv2d::new(Shape3::new(1, 4, 4), 1, 4, 0, Init::HeNormal, &mut rng);
        assert_eq!(conv0.out_shape(), Shape3::new(1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "too large for input")]
    fn kernel_one_past_boundary_panics() {
        let mut rng = Rng::new(6);
        // Padded extent 5; a 6×6 kernel must be rejected.
        let _ = Conv2d::new(Shape3::new(1, 3, 3), 2, 6, 1, Init::HeNormal, &mut rng);
    }

    #[test]
    #[should_panic(expected = "not channel-major")]
    fn sample_major_input_panics() {
        let mut rng = Rng::new(13);
        let mut conv = Conv2d::new(Shape3::new(2, 4, 4), 3, 3, 1, Init::HeNormal, &mut rng);
        // A sample-major batch (4 samples × 32 features) has the wrong row
        // count for a 2-channel layer and must fail loudly.
        let _ = conv.forward(Matrix::zeros(4, 32), true);
    }

    /// Changing batch size between forwards resizes the lowering buffers
    /// and keeps results identical to a fresh layer.
    #[test]
    fn batch_size_change_is_safe() {
        let mut rng = Rng::new(7);
        let mut conv = Conv2d::new(Shape3::new(2, 5, 5), 3, 3, 1, Init::HeNormal, &mut rng);
        let mut big = Matrix::zeros(2, 4 * 25);
        Rng::new(11).fill_normal(big.as_mut_slice(), 0.0, 1.0);
        let mut small = Matrix::zeros(2, 2 * 25);
        Rng::new(12).fill_normal(small.as_mut_slice(), 0.0, 1.0);
        let _ = conv.forward(big.clone(), true);
        let y_small = conv.forward(small.clone(), true);
        // Fresh layer with identical weights for reference.
        let mut rng2 = Rng::new(7);
        let mut fresh = Conv2d::new(Shape3::new(2, 5, 5), 3, 3, 1, Init::HeNormal, &mut rng2);
        let y_ref = fresh.forward(small.clone(), true);
        assert_eq!(y_small.as_slice(), y_ref.as_slice());
    }

    /// The eval-pass pattern — full batches then a ragged final chunk,
    /// repeated — must reuse the lowering allocations (capacity-keyed
    /// scratch), not reallocate on every shape change, and results must
    /// stay correct through shrink and regrow.
    #[test]
    fn ragged_eval_chunks_reuse_lowering_buffers() {
        let mut rng = Rng::new(8);
        let mut conv = Conv2d::new(Shape3::new(1, 6, 6), 2, 3, 1, Init::HeNormal, &mut rng);
        let mut full = Matrix::zeros(1, 8 * 36);
        Rng::new(21).fill_normal(full.as_mut_slice(), 0.0, 1.0);
        let mut ragged = Matrix::zeros(1, 3 * 36);
        Rng::new(22).fill_normal(ragged.as_mut_slice(), 0.0, 1.0);

        let y_full_1 = conv.forward(full.clone(), false);
        let cols_ptr = conv.cols.as_slice().as_ptr();
        // Ragged chunk shrinks, next pass grows back: both within capacity.
        let y_ragged_1 = conv.forward(ragged.clone(), false);
        assert_eq!(conv.cols.as_slice().as_ptr(), cols_ptr, "cols reallocated");
        let y_full_2 = conv.forward(full.clone(), false);
        assert_eq!(conv.cols.as_slice().as_ptr(), cols_ptr, "cols reallocated");
        let y_ragged_2 = conv.forward(ragged.clone(), false);

        // Identical inputs ⇒ identical outputs across the reuse cycle.
        assert_eq!(y_full_1.as_slice(), y_full_2.as_slice());
        assert_eq!(y_ragged_1.as_slice(), y_ragged_2.as_slice());
    }
}
