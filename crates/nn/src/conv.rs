//! 2-D convolution via batch-level im2col.
//!
//! The paper's models (LeNet-5, VGG16*, DenseNets) are convolutional; this
//! layer provides the same computational structure at CPU scale. The whole
//! minibatch is lowered into **one** column matrix
//! (`in_c·kh·kw × batch·out_h·out_w`), turning each of forward, weight-grad
//! and input-grad into a single large GEMM per layer — large enough for the
//! blocked kernel in `fda_tensor::matrix` to run at full tilt, instead of
//! one small GEMM per sample.
//!
//! All lowering buffers (`cols`, the channel-major activation/gradient
//! staging buffers and the GEMM packing [`Scratch`]) are keyed on
//! **capacity**: they grow to the largest batch seen and are thereafter
//! reshaped in place, so steady-state training performs no per-step
//! allocation inside the convolution beyond its output matrix — and batch
//! size changes (e.g. the ragged final chunk of an evaluation pass) cost a
//! memset instead of a reallocation.

use crate::init::Init;
use crate::layer::{Layer, Shape3};
use fda_tensor::{matrix, matrix::Scratch, Matrix, Rng};

/// A 2-D convolution with square stride-1 kernels and symmetric zero
/// padding.
///
/// Activations arrive as flattened rows (`c·h·w` per sample); the layer
/// knows its input [`Shape3`] from construction.
pub struct Conv2d {
    in_shape: Shape3,
    out_shape: Shape3,
    k: usize,
    /// Weights as `out_c × (in_c·k·k)`.
    w: Matrix,
    b: Vec<f32>,
    dw: Matrix,
    db: Vec<f32>,
    /// Batched column matrix from the last forward
    /// (`in_c·k·k × batch·spatial`); padded positions are zeroed once at
    /// allocation and never dirtied, valid positions are overwritten each
    /// step.
    cols: Matrix,
    /// Batch size the lowering buffers were built for (0 = not yet built).
    cols_batch: usize,
    /// Channel-major staging for forward outputs / backward gradients
    /// (`out_c × batch·spatial`).
    y_big: Matrix,
    dy_big: Matrix,
    /// Column-gradient buffer (`in_c·k·k × batch·spatial`).
    dcol: Matrix,
    /// GEMM packing arena, reused across steps.
    scratch: Scratch,
    /// Precomputed im2col copy runs (see [`build_copy_plan`]).
    plan: Vec<CopyRun>,
}

/// One contiguous copy between a flattened sample and a column-matrix row:
/// `cols[row][dst..dst+len] ↔ sample[src..src+len]` (dst is relative to
/// the sample's column block).
#[derive(Debug, Clone, Copy)]
struct CopyRun {
    row: u32,
    dst: u32,
    src: u32,
    len: u32,
}

/// Precomputes the im2col copy runs for a fixed geometry: all the padding
/// clipping and index arithmetic happens once at layer construction, and
/// adjacent runs that are contiguous on both sides (e.g. the unclipped
/// centre kernel column) are coalesced into single long copies. The same
/// plan drives the forward gather and (as its exact adjoint) the backward
/// scatter.
fn build_copy_plan(in_shape: Shape3, out_shape: Shape3, k: usize, pad: usize) -> Vec<CopyRun> {
    let Shape3 { c, h, w } = in_shape;
    let (oh, ow) = (out_shape.h, out_shape.w);
    let pad = pad as isize;
    let mut plan: Vec<CopyRun> = Vec::new();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row_idx = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = oy as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let ox_lo = (pad - kx as isize).max(0) as usize;
                    let ox_hi = (w as isize + pad - kx as isize).min(ow as isize).max(0) as usize;
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    let ix0 = (ox_lo as isize + kx as isize - pad) as usize;
                    let run = CopyRun {
                        row: row_idx as u32,
                        dst: (oy * ow + ox_lo) as u32,
                        src: (ch * h * w + iy as usize * w + ix0) as u32,
                        len: (ox_hi - ox_lo) as u32,
                    };
                    match plan.last_mut() {
                        Some(last)
                            if last.row == run.row
                                && last.dst + last.len == run.dst
                                && last.src + last.len == run.src =>
                        {
                            last.len += run.len;
                        }
                        _ => plan.push(run),
                    }
                }
            }
        }
    }
    plan
}

/// Lowers one flattened sample into the shared column matrix at column
/// offset `col_off` (the sample's `spatial`-wide block). Only in-bounds
/// input positions are written: padded positions stay at their initial
/// zero, which is why the buffer never needs re-clearing.
fn im2col_into(plan: &[CopyRun], sample: &[f32], cols: &mut Matrix, col_off: usize) {
    let ncols = cols.cols();
    let data = cols.as_mut_slice();
    for run in plan {
        let dst = run.row as usize * ncols + col_off + run.dst as usize;
        let src = run.src as usize;
        let len = run.len as usize;
        data[dst..dst + len].copy_from_slice(&sample[src..src + len]);
    }
}

/// Scatters one sample's column-gradient block (at column offset `col_off`)
/// back to a flattened input gradient — the adjoint of [`im2col_into`].
fn col2im_from(plan: &[CopyRun], dcol: &Matrix, col_off: usize, out: &mut [f32]) {
    let ncols = dcol.cols();
    let data = dcol.as_slice();
    for run in plan {
        let src = run.row as usize * ncols + col_off + run.dst as usize;
        let dst = run.src as usize;
        let len = run.len as usize;
        for (d, s) in out[dst..dst + len].iter_mut().zip(&data[src..src + len]) {
            *d += s;
        }
    }
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `pad` is applied on all four sides; output spatial size is
    /// `h + 2·pad − k + 1` (stride 1).
    ///
    /// # Panics
    /// Panics if the kernel is larger than the padded input (in either
    /// spatial dimension).
    pub fn new(
        in_shape: Shape3,
        out_c: usize,
        k: usize,
        pad: usize,
        init: Init,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            k <= in_shape.h + 2 * pad && k <= in_shape.w + 2 * pad,
            "conv: kernel {k} too large for input {in_shape:?} with pad {pad}"
        );
        let out_h = in_shape.h + 2 * pad - k + 1;
        let out_w = in_shape.w + 2 * pad - k + 1;
        let fan_in = in_shape.c * k * k;
        let fan_out = out_c * k * k;
        let mut w = Matrix::zeros(out_c, fan_in);
        init.fill(w.as_mut_slice(), fan_in, fan_out, rng);
        let out_shape = Shape3::new(out_c, out_h, out_w);
        let plan = build_copy_plan(in_shape, out_shape, k, pad);
        Conv2d {
            in_shape,
            out_shape,
            k,
            w,
            b: vec![0.0; out_c],
            dw: Matrix::zeros(out_c, fan_in),
            db: vec![0.0; out_c],
            cols: Matrix::zeros(0, 0),
            cols_batch: 0,
            y_big: Matrix::zeros(0, 0),
            dy_big: Matrix::zeros(0, 0),
            dcol: Matrix::zeros(0, 0),
            scratch: Scratch::new(),
            plan,
        }
    }

    /// The input activation shape.
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// The output activation shape.
    pub fn out_shape(&self) -> Shape3 {
        self.out_shape
    }

    /// (Re)shapes the forward lowering buffers for `batch` samples. A no-op
    /// when the batch size is unchanged — the common training case. Scratch
    /// is keyed on **capacity**, not exact shape: a batch-size change
    /// reshapes in place ([`Matrix::resize_zeroed`]) and only grows the
    /// allocation past its high-water mark, so the ragged final eval chunk
    /// — which used to reallocate all lowering buffers twice per
    /// evaluation pass — now costs a memset. The backward-only staging
    /// buffers (`dy_big`, `dcol`) are sized lazily in
    /// [`Conv2d::ensure_backward_buffers`] so inference-only use (e.g. the
    /// harness eval model) never pays for them.
    fn ensure_buffers(&mut self, batch: usize) {
        if self.cols_batch == batch {
            return;
        }
        let fan_in = self.in_shape.c * self.k * self.k;
        let spatial = self.out_shape.h * self.out_shape.w;
        let (oc, n) = (self.out_shape.c, batch * spatial);
        // The re-zero keeps the padded-positions-stay-zero invariant that
        // the im2col gather relies on.
        self.cols.resize_zeroed(fan_in, n);
        self.y_big.resize_zeroed(oc, n);
        self.dy_big.resize_zeroed(0, 0);
        self.dcol.resize_zeroed(0, 0);
        self.cols_batch = batch;
    }

    /// Shapes the backward staging buffers on first backward for the
    /// current batch size (capacity-keyed like the forward buffers).
    fn ensure_backward_buffers(&mut self) {
        let spatial = self.out_shape.h * self.out_shape.w;
        let n = self.cols_batch * spatial;
        if self.dy_big.cols() != n {
            let fan_in = self.in_shape.c * self.k * self.k;
            self.dy_big.resize_zeroed(self.out_shape.c, n);
            self.dcol.resize_zeroed(fan_in, n);
        }
    }

    /// Test-only single-sample lowering (allocating), used by the adjoint
    /// property test.
    #[cfg(test)]
    fn im2col(&self, sample: &[f32]) -> Matrix {
        let fan_in = self.in_shape.c * self.k * self.k;
        let spatial = self.out_shape.h * self.out_shape.w;
        let mut col = Matrix::zeros(fan_in, spatial);
        im2col_into(&self.plan, sample, &mut col, 0);
        col
    }

    /// Test-only single-sample scatter (the adjoint of [`Conv2d::im2col`]).
    #[cfg(test)]
    fn col2im(&self, dcol: &Matrix, out: &mut [f32]) {
        col2im_from(&self.plan, dcol, 0, out);
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_shape.len(), "conv: input width mismatch");
        let batch = x.rows();
        let (oc, spatial) = (self.out_shape.c, self.out_shape.h * self.out_shape.w);
        self.ensure_buffers(batch);
        for s in 0..batch {
            im2col_into(&self.plan, x.row(s), &mut self.cols, s * spatial);
        }
        // One large GEMM for the whole batch: y_big = W · cols.
        matrix::gemm_into_with(&self.w, &self.cols, &mut self.y_big, &mut self.scratch);
        // Scatter channel-major (oc × batch·spatial) into sample-major rows.
        // The (s, c, spatial) visit order is exactly row-major, so the
        // output is built by appending — no zero-fill pass over a buffer
        // that gets fully overwritten anyway.
        let mut data = Vec::with_capacity(batch * self.out_shape.len());
        for s in 0..batch {
            for c in 0..oc {
                let src = &self.y_big.row(c)[s * spatial..(s + 1) * spatial];
                let bias = self.b[c];
                data.extend(src.iter().map(|v| v + bias));
            }
        }
        Matrix::from_vec(batch, self.out_shape.len(), data)
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        let batch = dy.rows();
        assert_eq!(dy.cols(), self.out_shape.len(), "conv: grad width mismatch");
        assert_eq!(
            batch, self.cols_batch,
            "conv: backward without matching forward"
        );
        let (oc, spatial) = (self.out_shape.c, self.out_shape.h * self.out_shape.w);
        self.ensure_backward_buffers();
        // Gather dy into channel-major layout (oc × batch·spatial).
        for s in 0..batch {
            let dy_row = dy.row(s);
            for c in 0..oc {
                self.dy_big.row_mut(c)[s * spatial..(s + 1) * spatial]
                    .copy_from_slice(&dy_row[c * spatial..(c + 1) * spatial]);
            }
        }
        // dW += dy_big · colsᵀ — one large GEMM for the whole batch.
        matrix::gemm_a_bt_accumulate_with(
            &self.dy_big,
            &self.cols,
            &mut self.dw,
            &mut self.scratch,
        );
        // db += row sums of dy_big.
        for c in 0..oc {
            self.db[c] += fda_tensor::vector::sum(self.dy_big.row(c));
        }
        // dcol = Wᵀ · dy_big, then scatter each sample's block back.
        self.dcol.clear();
        matrix::gemm_at_b_accumulate_with(&self.w, &self.dy_big, &mut self.dcol, &mut self.scratch);
        let mut dx = Matrix::zeros(batch, self.in_shape.len());
        for s in 0..batch {
            col2im_from(&self.plan, &self.dcol, s * spatial, dx.row_mut(s));
        }
        dx
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    fn grads(&self) -> Vec<&[f32]> {
        vec![self.dw.as_slice(), &self.db]
    }

    fn zero_grads(&mut self) {
        self.dw.clear();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(
            in_dim,
            self.in_shape.len(),
            "conv: wired to wrong input width"
        );
        self.out_shape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-channel 3×3 input with a known 2-channel 2×2 kernel (pad 0).
    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(0);
        let in_shape = Shape3::new(1, 3, 3);
        let mut conv = Conv2d::new(in_shape, 1, 2, 0, Init::GlorotUniform, &mut rng);
        // Kernel = [[1, 0], [0, 1]] (trace of each 2×2 patch), bias 0.5.
        conv.w = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 1.0]);
        conv.b = vec![0.5];
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 9, vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ]);
        let y = conv.forward(x.clone(), true);
        // Patches: (1+5), (2+6), (4+8), (5+9) plus bias.
        assert_eq!(y.as_slice(), &[6.5, 8.5, 12.5, 14.5]);
        assert_eq!(conv.out_shape(), Shape3::new(1, 2, 2));
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let mut rng = Rng::new(1);
        let conv = Conv2d::new(Shape3::new(2, 5, 5), 4, 3, 1, Init::HeNormal, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(4, 5, 5));
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn backward_bias_gradient_sums_spatial() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(Shape3::new(1, 3, 3), 2, 2, 0, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(1, 9, (0..9).map(|i| i as f32).collect());
        let _ = conv.forward(x.clone(), true);
        let dy = Matrix::from_vec(1, 2 * 4, vec![1.0; 8]);
        let _ = conv.backward(dy);
        // Each output channel has 4 spatial positions with grad 1.
        assert_eq!(conv.grads()[1], &[4.0, 4.0]);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property,
        // which is exactly what makes the conv backward pass correct.
        let mut rng = Rng::new(3);
        let conv = Conv2d::new(Shape3::new(2, 4, 4), 3, 3, 1, Init::HeNormal, &mut rng);
        let mut x = vec![0.0f32; 2 * 16];
        rng.clone().fill_normal(&mut x, 0.0, 1.0);
        let col = conv.im2col(&x);
        let mut y = Matrix::zeros(col.rows(), col.cols());
        rng.clone().fill_normal(y.as_mut_slice(), 0.0, 1.0);
        let forward_ip = fda_tensor::vector::dot(col.as_slice(), y.as_slice());
        let mut back = vec![0.0f32; x.len()];
        conv.col2im(&y, &mut back);
        let backward_ip = fda_tensor::vector::dot(&x, &back);
        assert!(
            (forward_ip - backward_ip).abs() < 1e-2 * (1.0 + forward_ip.abs()),
            "{forward_ip} vs {backward_ip}"
        );
    }

    #[test]
    fn batch_forward_matches_per_sample() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(Shape3::new(1, 4, 4), 2, 3, 1, Init::HeNormal, &mut rng);
        let mut x = Matrix::zeros(3, 16);
        Rng::new(9).fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let y_batch = conv.forward(x.clone(), true);
        for s in 0..3 {
            let xi = Matrix::from_vec(1, 16, x.row(s).to_vec());
            let yi = conv.forward(xi.clone(), true);
            assert_eq!(yi.as_slice(), y_batch.row(s));
        }
    }

    /// Regression for the kernel-size guard: `k == h + 2·pad` is the exact
    /// boundary (output collapses to 1×1 in that dimension) and must be
    /// accepted; one past it must panic.
    #[test]
    fn kernel_size_boundary_accepted() {
        let mut rng = Rng::new(5);
        // h = 3, pad = 1 ⇒ padded extent 5; a 5×5 kernel is exactly legal.
        let conv = Conv2d::new(Shape3::new(1, 3, 3), 2, 5, 1, Init::HeNormal, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(2, 1, 1));
        // Unpadded boundary too: k == h with pad = 0.
        let conv0 = Conv2d::new(Shape3::new(1, 4, 4), 1, 4, 0, Init::HeNormal, &mut rng);
        assert_eq!(conv0.out_shape(), Shape3::new(1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "too large for input")]
    fn kernel_one_past_boundary_panics() {
        let mut rng = Rng::new(6);
        // Padded extent 5; a 6×6 kernel must be rejected.
        let _ = Conv2d::new(Shape3::new(1, 3, 3), 2, 6, 1, Init::HeNormal, &mut rng);
    }

    /// Changing batch size between forwards resizes the lowering buffers
    /// and keeps results identical to a fresh layer.
    #[test]
    fn batch_size_change_is_safe() {
        let mut rng = Rng::new(7);
        let mut conv = Conv2d::new(Shape3::new(2, 5, 5), 3, 3, 1, Init::HeNormal, &mut rng);
        let mut big = Matrix::zeros(4, 50);
        Rng::new(11).fill_normal(big.as_mut_slice(), 0.0, 1.0);
        let mut small = Matrix::zeros(2, 50);
        Rng::new(12).fill_normal(small.as_mut_slice(), 0.0, 1.0);
        let _ = conv.forward(big.clone(), true);
        let y_small = conv.forward(small.clone(), true);
        // Fresh layer with identical weights for reference.
        let mut rng2 = Rng::new(7);
        let mut fresh = Conv2d::new(Shape3::new(2, 5, 5), 3, 3, 1, Init::HeNormal, &mut rng2);
        let y_ref = fresh.forward(small.clone(), true);
        assert_eq!(y_small.as_slice(), y_ref.as_slice());
    }

    /// The eval-pass pattern — full batches then a ragged final chunk,
    /// repeated — must reuse the lowering allocations (capacity-keyed
    /// scratch), not reallocate on every shape change, and results must
    /// stay correct through shrink and regrow.
    #[test]
    fn ragged_eval_chunks_reuse_lowering_buffers() {
        let mut rng = Rng::new(8);
        let mut conv = Conv2d::new(Shape3::new(1, 6, 6), 2, 3, 1, Init::HeNormal, &mut rng);
        let mut full = Matrix::zeros(8, 36);
        Rng::new(21).fill_normal(full.as_mut_slice(), 0.0, 1.0);
        let mut ragged = Matrix::zeros(3, 36);
        Rng::new(22).fill_normal(ragged.as_mut_slice(), 0.0, 1.0);

        let y_full_1 = conv.forward(full.clone(), false);
        let cols_ptr = conv.cols.as_slice().as_ptr();
        let y_big_ptr = conv.y_big.as_slice().as_ptr();
        // Ragged chunk shrinks, next pass grows back: both within capacity.
        let y_ragged_1 = conv.forward(ragged.clone(), false);
        assert_eq!(conv.cols.as_slice().as_ptr(), cols_ptr, "cols reallocated");
        let y_full_2 = conv.forward(full.clone(), false);
        assert_eq!(conv.cols.as_slice().as_ptr(), cols_ptr, "cols reallocated");
        assert_eq!(
            conv.y_big.as_slice().as_ptr(),
            y_big_ptr,
            "y_big reallocated"
        );
        let y_ragged_2 = conv.forward(ragged.clone(), false);

        // Identical inputs ⇒ identical outputs across the reuse cycle.
        assert_eq!(y_full_1.as_slice(), y_full_2.as_slice());
        assert_eq!(y_ragged_1.as_slice(), y_ragged_2.as_slice());
    }
}
