//! Model zoo mirroring the paper's architectures at CPU-tractable scale.
//!
//! The paper evaluates five networks (Table 2). Real GPU-scale training is
//! unavailable in this environment, so each architecture family is
//! reproduced with the same topology (conv → pool → dense, depth and width
//! ordering preserved) scaled down ~3 orders of magnitude. The *relative*
//! size ordering `LeNet-5 < VGG16* < DenseNet121 < DenseNet201 <
//! ConvNeXtLarge-head` is preserved because communication cost scales
//! linearly in `d` and the paper's comparisons are per-model.
//!
//! | Zoo id           | Paper model (d)        | Ours (d)    | Input        |
//! |------------------|------------------------|-------------|--------------|
//! | `Lenet5`         | LeNet-5 (62K)          | ≈3.7K       | 1×12×12      |
//! | `Vgg16Star`      | VGG16* (2.6M)          | ≈12.5K      | 1×12×12      |
//! | `DenseNet121`    | DenseNet121 (6.9M)     | ≈16.5K      | 3×8×8        |
//! | `DenseNet201`    | DenseNet201 (18M)      | ≈30.5K      | 3×8×8        |
//! | `TransferHead`   | ConvNeXtLarge (198M)   | ≈44K        | 128 features |

use crate::activation::Relu;
use crate::conv::Conv2d;
use crate::dense::{Dense, Flatten};
use crate::dropout::Dropout;
use crate::init::Init;
use crate::layer::Shape3;
use crate::model::Sequential;
use crate::pool::MaxPool2d;
use fda_tensor::Rng;

/// Identifier for each model in the zoo (one per paper architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// LeNet-5 analogue (MNIST-like task, Adam optimizer in the paper).
    Lenet5,
    /// VGG16* analogue (MNIST-like task, Adam).
    Vgg16Star,
    /// DenseNet121 analogue (CIFAR-10-like task, SGD + Nesterov momentum).
    DenseNet121,
    /// DenseNet201 analogue (CIFAR-10-like task, SGD + Nesterov momentum).
    DenseNet201,
    /// ConvNeXtLarge fine-tuning analogue (CIFAR-100-like features, AdamW).
    TransferHead,
}

impl ModelId {
    /// All zoo models in paper order (Table 2 rows).
    pub const ALL: [ModelId; 5] = [
        ModelId::Lenet5,
        ModelId::Vgg16Star,
        ModelId::DenseNet121,
        ModelId::DenseNet201,
        ModelId::TransferHead,
    ];

    /// Zoo identifier string.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Lenet5 => "lenet5-synth",
            ModelId::Vgg16Star => "vgg16star-synth",
            ModelId::DenseNet121 => "densenet121-synth",
            ModelId::DenseNet201 => "densenet201-synth",
            ModelId::TransferHead => "convnext-head-synth",
        }
    }

    /// The paper model this stands in for.
    pub fn paper_model(self) -> &'static str {
        match self {
            ModelId::Lenet5 => "LeNet-5",
            ModelId::Vgg16Star => "VGG16*",
            ModelId::DenseNet121 => "DenseNet121",
            ModelId::DenseNet201 => "DenseNet201",
            ModelId::TransferHead => "ConvNeXtLarge (fine-tuning)",
        }
    }

    /// Parameter count of the paper's model.
    pub fn paper_d(self) -> usize {
        match self {
            ModelId::Lenet5 => 62_000,
            ModelId::Vgg16Star => 2_600_000,
            ModelId::DenseNet121 => 6_900_000,
            ModelId::DenseNet201 => 18_000_000,
            ModelId::TransferHead => 198_000_000,
        }
    }

    /// Dataset the paper trains this model on.
    pub fn paper_dataset(self) -> &'static str {
        match self {
            ModelId::Lenet5 | ModelId::Vgg16Star => "MNIST",
            ModelId::DenseNet121 | ModelId::DenseNet201 => "CIFAR-10",
            ModelId::TransferHead => "CIFAR-100",
        }
    }

    /// Input activation shape expected by the built model.
    pub fn input_shape(self) -> Shape3 {
        match self {
            ModelId::Lenet5 | ModelId::Vgg16Star => Shape3::new(1, 12, 12),
            ModelId::DenseNet121 | ModelId::DenseNet201 => Shape3::new(3, 8, 8),
            ModelId::TransferHead => Shape3::new(1, 1, 128),
        }
    }

    /// Number of output classes.
    pub fn classes(self) -> usize {
        match self {
            ModelId::TransferHead => 100,
            _ => 10,
        }
    }

    /// Builds the model with deterministic initialization.
    ///
    /// Two models built with the same `init_seed` start bit-identical —
    /// this is how workers replicate the common global model `w_0`.
    /// `stochastic_seed` seeds training-only randomness (dropout masks) and
    /// should differ per worker.
    pub fn build(self, init_seed: u64, stochastic_seed: u64) -> Sequential {
        let mut rng = Rng::new(init_seed);
        match self {
            ModelId::Lenet5 => lenet5_synth(&mut rng),
            ModelId::Vgg16Star => vgg16star_synth(&mut rng),
            ModelId::DenseNet121 => densenet121_synth(&mut rng, stochastic_seed),
            ModelId::DenseNet201 => densenet201_synth(&mut rng, stochastic_seed),
            ModelId::TransferHead => transfer_head(&mut rng),
        }
    }
}

/// LeNet-5 analogue: two conv/pool stages and two dense layers
/// (Glorot uniform, as in the paper §4.1).
fn lenet5_synth(rng: &mut Rng) -> Sequential {
    let input = Shape3::new(1, 12, 12);
    let c1 = Conv2d::new(input, 6, 3, 1, Init::GlorotUniform, rng);
    let p1 = MaxPool2d::new(c1.out_shape(), 2);
    let c2 = Conv2d::new(p1.out_shape(), 12, 3, 1, Init::GlorotUniform, rng);
    let p2 = MaxPool2d::new(c2.out_shape(), 2);
    let p2_shape = p2.out_shape();
    let flat = p2_shape.len();
    Sequential::new("lenet5-synth", input.len())
        .push(c1)
        .push(Relu::new())
        .push(p1)
        .push(c2)
        .push(Relu::new())
        .push(p2)
        .push(Flatten::new(p2_shape))
        .push(Dense::new(flat, 24, Init::GlorotUniform, rng))
        .push(Relu::new())
        .push(Dense::new(24, 10, Init::GlorotUniform, rng))
}

/// VGG16* analogue: stacked double-conv blocks and a three-layer dense
/// head, mirroring the paper's cut-down VGG16 (Glorot uniform).
fn vgg16star_synth(rng: &mut Rng) -> Sequential {
    let input = Shape3::new(1, 12, 12);
    let c1a = Conv2d::new(input, 8, 3, 1, Init::GlorotUniform, rng);
    let c1b = Conv2d::new(c1a.out_shape(), 8, 3, 1, Init::GlorotUniform, rng);
    let p1 = MaxPool2d::new(c1b.out_shape(), 2);
    let c2a = Conv2d::new(p1.out_shape(), 16, 3, 1, Init::GlorotUniform, rng);
    let c2b = Conv2d::new(c2a.out_shape(), 16, 3, 1, Init::GlorotUniform, rng);
    let p2 = MaxPool2d::new(c2b.out_shape(), 2);
    let p2_shape = p2.out_shape();
    let flat = p2_shape.len();
    Sequential::new("vgg16star-synth", input.len())
        .push(c1a)
        .push(Relu::new())
        .push(c1b)
        .push(Relu::new())
        .push(p1)
        .push(c2a)
        .push(Relu::new())
        .push(c2b)
        .push(Relu::new())
        .push(p2)
        .push(Flatten::new(p2_shape))
        .push(Dense::new(flat, 48, Init::GlorotUniform, rng))
        .push(Relu::new())
        .push(Dense::new(48, 32, Init::GlorotUniform, rng))
        .push(Relu::new())
        .push(Dense::new(32, 10, Init::GlorotUniform, rng))
}

/// DenseNet121 analogue: deeper conv stack with dropout 0.2 (He normal,
/// as the paper prescribes for the DenseNets).
fn densenet121_synth(rng: &mut Rng, stochastic_seed: u64) -> Sequential {
    let input = Shape3::new(3, 8, 8);
    let c1a = Conv2d::new(input, 12, 3, 1, Init::HeNormal, rng);
    let c1b = Conv2d::new(c1a.out_shape(), 12, 3, 1, Init::HeNormal, rng);
    let p1 = MaxPool2d::new(c1b.out_shape(), 2);
    let c2a = Conv2d::new(p1.out_shape(), 24, 3, 1, Init::HeNormal, rng);
    let c2b = Conv2d::new(c2a.out_shape(), 24, 3, 1, Init::HeNormal, rng);
    let p2 = MaxPool2d::new(c2b.out_shape(), 2);
    let p2_shape = p2.out_shape();
    let flat = p2_shape.len();
    Sequential::new("densenet121-synth", input.len())
        .push(c1a)
        .push(Relu::new())
        .push(c1b)
        .push(Relu::new())
        .push(p1)
        .push(c2a)
        .push(Relu::new())
        .push(c2b)
        .push(Relu::new())
        .push(p2)
        .push(Flatten::new(p2_shape))
        .push(Dropout::new(0.2, stochastic_seed.wrapping_add(1)))
        .push(Dense::new(flat, 64, Init::HeNormal, rng))
        .push(Relu::new())
        .push(Dropout::new(0.2, stochastic_seed.wrapping_add(2)))
        .push(Dense::new(64, 10, Init::HeNormal, rng))
}

/// DenseNet201 analogue: wider/deeper than the 121 variant (He normal,
/// dropout 0.2), preserving the paper's size ordering.
fn densenet201_synth(rng: &mut Rng, stochastic_seed: u64) -> Sequential {
    let input = Shape3::new(3, 8, 8);
    let c1a = Conv2d::new(input, 16, 3, 1, Init::HeNormal, rng);
    let c1b = Conv2d::new(c1a.out_shape(), 16, 3, 1, Init::HeNormal, rng);
    let p1 = MaxPool2d::new(c1b.out_shape(), 2);
    let c2a = Conv2d::new(p1.out_shape(), 32, 3, 1, Init::HeNormal, rng);
    let c2b = Conv2d::new(c2a.out_shape(), 32, 3, 1, Init::HeNormal, rng);
    let p2 = MaxPool2d::new(c2b.out_shape(), 2);
    let p2_shape = p2.out_shape();
    let flat = p2_shape.len();
    Sequential::new("densenet201-synth", input.len())
        .push(c1a)
        .push(Relu::new())
        .push(c1b)
        .push(Relu::new())
        .push(p1)
        .push(c2a)
        .push(Relu::new())
        .push(c2b)
        .push(Relu::new())
        .push(p2)
        .push(Flatten::new(p2_shape))
        .push(Dropout::new(0.2, stochastic_seed.wrapping_add(1)))
        .push(Dense::new(flat, 96, Init::HeNormal, rng))
        .push(Relu::new())
        .push(Dropout::new(0.2, stochastic_seed.wrapping_add(2)))
        .push(Dense::new(96, 10, Init::HeNormal, rng))
}

/// ConvNeXtLarge fine-tuning analogue: an MLP over frozen-extractor
/// features — the largest model in the zoo, matching the paper where the
/// transfer model dominates all others in `d`.
fn transfer_head(rng: &mut Rng) -> Sequential {
    Sequential::new("convnext-head-synth", 128)
        .push(Dense::new(128, 192, Init::GlorotUniform, rng))
        .push(Relu::new())
        .push(Dense::new(192, 100, Init::GlorotUniform, rng))
}

/// A plain MLP with ReLU between hidden layers (output layer linear).
/// Used by tests, examples and the quickstart.
pub fn mlp_relu(name: &str, dims: &[usize], init: Init, seed: u64) -> Sequential {
    assert!(dims.len() >= 2, "mlp: need at least input and output dims");
    let mut rng = Rng::new(seed);
    let mut m = Sequential::new(name, dims[0]);
    for (i, w) in dims.windows(2).enumerate() {
        m = m.push(Dense::new(w[0], w[1], init, &mut rng));
        if i + 2 < dims.len() {
            m = m.push(Relu::new());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_builds_and_size_ordering_matches_paper() {
        let counts: Vec<usize> = ModelId::ALL
            .iter()
            .map(|id| id.build(1, 2).param_count())
            .collect();
        for w in counts.windows(2) {
            assert!(
                w[0] < w[1],
                "zoo param counts must preserve the paper ordering: {counts:?}"
            );
        }
        let paper: Vec<usize> = ModelId::ALL.iter().map(|id| id.paper_d()).collect();
        for w in paper.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn same_init_seed_gives_identical_replicas() {
        for id in ModelId::ALL {
            let a = id.build(42, 0).params_flat();
            let b = id.build(42, 99).params_flat(); // stochastic seed differs
            assert_eq!(a, b, "{}: init must depend only on init_seed", id.name());
        }
    }

    #[test]
    fn input_shapes_match_model_in_dim() {
        for id in ModelId::ALL {
            let m = id.build(7, 7);
            assert_eq!(m.in_dim(), id.input_shape().len(), "{}", id.name());
            assert_eq!(m.out_dim(), id.classes(), "{}", id.name());
        }
    }

    #[test]
    fn forward_backward_smoke_all_models() {
        use fda_tensor::Matrix;
        for id in ModelId::ALL {
            let mut m = id.build(3, 4);
            let mut x = Matrix::zeros(2, m.in_dim());
            fda_tensor::Rng::new(5).fill_normal(x.as_mut_slice(), 0.0, 1.0);
            let labels = vec![0, id.classes() - 1];
            let (loss, _) = m.compute_gradients(&x, &labels);
            assert!(loss.is_finite(), "{}: loss must be finite", id.name());
            let g = m.grads_flat();
            assert!(
                g.iter().any(|&v| v != 0.0),
                "{}: gradient must be nonzero",
                id.name()
            );
        }
    }

    /// Conv models declare their channel-major native input; MLPs don't.
    #[test]
    fn input_shape_detection() {
        assert_eq!(
            ModelId::Lenet5.build(1, 1).input_shape(),
            Some(Shape3::new(1, 12, 12))
        );
        assert_eq!(
            ModelId::DenseNet121.build(1, 1).input_shape(),
            Some(Shape3::new(3, 8, 8))
        );
        assert_eq!(ModelId::TransferHead.build(1, 1).input_shape(), None);
    }

    /// The native (channel-major, by-value) training entry must be
    /// bit-identical to the sample-major public API for every zoo model —
    /// this is what lets the cluster hot loop gather batches natively
    /// without perturbing trajectories.
    #[test]
    fn native_path_matches_sample_major_path() {
        use fda_tensor::Matrix;
        for id in ModelId::ALL {
            let mut a = id.build(3, 4);
            let mut b = id.build(3, 4);
            let mut x = Matrix::zeros(3, a.in_dim());
            fda_tensor::Rng::new(5).fill_normal(x.as_mut_slice(), 0.0, 1.0);
            let labels = vec![0, 1, id.classes() - 1];
            let (l1, c1) = a.compute_gradients(&x, &labels);
            let native = match b.input_shape() {
                Some(s) => x.to_channel_major(s.c),
                None => x.clone(),
            };
            let (l2, c2) = b.compute_gradients_native(native, &labels);
            assert_eq!(l1.to_bits(), l2.to_bits(), "{}: loss diverged", id.name());
            assert_eq!(c1, c2, "{}", id.name());
            assert_eq!(
                a.grads_flat(),
                b.grads_flat(),
                "{}: gradients diverged",
                id.name()
            );
        }
    }

    #[test]
    fn mlp_relu_structure() {
        let m = mlp_relu("t", &[4, 8, 8, 2], Init::GlorotUniform, 1);
        assert_eq!(m.in_dim(), 4);
        assert_eq!(m.out_dim(), 2);
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn param_counts_are_documented_scale() {
        // Keep the doc table in this module honest.
        let d = |id: ModelId| id.build(0, 0).param_count();
        assert!((3_000..5_000).contains(&d(ModelId::Lenet5)));
        assert!((10_000..16_000).contains(&d(ModelId::Vgg16Star)));
        assert!((14_000..20_000).contains(&d(ModelId::DenseNet121)));
        assert!((25_000..40_000).contains(&d(ModelId::DenseNet201)));
        assert!((40_000..50_000).contains(&d(ModelId::TransferHead)));
    }
}
