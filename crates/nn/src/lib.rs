//! # fda-nn
//!
//! Neural-network substrate for the FDA reproduction: layers with full
//! backpropagation, losses, initializers, a [`Sequential`] container, and a
//! model zoo mirroring the paper's architectures at CPU-tractable scale.
//!
//! ## Flat-parameter API
//!
//! FDA treats a model as a flat vector `w ∈ R^d`: worker drifts
//! `u^(k) = w^(k) − w_t0`, AllReduce averages and sketches all operate on
//! that view. Every [`Sequential`] therefore exposes
//! [`Sequential::param_count`], [`Sequential::copy_params_to`],
//! [`Sequential::load_params`] and [`Sequential::copy_grads_to`], which is
//! the only interface the `fda-core` crate needs.
//!
//! ## Correctness
//!
//! Each layer's backward pass is validated against central finite
//! differences (see [`gradcheck`]), and the test suites exercise shapes,
//! train/eval modes and degenerate inputs.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod pool;
pub mod zoo;

pub use layer::{Layer, Shape3};
pub use loss::SoftmaxCrossEntropy;
pub use model::Sequential;
