//! Finite-difference gradient checking.
//!
//! Backprop bugs are the classic silent failure of hand-rolled NN code, so
//! every layer in this crate is validated against central finite
//! differences of the end-to-end loss. The checker perturbs parameters (and
//! optionally inputs) of a [`Sequential`] and compares `∂L/∂θ` with the
//! analytic gradients.

use crate::loss::SoftmaxCrossEntropy;
use crate::model::Sequential;
use fda_tensor::Matrix;

/// Result of a gradient check over a set of parameter coordinates.
///
/// For piecewise-linear networks (ReLU, MaxPool) a ±ε probe occasionally
/// crosses a kink — an argmax flip in a pool window, say — and the finite
/// difference there measures a *different linear piece* than the analytic
/// gradient. Those sparse outliers are properties of the probe, not bugs,
/// so the report keeps the full error distribution: smooth stacks should
/// assert on [`GradCheckReport::max_rel_err`], kinked stacks on
/// [`GradCheckReport::frac_above`] being small plus a tight quantile.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    rel_errors: Vec<f32>,
    /// Maximum relative error across checked coordinates.
    pub max_rel_err: f32,
    /// Number of parameter coordinates compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Fraction of checked coordinates with relative error above `tol`.
    pub fn frac_above(&self, tol: f32) -> f32 {
        if self.rel_errors.is_empty() {
            return 0.0;
        }
        self.rel_errors.iter().filter(|&&e| e > tol).count() as f32 / self.rel_errors.len() as f32
    }

    /// Linear-interpolated quantile of the relative-error distribution.
    pub fn quantile(&self, q: f64) -> f32 {
        let v: Vec<f64> = self.rel_errors.iter().map(|&e| e as f64).collect();
        fda_tensor::stats::quantile(&v, q) as f32
    }
}

/// Compares analytic parameter gradients of softmax-CE loss against central
/// finite differences.
///
/// Both sides measure the **eval-mode** loss
/// ([`Sequential::compute_gradients_eval`]): dropout is the identity, so
/// stochastic layers do not inject probe noise and models with dropout are
/// checkable exactly. Checks `stride`-spaced coordinates (check all with
/// `stride = 1`). Relative error uses the standard symmetric denominator
/// `max(1e-4, |fd| + |analytic|)`.
pub fn check_param_gradients(
    model: &mut Sequential,
    x: &Matrix,
    labels: &[usize],
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    assert!(stride >= 1, "gradcheck: stride must be positive");
    let (_, _) = model.compute_gradients_eval(x, labels);
    let analytic = model.grads_flat();
    let base = model.params_flat();
    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    let loss_at = |model: &mut Sequential, params: &[f32]| -> f32 {
        model.load_params(params);
        let logits = model.forward(x, false); // eval mode: no dropout noise
        let (loss, _, _) = SoftmaxCrossEntropy.forward(&logits, labels);
        loss
    };

    let mut params = base.clone();
    let mut rel_errors = Vec::with_capacity(base.len() / stride + 1);
    for i in (0..base.len()).step_by(stride) {
        params[i] = base[i] + eps;
        let lp = loss_at(model, &params);
        params[i] = base[i] - eps;
        let lm = loss_at(model, &params);
        params[i] = base[i];
        let fd = (lp - lm) / (2.0 * eps);
        let denom = (fd.abs() + analytic[i].abs()).max(1e-4);
        let rel = (fd - analytic[i]).abs() / denom;
        rel_errors.push(rel);
        if rel > max_rel {
            max_rel = rel;
        }
        checked += 1;
    }
    model.load_params(&base);
    GradCheckReport {
        rel_errors,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Tanh;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::init::Init;
    use crate::layer::Shape3;
    use crate::pool::{GlobalAvgPool, MaxPool2d};
    use fda_tensor::Rng;

    // NOTE: the stacks below use Tanh rather than ReLU on purpose: central
    // finite differences are only valid for (locally) smooth losses, and a
    // perturbation of ±ε across a ReLU kink or a MaxPool argmax flip shows
    // up as a large *apparent* error even when backprop is exact. MaxPool
    // itself is safe here because random normal activations are almost
    // never within ε of an argmax tie.

    fn batch(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        let mut x = Matrix::zeros(rows, cols);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        x
    }

    #[test]
    fn dense_tanh_stack_gradients() {
        let mut rng = Rng::new(1);
        let mut m = Sequential::new("gc-dense", 6)
            .push(Dense::new(6, 10, Init::GlorotUniform, &mut rng))
            .push(Tanh::new())
            .push(Dense::new(10, 4, Init::GlorotUniform, &mut rng));
        let x = batch(&mut rng, 5, 6);
        let labels = vec![0, 1, 2, 3, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "max relative error {} too large",
            report.max_rel_err
        );
    }

    #[test]
    fn conv_pool_stack_gradients() {
        let mut rng = Rng::new(2);
        let in_shape = Shape3::new(1, 6, 6);
        let conv = Conv2d::new(in_shape, 3, 3, 1, Init::HeNormal, &mut rng);
        let pool = MaxPool2d::new(conv.out_shape(), 2);
        let pooled = pool.out_shape();
        let flat = pooled.len();
        let mut m = Sequential::new("gc-conv", in_shape.len())
            .push(conv)
            .push(pool)
            .push(Tanh::new())
            .push(crate::dense::Flatten::new(pooled))
            .push(Dense::new(flat, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 3, in_shape.len());
        let labels = vec![0, 1, 2];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        // MaxPool makes the loss piecewise-smooth in the conv weights: a
        // conv-weight perturbation shifts whole feature maps and can flip a
        // pool argmax, so a few coordinates legitimately disagree with the
        // probe. Require the overwhelming majority to match tightly and the
        // outliers to be sparse.
        assert!(
            report.quantile(0.95) < 3e-2,
            "p95 relative error {} too large",
            report.quantile(0.95)
        );
        assert!(
            report.frac_above(5e-2) < 0.05,
            "too many kink outliers: {}",
            report.frac_above(5e-2)
        );
    }

    /// Dedicated check for the batched-im2col convolution: a batch large
    /// enough that every sample's column block in the shared `cols` matrix
    /// is exercised, with a smooth (Tanh) stack so central differences are
    /// valid for every coordinate.
    #[test]
    fn batched_im2col_conv_gradients() {
        let mut rng = Rng::new(7);
        let in_shape = Shape3::new(2, 5, 5);
        let conv = Conv2d::new(in_shape, 4, 3, 1, Init::HeNormal, &mut rng);
        let out = conv.out_shape();
        let flat = out.len();
        let mut m = Sequential::new("gc-batched-conv", in_shape.len())
            .push(conv)
            .push(Tanh::new())
            .push(crate::dense::Flatten::new(out))
            .push(Dense::new(flat, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 8, in_shape.len());
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "batched conv max relative error {} too large",
            report.max_rel_err
        );
        assert!(report.checked > 200, "should cover all conv parameters");
    }

    /// Conv edge geometries under the channel-major layout, each in a
    /// smooth Tanh stack so `max_rel_err` is assertable: the kernel at the
    /// exact padded-extent boundary (1×1 output), a 1×1 kernel, a
    /// non-square input, and padding wider than the kernel overhang.
    #[test]
    fn conv_edge_shape_gradients() {
        let cases: &[(Shape3, usize, usize, usize)] = &[
            (Shape3::new(1, 3, 3), 2, 5, 1), // k == h + 2·pad: 1×1 output
            (Shape3::new(2, 4, 4), 3, 1, 0), // 1×1 kernel (pure channel mix)
            (Shape3::new(2, 3, 5), 3, 3, 1), // non-square input h ≠ w
            (Shape3::new(1, 4, 4), 2, 3, 2), // pad wider than kernel overhang
        ];
        for (case, &(in_shape, oc, k, pad)) in cases.iter().enumerate() {
            let mut rng = Rng::new(40 + case as u64);
            let conv = Conv2d::new(in_shape, oc, k, pad, Init::HeNormal, &mut rng);
            let out = conv.out_shape();
            let flat = out.len();
            let mut m = Sequential::new("gc-conv-edge", in_shape.len())
                .push(conv)
                .push(Tanh::new())
                .push(crate::dense::Flatten::new(out))
                .push(Dense::new(flat, 3, Init::HeNormal, &mut rng));
            let x = batch(&mut rng, 4, in_shape.len());
            let labels = vec![0, 1, 2, 1];
            let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
            // Near-zero-gradient coordinates sit at the relative-error
            // clamp where f32 probe noise registers as a few percent, so
            // assert a tight p95 plus zero gross errors instead of a tight
            // max (a real layout bug throws most coordinates past 0.1).
            let ctx = format!("case {case} ({in_shape:?}, oc={oc}, k={k}, pad={pad})");
            assert!(
                report.quantile(0.95) < 1e-2,
                "{ctx}: p95 relative error {} too large",
                report.quantile(0.95)
            );
            assert!(
                report.max_rel_err < 1e-1,
                "{ctx}: gross error {}",
                report.max_rel_err
            );
        }
    }

    /// Exact MaxPool ties must not destabilize the check: the tied window
    /// feeds a dense head, whose weight perturbations cannot flip the
    /// argmax, so both central probes and the analytic gradient measure the
    /// same (first-in-scan-order) linear piece.
    #[test]
    fn maxpool_tie_gradients() {
        let mut rng = Rng::new(50);
        let in_shape = Shape3::new(1, 4, 4);
        let pool = MaxPool2d::new(in_shape, 2);
        let pooled = pool.out_shape();
        let mut m = Sequential::new("gc-pool-tie", in_shape.len())
            .push(pool)
            .push(crate::dense::Flatten::new(pooled))
            .push(Dense::new(4, 2, Init::GlorotUniform, &mut rng));
        // Every 2×2 window is an exact four-way tie.
        let x = Matrix::from_vec(2, 16, vec![1.5; 32]);
        let labels = vec![0, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "tied-pool max relative error {} too large",
            report.max_rel_err
        );
    }

    /// Dropout layers in the stack: the checker runs the loss in eval mode
    /// on both sides, so dropout is the identity and the check is exact —
    /// this is the guarantee that makes the DenseNet zoo models checkable.
    #[test]
    fn dropout_in_eval_gradients() {
        let mut rng = Rng::new(60);
        let mut m = Sequential::new("gc-dropout", 6)
            .push(Dense::new(6, 12, Init::GlorotUniform, &mut rng))
            .push(crate::dropout::Dropout::new(0.5, 123))
            .push(Tanh::new())
            .push(Dense::new(12, 3, Init::GlorotUniform, &mut rng));
        let x = batch(&mut rng, 5, 6);
        let labels = vec![0, 1, 2, 0, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "dropout-in-eval max relative error {} too large",
            report.max_rel_err
        );
    }

    /// The whole zoo, end to end: every model (conv stacks with ReLU,
    /// MaxPool, Dropout, dense heads) must pass the finite-difference check
    /// under the channel-major layout. ReLU/MaxPool kinks make a sparse set
    /// of coordinates legitimately disagree with the probe, so the asserts
    /// are distributional (tight p95, sparse outliers).
    #[test]
    fn all_zoo_models_pass_gradcheck() {
        for id in crate::zoo::ModelId::ALL {
            let mut m = id.build(17, 99);
            let mut rng = Rng::new(0x600D + id.paper_d() as u64);
            let x = batch(&mut rng, 4, m.in_dim());
            let labels: Vec<usize> = (0..4).map(|i| (i * 3) % id.classes()).collect();
            // Budget ~220 checked coordinates per model. ε = 3e-3 balances
            // ReLU/MaxPool kink-crossing probability (shrinks with ε)
            // against f32 probe noise (grows as 1/ε); measured error
            // distributions across the zoo have p90 ≤ 0.022 and
            // frac>0.2 ≤ 0.009 there, so the asserts below carry 2–3×
            // margin while any layout/backprop bug (which throws the
            // majority of coordinates past 0.2) still fails loudly.
            let stride = (m.param_count() / 220).max(1);
            let report = check_param_gradients(&mut m, &x, &labels, 3e-3, stride);
            assert!(report.checked >= 200, "{}: too few coords", id.name());
            assert!(
                report.quantile(0.90) < 5e-2,
                "{}: p90 relative error {} too large",
                id.name(),
                report.quantile(0.90)
            );
            assert!(
                report.frac_above(5e-2) < 0.10,
                "{}: too many kink outliers: {}",
                id.name(),
                report.frac_above(5e-2)
            );
            assert!(
                report.frac_above(2e-1) < 0.03,
                "{}: gross errors: {}",
                id.name(),
                report.frac_above(2e-1)
            );
        }
    }

    #[test]
    fn gap_head_gradients() {
        let mut rng = Rng::new(3);
        let in_shape = Shape3::new(2, 4, 4);
        let conv = Conv2d::new(in_shape, 4, 3, 1, Init::HeNormal, &mut rng);
        let gap = GlobalAvgPool::new(conv.out_shape());
        let mut m = Sequential::new("gc-gap", in_shape.len())
            .push(conv)
            .push(Tanh::new())
            .push(gap)
            .push(Dense::new(4, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 2, in_shape.len());
        let labels = vec![2, 0];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 3e-2,
            "max relative error {} too large",
            report.max_rel_err
        );
    }
}
