//! Finite-difference gradient checking.
//!
//! Backprop bugs are the classic silent failure of hand-rolled NN code, so
//! every layer in this crate is validated against central finite
//! differences of the end-to-end loss. The checker perturbs parameters (and
//! optionally inputs) of a [`Sequential`] and compares `∂L/∂θ` with the
//! analytic gradients.

use crate::loss::SoftmaxCrossEntropy;
use crate::model::Sequential;
use fda_tensor::Matrix;

/// Result of a gradient check over a set of parameter coordinates.
///
/// For piecewise-linear networks (ReLU, MaxPool) a ±ε probe occasionally
/// crosses a kink — an argmax flip in a pool window, say — and the finite
/// difference there measures a *different linear piece* than the analytic
/// gradient. Those sparse outliers are properties of the probe, not bugs,
/// so the report keeps the full error distribution: smooth stacks should
/// assert on [`GradCheckReport::max_rel_err`], kinked stacks on
/// [`GradCheckReport::frac_above`] being small plus a tight quantile.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    rel_errors: Vec<f32>,
    /// Maximum relative error across checked coordinates.
    pub max_rel_err: f32,
    /// Number of parameter coordinates compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Fraction of checked coordinates with relative error above `tol`.
    pub fn frac_above(&self, tol: f32) -> f32 {
        if self.rel_errors.is_empty() {
            return 0.0;
        }
        self.rel_errors.iter().filter(|&&e| e > tol).count() as f32 / self.rel_errors.len() as f32
    }

    /// Linear-interpolated quantile of the relative-error distribution.
    pub fn quantile(&self, q: f64) -> f32 {
        let v: Vec<f64> = self.rel_errors.iter().map(|&e| e as f64).collect();
        fda_tensor::stats::quantile(&v, q) as f32
    }
}

/// Compares analytic parameter gradients of softmax-CE loss against central
/// finite differences.
///
/// Checks `stride`-spaced coordinates (check all with `stride = 1`).
/// Relative error uses the standard symmetric denominator
/// `max(1e-4, |fd| + |analytic|)`.
pub fn check_param_gradients(
    model: &mut Sequential,
    x: &Matrix,
    labels: &[usize],
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    assert!(stride >= 1, "gradcheck: stride must be positive");
    let (_, _) = model.compute_gradients(x, labels);
    let analytic = model.grads_flat();
    let base = model.params_flat();
    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    let loss_at = |model: &mut Sequential, params: &[f32]| -> f32 {
        model.load_params(params);
        let logits = model.forward(x, false); // eval mode: no dropout noise
        let (loss, _, _) = SoftmaxCrossEntropy.forward(&logits, labels);
        loss
    };

    let mut params = base.clone();
    let mut rel_errors = Vec::with_capacity(base.len() / stride + 1);
    for i in (0..base.len()).step_by(stride) {
        params[i] = base[i] + eps;
        let lp = loss_at(model, &params);
        params[i] = base[i] - eps;
        let lm = loss_at(model, &params);
        params[i] = base[i];
        let fd = (lp - lm) / (2.0 * eps);
        let denom = (fd.abs() + analytic[i].abs()).max(1e-4);
        let rel = (fd - analytic[i]).abs() / denom;
        rel_errors.push(rel);
        if rel > max_rel {
            max_rel = rel;
        }
        checked += 1;
    }
    model.load_params(&base);
    GradCheckReport {
        rel_errors,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Tanh;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::init::Init;
    use crate::layer::Shape3;
    use crate::pool::{GlobalAvgPool, MaxPool2d};
    use fda_tensor::Rng;

    // NOTE: the stacks below use Tanh rather than ReLU on purpose: central
    // finite differences are only valid for (locally) smooth losses, and a
    // perturbation of ±ε across a ReLU kink or a MaxPool argmax flip shows
    // up as a large *apparent* error even when backprop is exact. MaxPool
    // itself is safe here because random normal activations are almost
    // never within ε of an argmax tie.

    fn batch(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        let mut x = Matrix::zeros(rows, cols);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        x
    }

    #[test]
    fn dense_tanh_stack_gradients() {
        let mut rng = Rng::new(1);
        let mut m = Sequential::new("gc-dense", 6)
            .push(Dense::new(6, 10, Init::GlorotUniform, &mut rng))
            .push(Tanh::new())
            .push(Dense::new(10, 4, Init::GlorotUniform, &mut rng));
        let x = batch(&mut rng, 5, 6);
        let labels = vec![0, 1, 2, 3, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "max relative error {} too large",
            report.max_rel_err
        );
    }

    #[test]
    fn conv_pool_stack_gradients() {
        let mut rng = Rng::new(2);
        let in_shape = Shape3::new(1, 6, 6);
        let conv = Conv2d::new(in_shape, 3, 3, 1, Init::HeNormal, &mut rng);
        let pool = MaxPool2d::new(conv.out_shape(), 2);
        let flat = pool.out_shape().len();
        let mut m = Sequential::new("gc-conv", in_shape.len())
            .push(conv)
            .push(pool)
            .push(Tanh::new())
            .push(Dense::new(flat, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 3, in_shape.len());
        let labels = vec![0, 1, 2];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        // MaxPool makes the loss piecewise-smooth in the conv weights: a
        // conv-weight perturbation shifts whole feature maps and can flip a
        // pool argmax, so a few coordinates legitimately disagree with the
        // probe. Require the overwhelming majority to match tightly and the
        // outliers to be sparse.
        assert!(
            report.quantile(0.95) < 3e-2,
            "p95 relative error {} too large",
            report.quantile(0.95)
        );
        assert!(
            report.frac_above(5e-2) < 0.05,
            "too many kink outliers: {}",
            report.frac_above(5e-2)
        );
    }

    /// Dedicated check for the batched-im2col convolution: a batch large
    /// enough that every sample's column block in the shared `cols` matrix
    /// is exercised, with a smooth (Tanh) stack so central differences are
    /// valid for every coordinate.
    #[test]
    fn batched_im2col_conv_gradients() {
        let mut rng = Rng::new(7);
        let in_shape = Shape3::new(2, 5, 5);
        let conv = Conv2d::new(in_shape, 4, 3, 1, Init::HeNormal, &mut rng);
        let flat = conv.out_shape().len();
        let mut m = Sequential::new("gc-batched-conv", in_shape.len())
            .push(conv)
            .push(Tanh::new())
            .push(Dense::new(flat, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 8, in_shape.len());
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 2e-2,
            "batched conv max relative error {} too large",
            report.max_rel_err
        );
        assert!(report.checked > 200, "should cover all conv parameters");
    }

    #[test]
    fn gap_head_gradients() {
        let mut rng = Rng::new(3);
        let in_shape = Shape3::new(2, 4, 4);
        let conv = Conv2d::new(in_shape, 4, 3, 1, Init::HeNormal, &mut rng);
        let gap = GlobalAvgPool::new(conv.out_shape());
        let mut m = Sequential::new("gc-gap", in_shape.len())
            .push(conv)
            .push(Tanh::new())
            .push(gap)
            .push(Dense::new(4, 3, Init::HeNormal, &mut rng));
        let x = batch(&mut rng, 2, in_shape.len());
        let labels = vec![2, 0];
        let report = check_param_gradients(&mut m, &x, &labels, 1e-2, 1);
        assert!(
            report.max_rel_err < 3e-2,
            "max relative error {} too large",
            report.max_rel_err
        );
    }
}
