//! The [`Sequential`] model container and its flat-parameter API.

use crate::layer::{Layer, Shape3};
use crate::loss::{argmax, SoftmaxCrossEntropy};
use fda_tensor::Matrix;

/// A feed-forward stack of layers with a single flat-parameter view.
///
/// Built with [`Sequential::new`] + [`Sequential::push`]; wiring is
/// validated eagerly (each layer's expected input width must match the
/// previous layer's output width).
///
/// # Activation layout
///
/// The public API is **sample-major**: batches arrive as `batch × features`
/// rows, logits leave the same way. When the stack opens with a spatial
/// layer (conv/pool — detected via [`Layer::in_shape3`] on the first
/// `push`), the model's *native* input layout is **channel-major**
/// (`c × batch·spatial`): [`Sequential::forward`] converts once at entry
/// (for single-channel inputs this is a zero-cost reshape of the clone it
/// performed anyway), and the conv stack runs channel-major until a
/// [`crate::dense::Flatten`] / [`crate::pool::GlobalAvgPool`] converts
/// back. Hot callers that can produce channel-major batches directly (see
/// `fda_data::Dataset::gather_channel_major`) skip even that by using
/// [`Sequential::forward_native`] / [`Sequential::compute_gradients_native`],
/// which also take the batch by value instead of cloning.
pub struct Sequential {
    in_dim: usize,
    out_dim: usize,
    /// `Some` iff the first layer consumes channel-major activations; the
    /// model input is converted at entry in that case.
    input_shape: Option<Shape3>,
    layers: Vec<Box<dyn Layer>>,
    name: String,
}

impl Sequential {
    /// Creates an empty model that accepts `in_dim` features per sample.
    pub fn new(name: impl Into<String>, in_dim: usize) -> Self {
        Sequential {
            in_dim,
            out_dim: in_dim,
            input_shape: None,
            layers: Vec::new(),
            name: name.into(),
        }
    }

    /// Appends a layer, validating that its expected input width matches.
    ///
    /// # Panics
    /// Panics (inside the layer's `out_dim`) if the wiring is inconsistent.
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.out_dim = layer.out_dim(self.out_dim);
        if self.layers.is_empty() {
            self.input_shape = layer.in_shape3();
        }
        self.layers.push(Box::new(layer));
        self
    }

    /// The spatial input shape, `Some` iff this model's native input layout
    /// is channel-major (its first layer is a conv/pool layer).
    pub fn input_shape(&self) -> Option<Shape3> {
        self.input_shape
    }

    /// Converts a sample-major batch into this model's native input layout
    /// (allocating — the hot path hands [`Sequential::forward_native`] an
    /// owned batch instead).
    fn native_input(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "model: input width mismatch");
        match self.input_shape {
            Some(s) => x.to_channel_major(s.c),
            None => x.clone(),
        }
    }

    /// Model name (zoo identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width (number of classes for classifiers).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters `d`.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass through every layer (sample-major input batch; the
    /// entry conversion to the native layout happens here if needed).
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let h = self.native_input(x);
        self.forward_native(h, train)
    }

    /// Forward pass over a batch **already in this model's native input
    /// layout** (channel-major `c × batch·spatial` when
    /// [`Sequential::input_shape`] is `Some`, sample-major rows otherwise).
    /// Takes the batch by value — no clone, no conversion; this is the hot
    /// training-loop entry.
    ///
    /// # Panics
    /// Panics if the batch does not match the native layout.
    pub fn forward_native(&mut self, x: Matrix, train: bool) -> Matrix {
        match self.input_shape {
            Some(s) => {
                let _ = s.batch_of(&x, "model native input");
            }
            None => assert_eq!(x.cols(), self.in_dim, "model: input width mismatch"),
        }
        let mut h = x;
        for layer in &mut self.layers {
            h = layer.forward(h, train);
        }
        h
    }

    /// Backward pass; parameter gradients accumulate inside the layers.
    ///
    /// The returned input gradient is in the model's **native** input
    /// layout (channel-major for spatial models).
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut g = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(g);
        }
        g
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Copies the flat parameter vector into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != self.param_count()`.
    pub fn copy_params_to(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.param_count(),
            "copy_params_to: size mismatch"
        );
        let mut off = 0;
        for layer in &self.layers {
            for p in layer.params() {
                out[off..off + p.len()].copy_from_slice(p);
                off += p.len();
            }
        }
    }

    /// Returns the flat parameter vector (allocating).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count()];
        self.copy_params_to(&mut out);
        out
    }

    /// Loads a flat parameter vector into the layers.
    ///
    /// # Panics
    /// Panics if `src.len() != self.param_count()`.
    pub fn load_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.param_count(), "load_params: size mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.copy_from_slice(&src[off..off + p.len()]);
                off += p.len();
            }
        }
    }

    /// Copies the flat gradient vector into `out` (same layout as params).
    pub fn copy_grads_to(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.param_count(),
            "copy_grads_to: size mismatch"
        );
        let mut off = 0;
        for layer in &self.layers {
            for g in layer.grads() {
                out[off..off + g.len()].copy_from_slice(g);
                off += g.len();
            }
        }
    }

    /// Returns the flat gradient vector (allocating).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count()];
        self.copy_grads_to(&mut out);
        out
    }

    /// One supervised step's worth of gradients: forward in train mode,
    /// softmax-CE loss, backward. Gradients are zeroed first, so after this
    /// call the layers hold exactly this batch's gradient.
    ///
    /// Returns `(mean loss, #correct)`.
    pub fn compute_gradients(&mut self, x: &Matrix, labels: &[usize]) -> (f32, usize) {
        let native = self.native_input(x);
        self.compute_gradients_native(native, labels)
    }

    /// [`Sequential::compute_gradients`] over a batch already in the native
    /// input layout, taken by value (the hot training-loop entry — no
    /// clone, no layout conversion).
    pub fn compute_gradients_native(&mut self, x: Matrix, labels: &[usize]) -> (f32, usize) {
        self.zero_grads();
        let logits = self.forward_native(x, true);
        let (loss, dlogits, correct) = SoftmaxCrossEntropy.forward(&logits, labels);
        let _ = self.backward(&dlogits);
        (loss, correct)
    }

    /// Like [`Sequential::compute_gradients`] but with training-only
    /// stochasticity disabled: the forward pass runs in **eval** mode, so
    /// dropout is the identity. The gradient checker uses this so the
    /// analytic gradients and the finite-difference probes (which evaluate
    /// the eval-mode loss) measure the same deterministic function.
    pub fn compute_gradients_eval(&mut self, x: &Matrix, labels: &[usize]) -> (f32, usize) {
        self.zero_grads();
        let logits = self.forward(x, false);
        let (loss, dlogits, correct) = SoftmaxCrossEntropy.forward(&logits, labels);
        let _ = self.backward(&dlogits);
        (loss, correct)
    }

    /// Evaluates mean loss and accuracy on a labelled set (eval mode).
    pub fn evaluate(&mut self, x: &Matrix, labels: &[usize]) -> (f32, f32) {
        let logits = self.forward(x, false);
        let (loss, _, correct) = SoftmaxCrossEntropy.forward(&logits, labels);
        (loss, correct as f32 / labels.len() as f32)
    }

    /// Evaluates accuracy in mini-batches (bounds peak memory on big sets).
    pub fn evaluate_batched(&mut self, x: &Matrix, labels: &[usize], batch: usize) -> f32 {
        assert!(batch > 0, "evaluate_batched: batch must be positive");
        assert_eq!(x.rows(), labels.len(), "evaluate_batched: size mismatch");
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < x.rows() {
            let end = (start + batch).min(x.rows());
            let mut xb = Matrix::zeros(end - start, x.cols());
            for (i, r) in (start..end).enumerate() {
                xb.row_mut(i).copy_from_slice(x.row(r));
            }
            let logits = self.forward(&xb, false);
            for (i, r) in (start..end).enumerate() {
                if argmax(logits.row(i)) == labels[r] {
                    correct += 1;
                }
            }
            start = end;
        }
        correct as f32 / labels.len() as f32
    }

    /// Predicted class per row (eval mode).
    pub fn predict(&mut self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x, false);
        (0..logits.rows()).map(|r| argmax(logits.row(r))).collect()
    }

    /// A human-readable per-layer summary (name and parameter count).
    pub fn summary(&self) -> String {
        let mut s = format!("{} (d = {} params)\n", self.name, self.param_count());
        for (i, layer) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "  {:2}: {:<16} {:>8} params\n",
                i,
                layer.name(),
                layer.param_count()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use crate::init::Init;
    use fda_tensor::Rng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        Sequential::new("tiny", 4)
            .push(Dense::new(4, 8, Init::GlorotUniform, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 3, Init::GlorotUniform, &mut rng))
    }

    #[test]
    fn param_roundtrip() {
        let mut m = tiny_mlp(1);
        let flat = m.params_flat();
        assert_eq!(flat.len(), m.param_count());
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut perturbed = flat.clone();
        for v in &mut perturbed {
            *v += 1.0;
        }
        m.load_params(&perturbed);
        assert_eq!(m.params_flat(), perturbed);
        m.load_params(&flat);
        assert_eq!(m.params_flat(), flat);
    }

    #[test]
    fn identical_seeds_identical_models() {
        let a = tiny_mlp(9).params_flat();
        let b = tiny_mlp(9).params_flat();
        assert_eq!(a, b, "same seed must give identical initialization");
    }

    #[test]
    fn gradient_layout_matches_params() {
        let mut m = tiny_mlp(2);
        let x = Matrix::from_vec(2, 4, vec![0.1; 8]);
        let (_, _) = m.compute_gradients(&x, &[0, 1]);
        let g = m.grads_flat();
        assert_eq!(g.len(), m.param_count());
        assert!(g.iter().any(|&v| v != 0.0), "gradients should be nonzero");
    }

    #[test]
    fn compute_gradients_zeroes_previous() {
        let mut m = tiny_mlp(3);
        let x = Matrix::from_vec(1, 4, vec![1.0; 4]);
        let _ = m.compute_gradients(&x, &[0]);
        let g1 = m.grads_flat();
        let _ = m.compute_gradients(&x, &[0]);
        let g2 = m.grads_flat();
        for (a, b) in g1.iter().zip(&g2) {
            assert!(
                (a - b).abs() < 1e-6,
                "gradients must not accumulate across calls"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let mut m = tiny_mlp(4);
        let x = Matrix::from_vec(
            4,
            4,
            vec![
                1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0,
            ],
        );
        let labels = vec![0, 1, 2, 0];
        let (loss0, _) = m.compute_gradients(&x, &labels);
        // Plain gradient descent for a few steps.
        for _ in 0..200 {
            let (_, _) = m.compute_gradients(&x, &labels);
            let g = m.grads_flat();
            let mut p = m.params_flat();
            for (pv, gv) in p.iter_mut().zip(&g) {
                *pv -= 0.5 * gv;
            }
            m.load_params(&p);
        }
        let (loss1, _) = m.compute_gradients(&x, &labels);
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1} should shrink");
    }

    #[test]
    fn evaluate_batched_matches_full() {
        let mut m = tiny_mlp(5);
        let mut rng = Rng::new(77);
        let mut x = Matrix::zeros(10, 4);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let (_, acc_full) = m.evaluate(&x, &labels);
        let acc_batched = m.evaluate_batched(&x, &labels, 3);
        assert!((acc_full - acc_batched).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let mut m = tiny_mlp(6);
        let _ = m.forward(&Matrix::zeros(1, 5), false);
    }
}
