//! Inverted dropout.
//!
//! The paper adds dropout at rate 0.2 to the DenseNet models (§4.1). We use
//! inverted dropout (scaling by `1/(1−p)` at train time) so evaluation is a
//! no-op. Each `Dropout` owns its RNG stream: workers clone a model template
//! and then reseed via [`Dropout::reseed`] so their masks are independent
//! but reproducible.

use crate::layer::Layer;
use fda_tensor::{Matrix, Rng};

/// Inverted dropout with drop probability `p`.
pub struct Dropout {
    p: f32,
    rng: Rng,
    // Scale applied to kept units (cached per forward for backward).
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        Dropout {
            p,
            rng: Rng::new(seed),
            mask: Vec::new(),
        }
    }

    /// Re-seeds the internal RNG (used when cloning per-worker models).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Rng::new(seed);
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, mut x: Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            self.mask.clear();
            self.mask.resize(x.len(), 1.0);
            return x;
        }
        let keep = 1.0 - self.p;
        let inv_keep = 1.0 / keep;
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.as_mut_slice() {
            let scale = if self.rng.bernoulli(keep as f64) {
                inv_keep
            } else {
                0.0
            };
            self.mask.push(scale);
            *v *= scale;
        }
        x
    }

    fn backward(&mut self, dy: Matrix) -> Matrix {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "dropout: backward without matching forward"
        );
        let mut dx = dy;
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut layer = Dropout::new(0.5, 42);
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = layer.forward(x.clone(), false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_zeroes_and_scales() {
        let mut layer = Dropout::new(0.5, 7);
        let x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let y = layer.forward(x.clone(), true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + kept, 1000, "outputs are either 0 or 1/(1-p)");
        assert!(zeros > 350 && zeros < 650, "drop rate should be near 0.5");
    }

    #[test]
    fn expected_value_preserved() {
        let mut layer = Dropout::new(0.2, 11);
        let x = Matrix::from_vec(1, 20_000, vec![1.0; 20_000]);
        let y = layer.forward(x.clone(), true);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps E[y]=x");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut layer = Dropout::new(0.5, 3);
        let x = Matrix::from_vec(1, 100, vec![1.0; 100]);
        let y = layer.forward(x.clone(), true);
        let dy = Matrix::from_vec(1, 100, vec![1.0; 100]);
        let dx = layer.backward(dy);
        assert_eq!(y.as_slice(), dx.as_slice(), "mask shared by fwd/bwd");
    }

    #[test]
    fn zero_rate_is_identity_even_in_train() {
        let mut layer = Dropout::new(0.0, 5);
        let x = Matrix::from_vec(1, 8, (0..8).map(|i| i as f32).collect());
        let y = layer.forward(x.clone(), true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
