//! Weight initializers.
//!
//! The paper specifies Glorot uniform for LeNet-5 / VGG16* and He normal
//! for the DenseNets (§4.1 "Datasets & Models"). Both are implemented here
//! and selected per-model in the [`crate::zoo`].

use fda_tensor::Rng;

/// Which initialization family to use for a model's weight tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot (Xavier) uniform: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
    GlorotUniform,
    /// He normal: `N(0, √(2/fan_in))`.
    HeNormal,
}

impl Init {
    /// Fills `w` according to the scheme given fan-in and fan-out.
    pub fn fill(self, w: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut Rng) {
        match self {
            Init::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                rng.fill_uniform(w, -limit, limit);
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                rng.fill_normal(w, 0.0, std);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_limits() {
        let mut rng = Rng::new(1);
        let mut w = vec![0.0f32; 10_000];
        Init::GlorotUniform.fill(&mut w, 100, 200, &mut rng);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(w.iter().all(|&x| x > -limit && x < limit));
        // Mean should be near zero.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < limit / 10.0);
    }

    #[test]
    fn he_normal_std() {
        let mut rng = Rng::new(2);
        let mut w = vec![0.0f32; 100_000];
        Init::HeNormal.fill(&mut w, 50, 10, &mut rng);
        let expected_std = (2.0f32 / 50.0).sqrt();
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - expected_std).abs() < 0.01);
    }
}
