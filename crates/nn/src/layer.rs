//! The [`Layer`] trait and shape metadata.
//!
//! Activations flow between layers as a row-major [`Matrix`] whose rows are
//! samples and whose columns are the flattened feature dimensions
//! (`channels × height × width` for convolutional tensors). Layers that
//! care about the spatial structure ([`crate::conv::Conv2d`],
//! [`crate::pool::MaxPool2d`]) carry a [`Shape3`] fixed at construction.

use fda_tensor::Matrix;

/// A `channels × height × width` activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape3 {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Shape3 { c, h, w }
    }

    /// Flattened length `c·h·w`.
    pub const fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True iff any dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A differentiable network layer.
///
/// The contract mirrors classic define-by-layer backprop:
///
/// 1. `forward(x, train)` computes outputs and caches whatever the backward
///    pass needs (inputs, masks, argmaxes).
/// 2. `backward(dy)` consumes the most recent cache, **accumulates**
///    parameter gradients internally, and returns `dL/dx`.
/// 3. Parameter and gradient storage is exposed as ordered lists of flat
///    slices so a [`crate::model::Sequential`] can present one flat vector.
///
/// Activations are passed **by value**: element-wise layers (ReLU, dropout)
/// transform their input in place and return the same allocation, and
/// layers that must cache their input (dense) take ownership instead of
/// cloning — the hot training loop performs no avoidable `O(batch·features)`
/// allocation between layers.
///
/// `backward` must be preceded by a `forward` on the same input batch;
/// implementations may panic otherwise.
pub trait Layer: Send {
    /// Human-readable layer name (used in model summaries).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables training-only behaviour (dropout).
    fn forward(&mut self, x: Matrix, train: bool) -> Matrix;

    /// Backward pass: returns the gradient w.r.t. the layer input and
    /// accumulates parameter gradients.
    fn backward(&mut self, dy: Matrix) -> Matrix;

    /// Number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Ordered immutable views of the parameter tensors.
    fn params(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Ordered mutable views of the parameter tensors (same order as
    /// [`Layer::params`]).
    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Ordered immutable views of the accumulated gradients (same order and
    /// shapes as [`Layer::params`]).
    fn grads(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Resets the accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Output feature dimension given the (already validated) input width.
    fn out_dim(&self, in_dim: usize) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape3_len() {
        let s = Shape3::new(3, 8, 8);
        assert_eq!(s.len(), 192);
        assert!(!s.is_empty());
        assert!(Shape3::new(0, 4, 4).is_empty());
    }
}
