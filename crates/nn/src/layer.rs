//! The [`Layer`] trait and shape metadata.
//!
//! Activations flow between layers as a row-major [`Matrix`] in one of two
//! layouts:
//!
//! * **sample-major** — rows are samples, columns the flattened feature
//!   dimensions ordered `(channel, y, x)`. This is the layout of datasets,
//!   dense stacks, logits, and the model's public API.
//! * **channel-major** — rows are channels, columns are `batch·spatial`
//!   grouped into per-sample blocks (`col = sample·spatial + y·w + x`).
//!   This is the layout the im2col GEMM produces (`out_c × batch·spatial`),
//!   so the conv stack ([`crate::conv::Conv2d`],
//!   [`crate::pool::MaxPool2d`]) runs on it end-to-end with no per-layer
//!   gather/scatter staging.
//!
//! The layout boundary is explicit: [`crate::model::Sequential`] converts
//! the sample-major input batch once at entry when the stack opens with a
//! spatial layer (see [`Layer::in_shape3`]), and [`crate::dense::Flatten`]
//! (or [`crate::pool::GlobalAvgPool`], which collapses the spatial
//! dimensions itself) converts back exactly once at the conv→dense
//! boundary. Element-wise layers (ReLU, tanh, dropout) are layout-agnostic.
//! Layers that care about the spatial structure carry a [`Shape3`] fixed at
//! construction and assert the incoming activation shape, so a wiring
//! mistake fails loudly instead of silently rearranging features.

use fda_tensor::Matrix;

/// A `channels × height × width` activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape3 {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Shape3 { c, h, w }
    }

    /// Flattened length `c·h·w`.
    pub const fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Spatial plane size `h·w` (the per-sample block width of a
    /// channel-major activation row).
    pub const fn spatial(&self) -> usize {
        self.h * self.w
    }

    /// Validates that `x` is a channel-major activation batch of this shape
    /// (`rows == c`, width a whole number of `spatial` blocks) and returns
    /// the batch size. The single home of the layout check every spatial
    /// layer performs on entry; `ctx` names the layer for the panic
    /// message.
    ///
    /// # Panics
    /// Panics with a named layout mismatch otherwise.
    pub fn batch_of(&self, x: &Matrix, ctx: &str) -> usize {
        assert_eq!(
            x.rows(),
            self.c,
            "{ctx}: not channel-major for {self:?} (rows = {}, want c = {})",
            x.rows(),
            self.c
        );
        let spatial = self.spatial();
        assert_eq!(
            x.cols() % spatial,
            0,
            "{ctx}: width {} is not a multiple of spatial {spatial}",
            x.cols()
        );
        x.cols() / spatial
    }

    /// True iff any dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A differentiable network layer.
///
/// The contract mirrors classic define-by-layer backprop:
///
/// 1. `forward(x, train)` computes outputs and caches whatever the backward
///    pass needs (inputs, masks, argmaxes).
/// 2. `backward(dy)` consumes the most recent cache, **accumulates**
///    parameter gradients internally, and returns `dL/dx`.
/// 3. Parameter and gradient storage is exposed as ordered lists of flat
///    slices so a [`crate::model::Sequential`] can present one flat vector.
///
/// Activations are passed **by value**: element-wise layers (ReLU, dropout)
/// transform their input in place and return the same allocation, and
/// layers that must cache their input (dense) take ownership instead of
/// cloning — the hot training loop performs no avoidable `O(batch·features)`
/// allocation between layers.
///
/// `backward` must be preceded by a `forward` on the same input batch;
/// implementations may panic otherwise.
pub trait Layer: Send {
    /// Human-readable layer name (used in model summaries).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables training-only behaviour (dropout).
    fn forward(&mut self, x: Matrix, train: bool) -> Matrix;

    /// Backward pass: returns the gradient w.r.t. the layer input and
    /// accumulates parameter gradients.
    fn backward(&mut self, dy: Matrix) -> Matrix;

    /// Number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        0
    }

    /// Ordered immutable views of the parameter tensors.
    fn params(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Ordered mutable views of the parameter tensors (same order as
    /// [`Layer::params`]).
    fn params_mut(&mut self) -> Vec<&mut [f32]> {
        Vec::new()
    }

    /// Ordered immutable views of the accumulated gradients (same order and
    /// shapes as [`Layer::params`]).
    fn grads(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Resets the accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Output feature dimension given the (already validated) input width.
    ///
    /// Widths are always **logical per-sample feature counts** (`c·h·w`),
    /// independent of the activation layout, so wiring validation in
    /// [`crate::model::Sequential::push`] is layout-blind.
    fn out_dim(&self, in_dim: usize) -> usize;

    /// The spatial input shape this layer expects, if it consumes
    /// channel-major activations (`Some` for conv/pool layers, `None` for
    /// dense/element-wise layers).
    ///
    /// [`crate::model::Sequential`] reads this off the **first** layer to
    /// decide whether the model's input batch must be converted to
    /// channel-major at entry.
    fn in_shape3(&self) -> Option<Shape3> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape3_len() {
        let s = Shape3::new(3, 8, 8);
        assert_eq!(s.len(), 192);
        assert!(!s.is_empty());
        assert!(Shape3::new(0, 4, 4).is_empty());
    }
}
