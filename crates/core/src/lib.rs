//! # fda-core — Federated Dynamic Averaging
//!
//! The paper's contribution: a distributed deep-learning strategy that
//! triggers the expensive model synchronization **dynamically**, based on a
//! communication-efficient over-estimate of the *model variance*
//!
//! ```text
//! Var(w_t) = (1/K) Σ_k ‖u_t^(k)‖²  −  ‖ū_t‖²,    u_t^(k) = w_t^(k) − w_t0
//! ```
//!
//! (Eq. 4 of the paper). Each training step every worker ships a tiny
//! *local state* `S_t^(k)`; an AllReduce produces the average state `S̄_t`;
//! a variant-specific function `H(S̄_t)` over-estimates `Var(w_t)`; models
//! are synchronized only when `H(S̄_t) > Θ` — otherwise the Round Invariant
//! `Var(w_t) ≤ Θ` is certified (deterministically for
//! [`monitor::LinearMonitor`], with probability ≥ 1 − δ for
//! [`monitor::SketchMonitor`]).
//!
//! ## Layout
//!
//! * [`cluster`] — K simulated workers (model, optimizer, shard sampler)
//!   over a byte-accounted [`fda_comm::SimNetwork`].
//! * [`pool`] — the persistent rendezvous worker pool behind
//!   [`cluster::ClusterConfig::parallel`]: spawn-once lanes serving every
//!   phase of the step (local training, monitor states, reductions).
//! * [`monitor`] — the three variance monitors (Sketch / Linear / Exact
//!   oracle) and the local-state algebra.
//! * [`fda`] — Algorithm 1: the [`fda::Fda`] strategy.
//! * [`baselines`] — Synchronous (BSP), Local-SGD(τ), FedAvg / FedAvgM /
//!   FedAdam (FedOpt with server optimizers).
//! * [`strategy`] — the common [`strategy::Strategy`] trait the harness
//!   drives.
//! * [`harness`] — training runs to an accuracy target, producing the
//!   paper's two metrics (communication bytes, in-parallel steps).
//! * [`theta`] — the Θ ≈ c·d guideline (Figure 12) and calibration sweeps.
//! * [`experiments`] — the Table 2 experiment grid.
//! * [`sweeps`] — (K, Θ) grid runners behind Figures 3–6 and 8–11.
//! * [`async_fda`] — the coordinator-based asynchronous variant sketched
//!   in §3.3.

pub mod adaptive;
pub mod async_fda;
pub mod baselines;
pub mod cluster;
pub mod experiments;
pub mod fda;
pub mod harness;
pub mod monitor;
pub mod pool;
pub mod strategy;
pub mod sweeps;
pub mod theta;
pub mod threaded;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use fda::{Fda, FdaConfig, FdaVariant};
pub use harness::{RunConfig, RunResult};
pub use monitor::{ExactMonitor, LinearMonitor, SketchMonitor, VarianceMonitor};
pub use pool::WorkerPool;
pub use strategy::Strategy;
