//! Choosing the variance threshold Θ (§4.3, Figure 12).
//!
//! The paper's guidance: workable Θ values live in a range proportional to
//! the model dimension `d`, and the best point in that range depends on the
//! deployment — bandwidth-starved federated settings favour larger Θ
//! (fewer syncs), bandwidth-rich HPC favours smaller Θ (faster
//! convergence). Their empirical fits:
//!
//! ```text
//! Θ_FL  = 4.91e-5 · d      (0.5 Gbps shared channel)
//! Θ_B   = 3.89e-5 · d      (balanced)
//! Θ_HPC = 2.74e-5 · d      (ARIS InfiniBand)
//! ```
//!
//! Our substrate is a scaled simulator, so the absolute constants differ;
//! [`calibrate`] recomputes them by sweeping Θ and minimizing modelled
//! wall-time under each [`Environment`]. The *ordering*
//! `c_FL > c_B > c_HPC` is the shape the reproduction must preserve.

use crate::harness::{run_to_target, RunConfig, RunResult};
use crate::sweeps::Algo;
use fda_comm::Environment;
use fda_data::TaskData;

/// The paper's fitted slope for an environment name (Figure 12).
///
/// # Panics
/// Panics on an unknown environment name.
pub fn paper_slope(env_name: &str) -> f64 {
    match env_name {
        "FL" => 4.91e-5,
        "Balanced" => 3.89e-5,
        "ARIS-HPC" => 2.74e-5,
        other => panic!("no paper slope for environment {other}"),
    }
}

/// The paper's Θ guideline for a model with `d` parameters.
pub fn paper_theta(env: &Environment, d: usize) -> f64 {
    paper_slope(env.name) * d as f64
}

/// Result of one Θ calibration point.
#[derive(Debug, Clone)]
pub struct ThetaPoint {
    /// The threshold swept.
    pub theta: f32,
    /// The training run at that threshold.
    pub result: RunResult,
    /// Modelled wall-time under the calibration environment (seconds).
    pub wall_time: f64,
}

/// Sweeps Θ for one FDA variant and returns the per-Θ outcomes with
/// modelled wall-times; the minimizer is the environment's workable Θ*.
///
/// Runs that fail to reach the target get infinite wall-time (the paper
/// notes Θ beyond the workable range leads to non-convergence).
pub fn calibrate(
    algo: Algo,
    thetas: &[f32],
    env: &Environment,
    make_strategy: &mut dyn FnMut(Algo, f32) -> Box<dyn crate::strategy::Strategy>,
    task: &TaskData,
    run_cfg: &RunConfig,
) -> Vec<ThetaPoint> {
    let mut out = Vec::with_capacity(thetas.len());
    for &theta in thetas {
        let mut strategy = make_strategy(algo, theta);
        let result = run_to_target(strategy.as_mut(), task, run_cfg);
        let k = strategy.cluster().workers().max(1) as u64;
        let per_worker_bytes = result.comm_bytes / k;
        let messages = result.steps + result.syncs; // state + model rounds
        let wall_time = if result.reached {
            env.wall_time(per_worker_bytes, result.steps, messages)
        } else {
            f64::INFINITY
        };
        out.push(ThetaPoint {
            theta,
            result,
            wall_time,
        });
    }
    out
}

/// The Θ with minimal modelled wall-time among reached runs, if any.
pub fn best_theta(points: &[ThetaPoint]) -> Option<f32> {
    points
        .iter()
        .filter(|p| p.wall_time.is_finite())
        .min_by(|a, b| a.wall_time.partial_cmp(&b.wall_time).expect("no NaN"))
        .map(|p| p.theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slopes_ordered_fl_highest() {
        let fl = paper_slope("FL");
        let b = paper_slope("Balanced");
        let hpc = paper_slope("ARIS-HPC");
        assert!(fl > b && b > hpc, "paper ordering c_FL > c_B > c_HPC");
    }

    #[test]
    fn paper_theta_scales_linearly_in_d() {
        let env = Environment::fl();
        assert!((paper_theta(&env, 2_000_000) / paper_theta(&env, 1_000_000) - 2.0).abs() < 1e-9);
        // Spot value from the paper: Θ_FL for DenseNet201 (18M) ≈ 884.
        let theta = paper_theta(&env, 18_000_000);
        assert!((theta - 883.8).abs() < 1.0, "got {theta}");
    }

    #[test]
    #[should_panic(expected = "no paper slope")]
    fn unknown_environment_panics() {
        let _ = paper_slope("moon-base");
    }

    #[test]
    fn best_theta_ignores_unreached() {
        use crate::harness::RunResult;
        let mk = |theta: f32, reached: bool, wall: f64| ThetaPoint {
            theta,
            wall_time: if reached { wall } else { f64::INFINITY },
            result: RunResult {
                strategy: "t".into(),
                reached,
                steps: 0,
                comm_bytes: 0,
                syncs: 0,
                best_test_acc: 0.0,
                trace: vec![],
            },
        };
        let points = vec![
            mk(0.1, true, 10.0),
            mk(1.0, true, 5.0),
            mk(10.0, false, 0.0),
        ];
        assert_eq!(best_theta(&points), Some(1.0));
        assert_eq!(best_theta(&[mk(1.0, false, 0.0)]), None);
    }
}
