//! The persistent worker pool: spawn-once threads with a per-step
//! rendezvous.
//!
//! PR 1 ran the parallel local-step phase with `std::thread::scope`, which
//! spawns and joins `K` OS threads **every step** — ~K·50 µs of kernel work
//! that dwarfs a ~2 ms LeNet step and contributes nothing. A [`WorkerPool`]
//! spawns its lanes once (when the `Cluster` is built) and thereafter each
//! phase is a rendezvous: the dispatching thread publishes a job, every
//! lane runs it with its lane index, and the dispatcher blocks until all
//! lanes have finished. The pool serves every phase of the FDA step —
//! local training, drift/monitor-state construction, the chunked state
//! reduction, and the full-model AllReduce — as well as the baselines,
//! which drive the same cluster primitives.
//!
//! ## Rendezvous protocol
//!
//! A generation counter under one mutex plays the barrier:
//!
//! 1. [`WorkerPool::run`] stores the job pointer, bumps the generation and
//!    wakes all lanes;
//! 2. the calling thread itself executes lane 0 (no wakeup latency for the
//!    first lane, and `K`-way parallelism from `K − 1` spawned threads);
//! 3. each spawned lane runs the job with its fixed lane id, decrements the
//!    outstanding count, and goes back to waiting for the next generation;
//! 4. `run` returns once the count reaches zero — only then may the job's
//!    borrows expire, which is what makes the lifetime erasure below sound.
//!
//! Lanes never hold the lock while running a job, so lanes execute
//! concurrently; the mutex only sequences the (tiny) rendezvous edges.
//!
//! ## Shutdown
//!
//! Dropping the pool flips a shutdown flag, wakes every lane and joins the
//! threads — the spawn-once lifecycle is tied to the owning `Cluster`, so
//! no thread outlives the workers it manipulates.
//!
//! ## Determinism
//!
//! The pool itself imposes no ordering on job execution; determinism is the
//! *callers'* obligation: every job writes only lane-private slots (worker
//! models, per-lane result cells, disjoint chunks of a shared buffer), and
//! reductions happen afterwards in a fixed order on the dispatching thread.
//! See `Cluster::local_step` and `Fda::step` for the bit-identical-to-
//! sequential argument.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lane job: called once per lane with the lane index in `0..lanes`.
/// The lifetime parameter lets jobs borrow from the dispatcher's stack —
/// the rendezvous guarantees those borrows outlive every lane's call.
type Job<'a> = dyn Fn(usize) + Sync + 'a;

/// The type-erased job pointer parked in the shared slot. Lifetime-erased;
/// validity is guaranteed by the rendezvous (the dispatcher outlives the
/// round).
struct JobPtr(*const Job<'static>);
// SAFETY: the pointer is only dereferenced between the generation bump and
// the outstanding-count reaching zero, an interval during which `run`
// keeps the referent alive (it blocks before returning or unwinding).
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    generation: u64,
    /// Spawned lanes still running the current generation's job.
    outstanding: usize,
    /// A lane's job panicked this generation; re-raised by `run`.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Lanes wait here for a new generation.
    work_cv: Condvar,
    /// The dispatcher waits here for `outstanding == 0`.
    done_cv: Condvar,
}

/// A persistent pool of `lanes` rendezvous workers (see module docs).
pub struct WorkerPool {
    lanes: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    rounds: std::sync::atomic::AtomicU64,
}

impl WorkerPool {
    /// Creates a pool with `lanes` lanes, spawning `lanes − 1` OS threads
    /// (the dispatching thread runs lane 0 itself during [`WorkerPool::run`]).
    ///
    /// # Panics
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> WorkerPool {
        assert!(lanes >= 1, "worker pool: need at least one lane");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                outstanding: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fda-pool-{lane}"))
                    .spawn(move || lane_loop(&shared, lane))
                    .expect("worker pool: spawn failed")
            })
            .collect();
        WorkerPool {
            lanes,
            shared,
            handles,
            rounds: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of lanes (one per cluster worker).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Rendezvous rounds dispatched so far (telemetry/tests).
    pub fn rounds(&self) -> u64 {
        self.rounds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs `job` once per lane — lane 0 on the calling thread, the rest on
    /// the pool threads — and returns when **all** lanes have finished.
    ///
    /// The job must confine each lane to lane-private data (its own worker,
    /// its own result slot, its own chunk of a shared buffer); the pool
    /// provides the synchronization, the caller provides the disjointness.
    ///
    /// Takes `&mut self` so overlapping dispatches are unrepresentable in
    /// safe code: the job pointer is lifetime-erased, and a second dispatch
    /// racing the first could otherwise let a lane run a job whose borrows
    /// had already expired.
    ///
    /// # Panics
    /// Re-raises a panic from any lane after the rendezvous completes (the
    /// pool stays usable afterwards).
    pub fn run(&mut self, job: &Job<'_>) {
        self.rounds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.handles.is_empty() {
            for lane in 0..self.lanes {
                job(lane);
            }
            return;
        }
        // SAFETY: lifetime erasure only — `run` blocks until every lane
        // has finished the job and the slot is cleared, so no lane touches
        // the pointer after `job`'s real lifetime ends.
        let erased: &Job<'static> = unsafe { std::mem::transmute::<&Job<'_>, &Job<'static>>(job) };
        {
            let mut s = self.shared.state.lock().expect("pool lock poisoned");
            debug_assert_eq!(s.outstanding, 0, "pool: overlapping dispatch");
            s.job = Some(JobPtr(erased as *const Job<'static>));
            s.generation = s.generation.wrapping_add(1);
            s.outstanding = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // Lane 0 runs on the dispatching thread. Catch its panic so the
        // rendezvous below always completes before the stack (and with it
        // the job's borrows) unwinds away — the spawned lanes may still be
        // executing the job at this point.
        let lane0 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(0)));
        let mut s = self.shared.state.lock().expect("pool lock poisoned");
        while s.outstanding > 0 {
            s = self.shared.done_cv.wait(s).expect("pool lock poisoned");
        }
        s.job = None;
        let lane_panicked = std::mem::replace(&mut s.panicked, false);
        drop(s);
        if let Err(payload) = lane0 {
            std::panic::resume_unwind(payload);
        }
        if lane_panicked {
            panic!("worker pool: a lane's job panicked");
        }
    }
}

impl WorkerPool {
    /// Chunk-parallel element-wise mean: lane `i` computes chunk `i` of
    /// `out` as the **input-order** (copy-first) mean of the corresponding
    /// chunk of every `srcs` slice — one rendezvous, bit-identical to the
    /// sequential `vector::mean_range_into(srcs, 0, n, out)` because the
    /// per-element accumulation order never depends on the chunking.
    ///
    /// This is the one shared home for the unsafe disjoint-chunk dance, so
    /// the worker-order-association argument is audited in a single place
    /// (`Cluster::allreduce_models` and `Fda::averaged_estimate` both
    /// reduce through it).
    ///
    /// # Panics
    /// Panics if `srcs` is empty or any length disagrees with `out`.
    pub fn chunked_mean(&mut self, srcs: &[&[f32]], out: &mut [f32]) {
        assert!(!srcs.is_empty(), "chunked_mean: need at least one input");
        let n = out.len();
        assert!(
            srcs.iter().all(|s| s.len() == n),
            "chunked_mean: ragged inputs"
        );
        let lanes = self.lanes;
        let base = SendPtr(out.as_mut_ptr());
        self.run(&|lane| {
            let (lo, hi) = fda_tensor::vector::chunk_range(n, lanes, lane);
            // SAFETY: chunks are disjoint per lane and cover 0..n; `srcs`
            // is read-only for the duration of the rendezvous.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            fda_tensor::vector::mean_range_into(srcs, lo, hi, chunk);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock().expect("pool lock poisoned");
            s.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn lane_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut s = shared.state.lock().expect("pool lock poisoned");
            loop {
                if s.shutdown {
                    return;
                }
                if s.generation != seen {
                    seen = s.generation;
                    break s.job.as_ref().expect("job set with generation").0;
                }
                s = shared.work_cv.wait(s).expect("pool lock poisoned");
            }
        };
        // SAFETY: see `JobPtr` — the dispatcher keeps the job alive until
        // `outstanding` returns to zero, which happens strictly after this
        // call returns (or unwinds into the catch below).
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job)(lane) }));
        let mut s = shared.state.lock().expect("pool lock poisoned");
        if result.is_err() {
            s.panicked = true;
        }
        s.outstanding -= 1;
        if s.outstanding == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A raw pointer that asserts cross-thread usability. Used by pool jobs to
/// hand each lane its own disjoint slot of a caller-owned buffer; the
/// caller is responsible for the disjointness (lane `i` touches index `i`,
/// or chunk `i`, only).
pub(crate) struct SendPtr<T>(pub *mut T);

// Manual impls: `derive` would demand `T: Copy`, but the pointer itself is
// always freely copyable.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: asserted by the constructor sites — every pool job indexes the
// pointer by lane id into non-overlapping elements/chunks, and the
// rendezvous orders all accesses before the dispatcher's next use.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_lane_runs_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let mut hits = vec![0u32; 4];
        let ptr = SendPtr(hits.as_mut_ptr());
        pool.run(&|lane| {
            // SAFETY: lane-private slot.
            unsafe { *ptr.get().add(lane) += 1 };
        });
        assert_eq!(hits, vec![1, 1, 1, 1]);
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let mut pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|lane| {
                total.fetch_add(lane + 1, Ordering::Relaxed);
            });
        }
        // 100 rounds × (1 + 2 + 3).
        assert_eq!(total.load(Ordering::Relaxed), 600);
        assert_eq!(pool.rounds(), 100);
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let ran = AtomicUsize::new(0);
        pool.run(&|lane| {
            assert_eq!(lane, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lanes_see_distinct_ids() {
        let mut pool = WorkerPool::new(7);
        let mut ids = vec![usize::MAX; 7];
        let ptr = SendPtr(ids.as_mut_ptr());
        pool.run(&|lane| {
            // SAFETY: lane-private slot.
            unsafe { *ptr.get().add(lane) = lane };
        });
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_mean_matches_sequential_bitwise() {
        let mut pool = WorkerPool::new(3);
        let srcs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..101).map(|j| ((i * 37 + j) as f32).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mut pooled = vec![0.0f32; 101];
        pool.chunked_mean(&refs, &mut pooled);
        let mut seq = vec![0.0f32; 101];
        fda_tensor::vector::mean_range_into(&refs, 0, 101, &mut seq);
        for (a, b) in pooled.iter().zip(&seq) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lane_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the dispatcher");
        // The pool must still work after a failed round.
        let ok = AtomicUsize::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }
}
