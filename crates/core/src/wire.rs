//! Wire encoding of FDA local states, model vectors, and job configs.
//!
//! The simulator usually passes [`LocalState`] values in memory and only
//! *charges* their byte size; this module provides the actual byte-level
//! encoding so that (a) the charged sizes are demonstrably achievable, and
//! (b) transport-based drivers ([`crate::threaded`], and the `fda_net` TCP
//! runtime) can ship real buffers. Hand-rolled little-endian framing —
//! the payloads are flat `f32` runs and a handful of scalars, serde would
//! be overkill.
//!
//! State layout (little endian):
//!
//! ```text
//! [ tag: u8 ] [ drift_sq_norm: f32 ]
//!   tag 0 (Linear): [ proj: f32 ]
//!   tag 1 (Sketch): [ rows: u16 ] [ cols: u16 ] [ rows·cols × f32 ]
//!   tag 2 (Exact):  [ len: u32 ]  [ len × f32 ]
//! ```
//!
//! Model/delta vectors ([`encode_vector`]) are `[ len: u32 ][ len × f32 ]`;
//! job configs ([`encode_job`]) are a versioned fixed-field frame (see
//! [`JobSpec`]). Every decoder is total: malformed, truncated, or
//! hostile-length inputs return a [`DecodeError`] — never a panic, and
//! never an allocation larger than the buffer that claims to back it.

use crate::cluster::ClusterConfig;
use crate::fda::{FdaConfig, FdaVariant};
use crate::monitor::{LocalState, StateSummary};
use fda_comm::compress::{Codec, CodecError, CodecSpec, DownlinkSpec};
use fda_data::synth::SynthSpec;
use fda_data::Partition;
use fda_nn::zoo::ModelId;
use fda_optim::OptimizerKind;
use fda_sketch::{AmsSketch, SketchConfig};

/// Version byte leading every encoded [`JobSpec`] frame.
///
/// v2: the job carries its payload codec ([`CodecSpec`]) so every process
/// of a run encodes and decodes sync payloads identically.
///
/// v3: the job carries its downlink spec ([`DownlinkSpec`]) so delta-coded
/// model broadcasts reconstruct identically on every process.
pub const JOB_WIRE_VERSION: u8 = 3;

/// Errors produced when decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the declared payload.
    Truncated,
    /// Unknown summary/enum tag byte.
    BadTag(u8),
    /// Job frame carries an unsupported version byte.
    BadVersion(u8),
    /// A field violates its invariant (bad bool byte, invalid UTF-8, …).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "wire buffer truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::Malformed(what) => write!(f, "malformed wire field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> DecodeError {
        match e {
            CodecError::Truncated => DecodeError::Truncated,
            CodecError::Malformed(what) => DecodeError::Malformed(what),
        }
    }
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn get_bytes<const N: usize>(buf: &[u8], off: &mut usize) -> Result<[u8; N], DecodeError> {
    let end = off.checked_add(N).ok_or(DecodeError::Truncated)?;
    let bytes: [u8; N] = buf
        .get(*off..end)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .expect("slice of length N");
    *off = end;
    Ok(bytes)
}

fn get_f32(buf: &[u8], off: &mut usize) -> Result<f32, DecodeError> {
    Ok(f32::from_le_bytes(get_bytes(buf, off)?))
}

fn get_u8(buf: &[u8], off: &mut usize) -> Result<u8, DecodeError> {
    Ok(u8::from_le_bytes(get_bytes(buf, off)?))
}

fn get_u16(buf: &[u8], off: &mut usize) -> Result<u16, DecodeError> {
    Ok(u16::from_le_bytes(get_bytes(buf, off)?))
}

fn get_u32(buf: &[u8], off: &mut usize) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(get_bytes(buf, off)?))
}

fn get_u64(buf: &[u8], off: &mut usize) -> Result<u64, DecodeError> {
    Ok(u64::from_le_bytes(get_bytes(buf, off)?))
}

fn get_bool(buf: &[u8], off: &mut usize) -> Result<bool, DecodeError> {
    match get_u8(buf, off)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::Malformed("bool byte must be 0 or 1")),
    }
}

/// Verifies that `count` little-endian `f32`s actually remain in the
/// buffer **before** any allocation is sized from a decoded length header
/// — a hostile `rows`/`cols`/`len` field must fail with
/// [`DecodeError::Truncated`], not trigger a multi-gigabyte allocation.
fn check_f32_run(buf: &[u8], off: usize, count: usize) -> Result<(), DecodeError> {
    let need = count.checked_mul(4).ok_or(DecodeError::Truncated)?;
    if buf.len().saturating_sub(off) < need {
        return Err(DecodeError::Truncated);
    }
    Ok(())
}

/// Encodes a local state into bytes — the dense layout, i.e.
/// [`encode_state_coded`] under the identity codec (one code path, so the
/// layouts cannot diverge).
pub fn encode_state(state: &LocalState) -> Vec<u8> {
    encode_state_coded(state, &fda_comm::compress::Dense32)
}

/// Decodes a state buffer.
///
/// Trailing bytes after the declared payload are rejected as
/// [`DecodeError::Truncated`]'s dual — a framing bug either way — by
/// requiring exact consumption.
pub fn decode_state(buf: &[u8]) -> Result<LocalState, DecodeError> {
    let tag = *buf.first().ok_or(DecodeError::Truncated)?;
    let mut off = 1usize;
    let drift_sq_norm = get_f32(buf, &mut off)?;
    let summary = match tag {
        0 => StateSummary::Linear(get_f32(buf, &mut off)?),
        1 => {
            let rows = get_u16(buf, &mut off)? as usize;
            let cols = get_u16(buf, &mut off)? as usize;
            check_f32_run(
                buf,
                off,
                rows.checked_mul(cols).ok_or(DecodeError::Truncated)?,
            )?;
            let mut sk = AmsSketch::zeros(rows, cols);
            for v in sk.as_mut_slice() {
                *v = get_f32(buf, &mut off)?;
            }
            StateSummary::Sketch(sk)
        }
        2 => {
            let len = get_u32(buf, &mut off)? as usize;
            check_f32_run(buf, off, len)?;
            let mut v = vec![0.0f32; len];
            for x in &mut v {
                *x = get_f32(buf, &mut off)?;
            }
            StateSummary::Exact(v)
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    if off != buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(LocalState {
        drift_sq_norm,
        summary,
    })
}

/// Encodes a flat `f32` vector (full model parameters or a drift/delta):
/// `[ len: u32 ][ len × f32 ]`.
///
/// # Panics
/// Panics if `v.len()` exceeds `u32::MAX` (a ~17 GB payload — far past any
/// model this workspace ships).
pub fn encode_vector(v: &[f32]) -> Vec<u8> {
    encode_vector_coded(v, &fda_comm::compress::Dense32)
}

/// Decodes one `[ len: u32 ][ len × f32 ]` vector starting at `*off`,
/// advancing `*off` past it — the building block for frames that carry
/// more than one vector (e.g. the transport's `Resume` handoff). The
/// declared length is validated against the remaining buffer before any
/// allocation.
pub fn decode_vector_at(buf: &[u8], off: &mut usize) -> Result<Vec<f32>, DecodeError> {
    let len = get_u32(buf, off)? as usize;
    check_f32_run(buf, *off, len)?;
    let mut v = vec![0.0f32; len];
    for x in &mut v {
        *x = get_f32(buf, off)?;
    }
    Ok(v)
}

/// Decodes a vector frame produced by [`encode_vector`]. Exact consumption
/// is required (trailing bytes are a framing bug), and the declared length
/// is validated against the buffer before any allocation.
pub fn decode_vector(buf: &[u8]) -> Result<Vec<f32>, DecodeError> {
    let mut off = 0usize;
    let v = decode_vector_at(buf, &mut off)?;
    if off != buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(v)
}

/// Writes the self-describing head of a state frame — tag, drift scalar,
/// and summary shape — shared by the dense and coded state encoders so
/// the layouts cannot drift apart.
fn put_state_header(out: &mut Vec<u8>, state: &LocalState) {
    match &state.summary {
        StateSummary::Linear(_) => {
            out.push(0);
            put_f32(out, state.drift_sq_norm);
        }
        StateSummary::Sketch(sk) => {
            out.push(1);
            put_f32(out, state.drift_sq_norm);
            put_u16(out, sk.rows() as u16);
            put_u16(out, sk.cols() as u16);
        }
        StateSummary::Exact(v) => {
            out.push(2);
            put_f32(out, state.drift_sq_norm);
            put_u32(out, v.len() as u32);
        }
    }
}

/// Self-description bytes of a state frame (tag byte + shape dims) that
/// the paper's accounting convention does **not** charge; the frame's
/// remaining bytes — the drift scalar and the codec payload — are the
/// accounted state payload.
pub fn state_frame_overhead(state: &LocalState) -> u64 {
    1 + match &state.summary {
        StateSummary::Linear(_) => 0,
        StateSummary::Sketch(_) => 4,
        StateSummary::Exact(_) => 4,
    }
}

/// Encodes a local state with its summary run carried as a codec payload:
/// the [`encode_state`] header (tag, drift scalar, shape dims) followed by
/// `codec.encode(summary)`. With [`fda_comm::compress::Dense32`] the
/// output is byte-identical to [`encode_state`] — the dense codec payload
/// *is* the raw `f32` run — so dense-coded wire traffic is unchanged from
/// the pre-codec layout.
pub fn encode_state_coded(state: &LocalState, codec: &dyn Codec) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_state_coded_into(state, codec, &mut out);
    out
}

/// [`encode_state_coded`] appending into a caller-owned buffer — the
/// round loops reuse one scratch buffer per direction, so steady-state
/// serialization allocates nothing. Append semantics (callers clear), so
/// payloads with a prefix (the avg-state sync byte) compose in place.
pub fn encode_state_coded_into(state: &LocalState, codec: &dyn Codec, out: &mut Vec<u8>) {
    put_state_header(out, state);
    codec.encode_into(state.summary_slice(), out);
}

/// [`encode_state`] appending into a caller-owned buffer.
pub fn encode_state_into(state: &LocalState, out: &mut Vec<u8>) {
    encode_state_coded_into(state, &fda_comm::compress::Dense32, out);
}

/// Decodes a coded state frame against an `expected` shape template
/// (receiver knowledge — the monitor's own state layout). The wire
/// header's tag and dimensions must match the template **before** any
/// allocation is sized, so a hostile header cannot request gigabytes; the
/// remainder of the buffer is the codec payload, decoded totally.
pub fn decode_state_coded(
    buf: &[u8],
    expected: &LocalState,
    codec: &dyn Codec,
) -> Result<LocalState, DecodeError> {
    let tag = *buf.first().ok_or(DecodeError::Truncated)?;
    let mut off = 1usize;
    let drift_sq_norm = get_f32(buf, &mut off)?;
    let summary = match (&expected.summary, tag) {
        (StateSummary::Linear(_), 0) => {
            let values = codec.decode(&buf[off..], 1)?;
            StateSummary::Linear(values[0])
        }
        (StateSummary::Sketch(want), 1) => {
            let rows = get_u16(buf, &mut off)? as usize;
            let cols = get_u16(buf, &mut off)? as usize;
            if rows != want.rows() || cols != want.cols() {
                return Err(DecodeError::Malformed("sketch shape mismatch"));
            }
            let values = codec.decode(&buf[off..], rows * cols)?;
            let mut sk = AmsSketch::zeros(rows, cols);
            sk.as_mut_slice().copy_from_slice(&values);
            StateSummary::Sketch(sk)
        }
        (StateSummary::Exact(want), 2) => {
            let len = get_u32(buf, &mut off)? as usize;
            if len != want.len() {
                return Err(DecodeError::Malformed("exact summary length mismatch"));
            }
            StateSummary::Exact(codec.decode(&buf[off..], len)?)
        }
        (_, 0..=2) => return Err(DecodeError::Malformed("state tag mismatch")),
        (_, other) => return Err(DecodeError::BadTag(other)),
    };
    Ok(LocalState {
        drift_sq_norm,
        summary,
    })
}

/// Encodes a vector with the run carried as a codec payload:
/// `[ len: u32 ][ codec payload ]`. Byte-identical to [`encode_vector`]
/// under the dense codec.
///
/// # Panics
/// Panics if `v.len()` exceeds `u32::MAX`.
pub fn encode_vector_coded(v: &[f32], codec: &dyn Codec) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + v.len() * 4);
    encode_vector_coded_into(v, codec, &mut out);
    out
}

/// [`encode_vector_coded`] appending into a caller-owned buffer (see
/// [`encode_state_coded_into`] for the reuse discipline).
///
/// # Panics
/// Panics if `v.len()` exceeds `u32::MAX`.
pub fn encode_vector_coded_into(v: &[f32], codec: &dyn Codec, out: &mut Vec<u8>) {
    assert!(v.len() <= u32::MAX as usize, "vector too long for the wire");
    put_u32(out, v.len() as u32);
    codec.encode_into(v, out);
}

/// [`encode_vector`] appending into a caller-owned buffer.
pub fn encode_vector_into(v: &[f32], out: &mut Vec<u8>) {
    encode_vector_coded_into(v, &fda_comm::compress::Dense32, out);
}

/// Decodes a coded vector frame against the receiver's `expected_len`
/// (e.g. the model dimension). The length header must match the
/// expectation before any allocation — the untrusted header never sizes
/// memory — and the rest of the buffer is the codec payload.
pub fn decode_vector_coded(
    buf: &[u8],
    expected_len: usize,
    codec: &dyn Codec,
) -> Result<Vec<f32>, DecodeError> {
    let mut off = 0usize;
    let len = get_u32(buf, &mut off)? as usize;
    if len != expected_len {
        return Err(DecodeError::Malformed("vector length mismatch"));
    }
    Ok(codec.decode(&buf[off..], len)?)
}

/// A complete, self-contained FDA job description — everything a remote
/// worker process needs to reconstruct its exact replica of a simulated
/// run: the cluster shape (model, shards, seeds, optimizer), the FDA
/// variant and Θ, the step horizon, and the synthetic task generator spec.
///
/// Workers regenerate the dataset locally from `synth`/`task_name` (data
/// staging is outside the paper's communication budget), so the config
/// frame stays a few dozen bytes regardless of task size.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Cluster shape: model, K, batch, optimizer, partition, master seed.
    pub cluster: ClusterConfig,
    /// FDA variant and variance threshold Θ.
    pub fda: FdaConfig,
    /// Payload codec for worker-uplink sync traffic (state deposits and
    /// model uploads).
    pub codec: CodecSpec,
    /// Downlink mode for the consensus-model broadcast: dense (the
    /// historical byte-exact `AvgModel`) or a delta against the previous
    /// broadcast through its own codec. Every receiver applies the same
    /// reconstruction, so the consensus stays bit-identical across
    /// workers and the simulator either way.
    pub downlink: DownlinkSpec,
    /// Steps every worker performs.
    pub steps: u32,
    /// Synthetic task generator.
    pub synth: SynthSpec,
    /// Task name (seeds the generator alongside `synth.seed`).
    pub task_name: String,
}

fn put_model(out: &mut Vec<u8>, m: ModelId) {
    out.push(match m {
        ModelId::Lenet5 => 0,
        ModelId::Vgg16Star => 1,
        ModelId::DenseNet121 => 2,
        ModelId::DenseNet201 => 3,
        ModelId::TransferHead => 4,
    });
}

fn get_model(buf: &[u8], off: &mut usize) -> Result<ModelId, DecodeError> {
    Ok(match get_u8(buf, off)? {
        0 => ModelId::Lenet5,
        1 => ModelId::Vgg16Star,
        2 => ModelId::DenseNet121,
        3 => ModelId::DenseNet201,
        4 => ModelId::TransferHead,
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn put_optimizer(out: &mut Vec<u8>, o: OptimizerKind) {
    match o {
        OptimizerKind::Sgd { lr } => {
            out.push(0);
            put_f32(out, lr);
        }
        OptimizerKind::SgdMomentum {
            lr,
            momentum,
            nesterov,
            weight_decay,
        } => {
            out.push(1);
            put_f32(out, lr);
            put_f32(out, momentum);
            put_bool(out, nesterov);
            put_f32(out, weight_decay);
        }
        OptimizerKind::Adam { lr } => {
            out.push(2);
            put_f32(out, lr);
        }
        OptimizerKind::AdamW { lr, weight_decay } => {
            out.push(3);
            put_f32(out, lr);
            put_f32(out, weight_decay);
        }
    }
}

fn get_optimizer(buf: &[u8], off: &mut usize) -> Result<OptimizerKind, DecodeError> {
    Ok(match get_u8(buf, off)? {
        0 => OptimizerKind::Sgd {
            lr: get_f32(buf, off)?,
        },
        1 => OptimizerKind::SgdMomentum {
            lr: get_f32(buf, off)?,
            momentum: get_f32(buf, off)?,
            nesterov: get_bool(buf, off)?,
            weight_decay: get_f32(buf, off)?,
        },
        2 => OptimizerKind::Adam {
            lr: get_f32(buf, off)?,
        },
        3 => OptimizerKind::AdamW {
            lr: get_f32(buf, off)?,
            weight_decay: get_f32(buf, off)?,
        },
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn put_partition(out: &mut Vec<u8>, p: Partition) {
    match p {
        Partition::Iid => out.push(0),
        Partition::NonIidPercent(f) => {
            out.push(1);
            put_f32(out, f);
        }
        Partition::NonIidLabel(y) => {
            out.push(2);
            put_u32(out, y as u32);
        }
    }
}

fn get_partition(buf: &[u8], off: &mut usize) -> Result<Partition, DecodeError> {
    Ok(match get_u8(buf, off)? {
        0 => Partition::Iid,
        1 => Partition::NonIidPercent(get_f32(buf, off)?),
        2 => Partition::NonIidLabel(get_u32(buf, off)? as usize),
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn put_codec(out: &mut Vec<u8>, c: CodecSpec) {
    match c {
        CodecSpec::Dense => out.push(0),
        CodecSpec::Uniform8 { chunk } => {
            out.push(1);
            put_u32(out, chunk);
        }
        CodecSpec::TopK { k } => {
            out.push(2);
            put_u32(out, k);
        }
        CodecSpec::DriftMask { threshold } => {
            out.push(3);
            put_f32(out, threshold);
        }
    }
}

fn get_codec(buf: &[u8], off: &mut usize) -> Result<CodecSpec, DecodeError> {
    let spec = match get_u8(buf, off)? {
        0 => CodecSpec::Dense,
        1 => CodecSpec::Uniform8 {
            chunk: get_u32(buf, off)?,
        },
        2 => CodecSpec::TopK {
            k: get_u32(buf, off)?,
        },
        3 => CodecSpec::DriftMask {
            threshold: get_f32(buf, off)?,
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    spec.validate().map_err(DecodeError::Malformed)?;
    Ok(spec)
}

fn put_downlink(out: &mut Vec<u8>, d: DownlinkSpec) {
    match d {
        DownlinkSpec::Dense => out.push(0),
        DownlinkSpec::Delta { codec } => {
            out.push(1);
            put_codec(out, codec);
        }
    }
}

fn get_downlink(buf: &[u8], off: &mut usize) -> Result<DownlinkSpec, DecodeError> {
    let spec = match get_u8(buf, off)? {
        0 => DownlinkSpec::Dense,
        1 => DownlinkSpec::Delta {
            codec: get_codec(buf, off)?,
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    spec.validate().map_err(DecodeError::Malformed)?;
    Ok(spec)
}

fn put_variant(out: &mut Vec<u8>, v: FdaVariant) {
    match v {
        FdaVariant::Sketch(sk) => {
            out.push(0);
            put_u16(out, sk.rows as u16);
            put_u16(out, sk.cols as u16);
            put_u64(out, sk.seed);
        }
        FdaVariant::SketchAuto => out.push(1),
        FdaVariant::Linear => out.push(2),
        FdaVariant::Exact => out.push(3),
    }
}

fn get_variant(buf: &[u8], off: &mut usize) -> Result<FdaVariant, DecodeError> {
    Ok(match get_u8(buf, off)? {
        0 => {
            let rows = get_u16(buf, off)? as usize;
            let cols = get_u16(buf, off)? as usize;
            let seed = get_u64(buf, off)?;
            if rows == 0 || cols == 0 {
                return Err(DecodeError::Malformed("sketch dims must be positive"));
            }
            FdaVariant::Sketch(SketchConfig::new(rows, cols, seed))
        }
        1 => FdaVariant::SketchAuto,
        2 => FdaVariant::Linear,
        3 => FdaVariant::Exact,
        t => return Err(DecodeError::BadTag(t)),
    })
}

/// Encodes a [`JobSpec`] config frame (versioned; fixed-size fields plus
/// the task-name string).
///
/// # Panics
/// Panics if the task name exceeds `u16::MAX` bytes or the sketch config
/// dimensions exceed `u16::MAX` (neither occurs for any workspace config).
pub fn encode_job(job: &JobSpec) -> Vec<u8> {
    assert!(
        job.task_name.len() <= u16::MAX as usize,
        "task name too long for the wire"
    );
    if let FdaVariant::Sketch(sk) = job.fda.variant {
        assert!(
            sk.rows <= u16::MAX as usize && sk.cols <= u16::MAX as usize,
            "sketch dims too large for the wire"
        );
    }
    let mut out = Vec::with_capacity(96 + job.task_name.len());
    out.push(JOB_WIRE_VERSION);
    let c = &job.cluster;
    put_model(&mut out, c.model);
    put_u32(&mut out, c.workers as u32);
    put_u32(&mut out, c.batch_size as u32);
    put_optimizer(&mut out, c.optimizer);
    put_partition(&mut out, c.partition);
    put_u64(&mut out, c.seed);
    put_bool(&mut out, c.parallel);
    put_variant(&mut out, job.fda.variant);
    put_f32(&mut out, job.fda.theta);
    put_codec(&mut out, job.codec);
    put_downlink(&mut out, job.downlink);
    put_u32(&mut out, job.steps);
    let s = &job.synth;
    put_u32(&mut out, s.classes as u32);
    put_u32(&mut out, s.modes_per_class as u32);
    put_u32(&mut out, s.dim as u32);
    match s.spatial {
        None => out.push(0),
        Some((c, h, w)) => {
            out.push(1);
            put_u32(&mut out, c as u32);
            put_u32(&mut out, h as u32);
            put_u32(&mut out, w as u32);
        }
    }
    put_u32(&mut out, s.smooth_passes as u32);
    put_f32(&mut out, s.noise_std);
    put_f32(&mut out, s.prototype_scale);
    put_f32(&mut out, s.amplitude_jitter);
    put_u32(&mut out, s.n_train as u32);
    put_u32(&mut out, s.n_test as u32);
    put_u64(&mut out, s.seed);
    put_u16(&mut out, job.task_name.len() as u16);
    out.extend_from_slice(job.task_name.as_bytes());
    out
}

/// Decodes a config frame produced by [`encode_job`]. Total: every
/// malformed input maps to a [`DecodeError`].
pub fn decode_job(buf: &[u8]) -> Result<JobSpec, DecodeError> {
    let mut off = 0usize;
    let version = get_u8(buf, &mut off)?;
    if version != JOB_WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let cluster = ClusterConfig {
        model: get_model(buf, &mut off)?,
        workers: get_u32(buf, &mut off)? as usize,
        batch_size: get_u32(buf, &mut off)? as usize,
        optimizer: get_optimizer(buf, &mut off)?,
        partition: get_partition(buf, &mut off)?,
        seed: get_u64(buf, &mut off)?,
        parallel: get_bool(buf, &mut off)?,
    };
    let fda = FdaConfig {
        variant: get_variant(buf, &mut off)?,
        theta: get_f32(buf, &mut off)?,
    };
    let codec = get_codec(buf, &mut off)?;
    let downlink = get_downlink(buf, &mut off)?;
    let steps = get_u32(buf, &mut off)?;
    let classes = get_u32(buf, &mut off)? as usize;
    let modes_per_class = get_u32(buf, &mut off)? as usize;
    let dim = get_u32(buf, &mut off)? as usize;
    let spatial = match get_u8(buf, &mut off)? {
        0 => None,
        1 => Some((
            get_u32(buf, &mut off)? as usize,
            get_u32(buf, &mut off)? as usize,
            get_u32(buf, &mut off)? as usize,
        )),
        _ => return Err(DecodeError::Malformed("spatial flag must be 0 or 1")),
    };
    let synth = SynthSpec {
        classes,
        modes_per_class,
        dim,
        spatial,
        smooth_passes: get_u32(buf, &mut off)? as usize,
        noise_std: get_f32(buf, &mut off)?,
        prototype_scale: get_f32(buf, &mut off)?,
        amplitude_jitter: get_f32(buf, &mut off)?,
        n_train: get_u32(buf, &mut off)? as usize,
        n_test: get_u32(buf, &mut off)? as usize,
        seed: get_u64(buf, &mut off)?,
    };
    let name_len = get_u16(buf, &mut off)? as usize;
    let end = off.checked_add(name_len).ok_or(DecodeError::Truncated)?;
    let name_bytes = buf.get(off..end).ok_or(DecodeError::Truncated)?;
    let task_name = std::str::from_utf8(name_bytes)
        .map_err(|_| DecodeError::Malformed("task name must be UTF-8"))?
        .to_string();
    off = end;
    if off != buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(JobSpec {
        cluster,
        fda,
        codec,
        downlink,
        steps,
        synth,
        task_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{ExactMonitor, LinearMonitor, SketchMonitor, VarianceMonitor};
    use fda_sketch::SketchConfig;

    fn drift(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn linear_state_roundtrip_and_size() {
        let m = LinearMonitor::new();
        let s = m.local_state(&drift(64));
        let bytes = encode_state(&s);
        // 1 tag + 4 norm + 4 proj = 9 bytes on the wire; the monitor's
        // accounting (8) charges only the payload floats, which is the
        // paper's convention — framing overhead is sub-1% at model scale.
        assert_eq!(bytes.len(), 9);
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back.drift_sq_norm, s.drift_sq_norm);
        match (back.summary, s.summary) {
            (StateSummary::Linear(a), StateSummary::Linear(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn sketch_state_roundtrip() {
        let m = SketchMonitor::new(SketchConfig::new(3, 16, 9), 64);
        let s = m.local_state(&drift(64));
        let back = decode_state(&encode_state(&s)).unwrap();
        assert_eq!(back.drift_sq_norm, s.drift_sq_norm);
        match (&back.summary, &s.summary) {
            (StateSummary::Sketch(a), StateSummary::Sketch(b)) => {
                assert_eq!(a.as_slice(), b.as_slice());
                assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            }
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn exact_state_roundtrip() {
        let m = ExactMonitor::new(32);
        let s = m.local_state(&drift(32));
        let back = decode_state(&encode_state(&s)).unwrap();
        match (&back.summary, &s.summary) {
            (StateSummary::Exact(a), StateSummary::Exact(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn estimates_survive_the_wire() {
        // The decisive property: decoding K encoded states and averaging
        // them gives the same H as the in-memory path.
        let m = LinearMonitor::new();
        let states: Vec<LocalState> = (0..4).map(|i| m.local_state(&drift(32 + i))).collect();
        let wired: Vec<LocalState> = states
            .iter()
            .map(|s| decode_state(&encode_state(s)).unwrap())
            .collect();
        let direct = m.estimate(&LocalState::average(&states));
        let via_wire = m.estimate(&LocalState::average(&wired));
        assert_eq!(direct, via_wire);
    }

    #[test]
    fn truncated_buffers_fail_cleanly() {
        let m = LinearMonitor::new();
        let bytes = encode_state(&m.local_state(&drift(8)));
        for cut in 0..bytes.len() {
            assert!(
                decode_state(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = LinearMonitor::new();
        let mut bytes = encode_state(&m.local_state(&drift(8)));
        bytes.push(0xFF);
        assert_eq!(decode_state(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [9u8, 0, 0, 0, 0];
        assert_eq!(decode_state(&buf), Err(DecodeError::BadTag(9)));
    }

    /// A hostile length header (u16::MAX × u16::MAX sketch, u32::MAX exact
    /// vector) must fail as `Truncated` *before* any allocation is sized
    /// from it — not attempt a multi-gigabyte `vec!`.
    #[test]
    fn hostile_length_headers_fail_without_allocating() {
        // Sketch tag with maximal rows/cols and no payload behind them.
        let mut sketchy = vec![1u8];
        sketchy.extend_from_slice(&1.0f32.to_le_bytes());
        sketchy.extend_from_slice(&u16::MAX.to_le_bytes());
        sketchy.extend_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode_state(&sketchy), Err(DecodeError::Truncated));
        // Exact tag with a u32::MAX length.
        let mut exact = vec![2u8];
        exact.extend_from_slice(&1.0f32.to_le_bytes());
        exact.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_state(&exact), Err(DecodeError::Truncated));
        // Vector frame with a u32::MAX length.
        let huge = u32::MAX.to_le_bytes();
        assert_eq!(decode_vector(&huge), Err(DecodeError::Truncated));
    }

    #[test]
    fn vector_roundtrip_including_empty() {
        for v in [vec![], vec![1.5f32], drift(37)] {
            let bytes = encode_vector(&v);
            assert_eq!(bytes.len(), 4 + v.len() * 4);
            let back = decode_vector(&bytes).unwrap();
            assert_eq!(back, v);
            assert_eq!(encode_vector(&back), bytes, "re-encode must match");
        }
        // Trailing garbage and truncation rejected.
        let mut bytes = encode_vector(&drift(5));
        bytes.push(0);
        assert_eq!(decode_vector(&bytes), Err(DecodeError::Truncated));
        bytes.pop();
        assert_eq!(decode_vector(&bytes[..7]), Err(DecodeError::Truncated));
    }

    fn sample_job() -> JobSpec {
        use fda_data::synth::SynthSpec;
        JobSpec {
            cluster: crate::cluster::ClusterConfig::small_test(4),
            fda: crate::fda::FdaConfig::sketch_auto(0.02),
            codec: CodecSpec::Dense,
            downlink: DownlinkSpec::Dense,
            steps: 12,
            synth: SynthSpec {
                n_train: 240,
                n_test: 80,
                ..SynthSpec::synth_mnist()
            },
            task_name: "tiny".to_string(),
        }
    }

    #[test]
    fn job_roundtrip_byte_equality() {
        use crate::fda::{FdaConfig, FdaVariant};
        let mut jobs = vec![sample_job()];
        // Cover every variant tag, optimizer tag and partition tag.
        let mut j = sample_job();
        j.fda = FdaConfig {
            variant: FdaVariant::Sketch(SketchConfig::new(3, 17, 99)),
            theta: 1.25,
        };
        j.cluster.optimizer = fda_optim::OptimizerKind::SgdMomentum {
            lr: 0.1,
            momentum: 0.9,
            nesterov: true,
            weight_decay: 1e-4,
        };
        j.cluster.partition = Partition::NonIidPercent(0.6);
        jobs.push(j);
        let mut j = sample_job();
        j.fda = FdaConfig::linear(0.0);
        j.cluster.optimizer = fda_optim::OptimizerKind::AdamW {
            lr: 2e-3,
            weight_decay: 0.01,
        };
        j.cluster.partition = Partition::NonIidLabel(3);
        j.cluster.model = ModelId::TransferHead;
        j.synth.spatial = None;
        j.task_name = String::new();
        jobs.push(j);
        let mut j = sample_job();
        j.fda = FdaConfig {
            variant: FdaVariant::Exact,
            theta: 0.5,
        };
        j.cluster.optimizer = fda_optim::OptimizerKind::Sgd { lr: 0.05 };
        jobs.push(j);
        // Cover every codec tag.
        for codec in [
            CodecSpec::Uniform8 { chunk: 512 },
            CodecSpec::TopK { k: 100 },
            CodecSpec::DriftMask { threshold: 0.01 },
        ] {
            let mut j = sample_job();
            j.codec = codec;
            jobs.push(j);
        }
        for (i, job) in jobs.iter().enumerate() {
            let bytes = encode_job(job);
            let back = decode_job(&bytes).unwrap();
            assert_eq!(
                encode_job(&back),
                bytes,
                "job {i}: encode→decode→encode must be byte-identical"
            );
        }
    }

    #[test]
    fn job_decode_rejects_bad_version_and_garbage() {
        let mut bytes = encode_job(&sample_job());
        bytes[0] = 99;
        assert!(matches!(
            decode_job(&bytes),
            Err(DecodeError::BadVersion(99))
        ));
        bytes[0] = JOB_WIRE_VERSION;
        for cut in 0..bytes.len() {
            assert!(decode_job(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        bytes.push(0xAB);
        assert!(matches!(decode_job(&bytes), Err(DecodeError::Truncated)));
    }

    #[test]
    fn job_decode_rejects_invalid_codec_params() {
        // A wire-decoded codec spec is untrusted: zero chunk / zero k /
        // non-finite threshold must fail validation, not build a panicky
        // codec later.
        let mut j = sample_job();
        j.codec = CodecSpec::Uniform8 { chunk: 1 };
        let bytes = encode_job(&j);
        // The codec field sits right after variant tag (1) + theta (4);
        // locate it by re-encoding with a marker value instead of byte
        // surgery: encode specs that validate, then corrupt the param.
        let good = decode_job(&bytes).unwrap();
        assert_eq!(good.codec, CodecSpec::Uniform8 { chunk: 1 });
        let pos = bytes
            .windows(5)
            .position(|w| w == [1u8, 1, 0, 0, 0])
            .expect("codec tag + chunk=1 in frame");
        let mut bad = bytes.clone();
        bad[pos + 1..pos + 5].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_job(&bad), Err(DecodeError::Malformed(_))));
    }

    /// Dense-coded frames are byte-identical to the pre-codec layouts —
    /// the invariant that keeps golden hashes and dense byte accounting
    /// unchanged with the codec layer threaded through.
    #[test]
    fn dense_coded_frames_match_uncoded_layouts() {
        use fda_comm::compress::Dense32;
        let states = [
            LinearMonitor::new().local_state(&drift(16)),
            SketchMonitor::new(SketchConfig::new(3, 16, 9), 64).local_state(&drift(64)),
            ExactMonitor::new(32).local_state(&drift(32)),
        ];
        for s in &states {
            assert_eq!(encode_state(s), encode_state_coded(s, &Dense32));
            let back = decode_state_coded(&encode_state(s), s, &Dense32).unwrap();
            assert_eq!(encode_state(&back), encode_state(s));
        }
        let v = drift(97);
        assert_eq!(encode_vector(&v), encode_vector_coded(&v, &Dense32));
        assert_eq!(
            decode_vector_coded(&encode_vector(&v), 97, &Dense32).unwrap(),
            v
        );
    }

    #[test]
    fn coded_state_roundtrips_and_validates_shape() {
        use fda_comm::compress::{TopK, Uniform8Bit};
        let m = ExactMonitor::new(64);
        let s = m.local_state(&drift(64));
        let codec = TopK::new(5);
        let bytes = encode_state_coded(&s, &codec);
        // Exact header (1 tag + 4 drift + 4 len) + 5 pairs.
        assert_eq!(bytes.len() as u64, state_frame_overhead(&s) + 4 + 5 * 8);
        let back = decode_state_coded(&bytes, &s, &codec).unwrap();
        assert_eq!(back.drift_sq_norm, s.drift_sq_norm);
        match &back.summary {
            StateSummary::Exact(v) => {
                assert_eq!(v.len(), 64);
                assert_eq!(v.iter().filter(|x| **x != 0.0).count(), 5);
            }
            _ => panic!("summary kind changed"),
        }
        // Re-encoding the reconstruction is byte-identical (the simulator
        // charges exactly what the socket carried).
        assert_eq!(encode_state_coded(&back, &codec), bytes);
        // A mismatched template is rejected before decoding values.
        let other = ExactMonitor::new(63).local_state(&drift(63));
        assert!(decode_state_coded(&bytes, &other, &codec).is_err());
        let linear = LinearMonitor::new().local_state(&drift(64));
        assert!(decode_state_coded(&bytes, &linear, &codec).is_err());
        // Sketch states quantize, too.
        let sm = SketchMonitor::new(SketchConfig::new(5, 50, 7), 64);
        let ss = sm.local_state(&drift(64));
        let q = Uniform8Bit::new(64);
        let qb = encode_state_coded(&ss, &q);
        let qback = decode_state_coded(&qb, &ss, &q).unwrap();
        assert!(ss.same_shape(&qback));
        assert_eq!(encode_state_coded(&qback, &q), qb);
    }

    #[test]
    fn coded_vector_rejects_length_mismatch_and_truncation() {
        use fda_comm::compress::Uniform8Bit;
        let codec = Uniform8Bit::new(32);
        let v = drift(100);
        let bytes = encode_vector_coded(&v, &codec);
        let back = decode_vector_coded(&bytes, 100, &codec).unwrap();
        assert_eq!(encode_vector_coded(&back, &codec), bytes);
        // Wrong expectation: rejected before any allocation.
        assert!(matches!(
            decode_vector_coded(&bytes, 99, &codec),
            Err(DecodeError::Malformed(_))
        ));
        for cut in 0..bytes.len() {
            assert!(decode_vector_coded(&bytes[..cut], 100, &codec).is_err());
        }
    }
}
