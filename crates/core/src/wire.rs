//! Wire encoding of FDA local states.
//!
//! The simulator usually passes [`LocalState`] values in memory and only
//! *charges* their byte size; this module provides the actual byte-level
//! encoding so that (a) the charged sizes are demonstrably achievable, and
//! (b) transport-based drivers (the threaded cluster, or a future socket
//! transport) can ship real buffers. Hand-rolled little-endian framing —
//! the payload is a handful of `f32`s, serde would be overkill.
//!
//! Layout (little endian):
//!
//! ```text
//! [ tag: u8 ] [ drift_sq_norm: f32 ]
//!   tag 0 (Linear): [ proj: f32 ]
//!   tag 1 (Sketch): [ rows: u16 ] [ cols: u16 ] [ rows·cols × f32 ]
//!   tag 2 (Exact):  [ len: u32 ]  [ len × f32 ]
//! ```

use crate::monitor::{LocalState, StateSummary};
use fda_sketch::AmsSketch;

/// Errors produced when decoding a state buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the declared payload.
    Truncated,
    /// Unknown summary tag byte.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "state buffer truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown state tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f32(buf: &[u8], off: &mut usize) -> Result<f32, DecodeError> {
    let end = *off + 4;
    let bytes: [u8; 4] = buf
        .get(*off..end)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .expect("slice of length 4");
    *off = end;
    Ok(f32::from_le_bytes(bytes))
}

/// Encodes a local state into bytes.
pub fn encode_state(state: &LocalState) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match &state.summary {
        StateSummary::Linear(proj) => {
            out.push(0);
            put_f32(&mut out, state.drift_sq_norm);
            put_f32(&mut out, *proj);
        }
        StateSummary::Sketch(sk) => {
            out.push(1);
            put_f32(&mut out, state.drift_sq_norm);
            out.extend_from_slice(&(sk.rows() as u16).to_le_bytes());
            out.extend_from_slice(&(sk.cols() as u16).to_le_bytes());
            for &v in sk.as_slice() {
                put_f32(&mut out, v);
            }
        }
        StateSummary::Exact(v) => {
            out.push(2);
            put_f32(&mut out, state.drift_sq_norm);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for &x in v {
                put_f32(&mut out, x);
            }
        }
    }
    out
}

/// Decodes a state buffer.
///
/// Trailing bytes after the declared payload are rejected as
/// [`DecodeError::Truncated`]'s dual — a framing bug either way — by
/// requiring exact consumption.
pub fn decode_state(buf: &[u8]) -> Result<LocalState, DecodeError> {
    let tag = *buf.first().ok_or(DecodeError::Truncated)?;
    let mut off = 1usize;
    let drift_sq_norm = get_f32(buf, &mut off)?;
    let summary = match tag {
        0 => StateSummary::Linear(get_f32(buf, &mut off)?),
        1 => {
            let rows = u16::from_le_bytes(
                buf.get(off..off + 2)
                    .ok_or(DecodeError::Truncated)?
                    .try_into()
                    .expect("len 2"),
            ) as usize;
            off += 2;
            let cols = u16::from_le_bytes(
                buf.get(off..off + 2)
                    .ok_or(DecodeError::Truncated)?
                    .try_into()
                    .expect("len 2"),
            ) as usize;
            off += 2;
            let mut sk = AmsSketch::zeros(rows, cols);
            for v in sk.as_mut_slice() {
                *v = get_f32(buf, &mut off)?;
            }
            StateSummary::Sketch(sk)
        }
        2 => {
            let len = u32::from_le_bytes(
                buf.get(off..off + 4)
                    .ok_or(DecodeError::Truncated)?
                    .try_into()
                    .expect("len 4"),
            ) as usize;
            off += 4;
            let mut v = vec![0.0f32; len];
            for x in &mut v {
                *x = get_f32(buf, &mut off)?;
            }
            StateSummary::Exact(v)
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    if off != buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(LocalState {
        drift_sq_norm,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{ExactMonitor, LinearMonitor, SketchMonitor, VarianceMonitor};
    use fda_sketch::SketchConfig;

    fn drift(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn linear_state_roundtrip_and_size() {
        let m = LinearMonitor::new();
        let s = m.local_state(&drift(64));
        let bytes = encode_state(&s);
        // 1 tag + 4 norm + 4 proj = 9 bytes on the wire; the monitor's
        // accounting (8) charges only the payload floats, which is the
        // paper's convention — framing overhead is sub-1% at model scale.
        assert_eq!(bytes.len(), 9);
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back.drift_sq_norm, s.drift_sq_norm);
        match (back.summary, s.summary) {
            (StateSummary::Linear(a), StateSummary::Linear(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn sketch_state_roundtrip() {
        let m = SketchMonitor::new(SketchConfig::new(3, 16, 9), 64);
        let s = m.local_state(&drift(64));
        let back = decode_state(&encode_state(&s)).unwrap();
        assert_eq!(back.drift_sq_norm, s.drift_sq_norm);
        match (&back.summary, &s.summary) {
            (StateSummary::Sketch(a), StateSummary::Sketch(b)) => {
                assert_eq!(a.as_slice(), b.as_slice());
                assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            }
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn exact_state_roundtrip() {
        let m = ExactMonitor::new(32);
        let s = m.local_state(&drift(32));
        let back = decode_state(&encode_state(&s)).unwrap();
        match (&back.summary, &s.summary) {
            (StateSummary::Exact(a), StateSummary::Exact(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn estimates_survive_the_wire() {
        // The decisive property: decoding K encoded states and averaging
        // them gives the same H as the in-memory path.
        let m = LinearMonitor::new();
        let states: Vec<LocalState> = (0..4).map(|i| m.local_state(&drift(32 + i))).collect();
        let wired: Vec<LocalState> = states
            .iter()
            .map(|s| decode_state(&encode_state(s)).unwrap())
            .collect();
        let direct = m.estimate(&LocalState::average(&states));
        let via_wire = m.estimate(&LocalState::average(&wired));
        assert_eq!(direct, via_wire);
    }

    #[test]
    fn truncated_buffers_fail_cleanly() {
        let m = LinearMonitor::new();
        let bytes = encode_state(&m.local_state(&drift(8)));
        for cut in 0..bytes.len() {
            assert!(
                decode_state(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = LinearMonitor::new();
        let mut bytes = encode_state(&m.local_state(&drift(8)));
        bytes.push(0xFF);
        assert_eq!(decode_state(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [9u8, 0, 0, 0, 0];
        assert_eq!(decode_state(&buf), Err(DecodeError::BadTag(9)));
    }
}
