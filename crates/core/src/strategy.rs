//! The common interface every DDL algorithm implements.
//!
//! The paper compares five algorithms (LinearFDA, SketchFDA, Synchronous,
//! FedAdam, FedAvgM) by running each until a test-accuracy target and
//! measuring (communication bytes, in-parallel steps). The [`Strategy`]
//! trait is the uniform surface the [`crate::harness`] drives: one `step`
//! equals one in-parallel mini-batch step on every worker, so computation
//! is directly comparable across algorithms.

use crate::cluster::{Cluster, StepStats};

/// What happened during one in-parallel step.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Training telemetry from the local step.
    pub stats: StepStats,
    /// Whether a model synchronization happened this step.
    pub synced: bool,
    /// The variance estimate `H(S̄)` this step, if the algorithm computes
    /// one (FDA variants only).
    pub variance_estimate: Option<f32>,
}

/// A distributed training algorithm driving a [`Cluster`].
pub trait Strategy {
    /// Display name matching the paper's legends (`LinearFDA`,
    /// `SketchFDA`, `Synchronous`, `FedAvgM`, `FedAdam`, `LocalSGD(τ)`).
    fn name(&self) -> String;

    /// Executes one in-parallel step (local training + any communication
    /// the algorithm's schedule dictates).
    fn step(&mut self) -> StepOutcome;

    /// The cluster being trained.
    fn cluster(&self) -> &Cluster;

    /// Mutable cluster access (evaluation plumbing).
    fn cluster_mut(&mut self) -> &mut Cluster;

    /// Number of model synchronizations so far.
    fn syncs(&self) -> u64;

    /// Attaches (`Some`) or finishes (`None`) a per-round JSONL telemetry
    /// stream (see `fda_obs::event`). Detaching writes the end-of-run
    /// summary and flushes. Returns whether this strategy emits telemetry;
    /// the default implementation drops the sink and reports `false`.
    fn set_telemetry(&mut self, sink: Option<fda_obs::JsonlWriter>) -> bool {
        drop(sink);
        false
    }

    /// Total bytes transmitted by all workers so far.
    fn comm_bytes(&self) -> u64 {
        self.cluster().comm_bytes()
    }

    /// In-parallel steps so far.
    fn steps(&self) -> u64 {
        self.cluster().steps()
    }

    /// The current global model: the consensus model if one exists, else
    /// the average of the worker models (evaluation is free, §4.1).
    fn global_params(&self) -> Vec<f32> {
        self.cluster().average_params()
    }
}
