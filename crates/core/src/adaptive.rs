//! Adaptive-Θ control (the paper's future-work direction, §5).
//!
//! > "An interesting direction for future work is whether the value of Θ
//! > can be dynamically adjusted in order to achieve (or not to exceed) a
//! > target average bandwidth consumption. Since the expected behavior is
//! > that the communication cost decreases when Θ increases, such an
//! > approach seems feasible (i.e., increasing Θ when the bandwidth
//! > consumption is higher than what is desired)."
//!
//! This module implements exactly that controller: a multiplicative
//! update on Θ driven by the gap between the observed average bandwidth
//! (bytes per worker per step, over a sliding window) and a budget. The
//! controller only consumes quantities every worker already knows (the
//! deterministic byte accounting of the protocol), so all workers compute
//! the same Θ without extra communication.

use crate::cluster::Cluster;
use crate::fda::Fda;
use crate::strategy::{StepOutcome, Strategy};

/// Multiplicative-increase / multiplicative-decrease Θ controller.
#[derive(Debug, Clone, Copy)]
pub struct ThetaController {
    /// Target average bandwidth in bytes per worker per step.
    pub budget_bytes_per_step: f64,
    /// Multiplicative step (e.g. 0.05 ⇒ ±5% per adjustment window).
    pub gain: f64,
    /// Steps per adjustment window.
    pub window: u64,
    /// Θ bounds (the workable range; outside it training degenerates).
    pub theta_min: f32,
    /// Upper bound of the workable Θ range.
    pub theta_max: f32,
}

impl ThetaController {
    /// A controller with ±`gain` adjustments every `window` steps.
    ///
    /// # Panics
    /// Panics on non-positive budget/gain/window or an empty Θ range.
    pub fn new(
        budget_bytes_per_step: f64,
        gain: f64,
        window: u64,
        theta_min: f32,
        theta_max: f32,
    ) -> ThetaController {
        assert!(
            budget_bytes_per_step > 0.0,
            "adaptive: budget must be positive"
        );
        assert!(gain > 0.0 && gain < 1.0, "adaptive: gain must be in (0, 1)");
        assert!(window >= 1, "adaptive: window must be positive");
        assert!(
            theta_min > 0.0 && theta_min < theta_max,
            "adaptive: need 0 < theta_min < theta_max"
        );
        ThetaController {
            budget_bytes_per_step,
            gain,
            window,
            theta_min,
            theta_max,
        }
    }

    /// The new Θ given the observed per-worker bytes over the last window.
    fn adjust(&self, theta: f32, observed_bytes_per_step: f64) -> f32 {
        let next = if observed_bytes_per_step > self.budget_bytes_per_step {
            // Over budget ⇒ loosen the trigger (sync less).
            theta * (1.0 + self.gain) as f32
        } else {
            // Under budget ⇒ tighten (spend the allowance on model quality).
            theta * (1.0 - self.gain) as f32
        };
        next.clamp(self.theta_min, self.theta_max)
    }
}

/// FDA with the adaptive-Θ controller wrapped around it.
pub struct AdaptiveFda {
    inner: Fda,
    controller: ThetaController,
    window_start_bytes: u64,
    window_steps: u64,
    theta_history: Vec<f32>,
}

impl AdaptiveFda {
    /// Wraps an existing FDA strategy; Θ starts at the inner value.
    pub fn new(inner: Fda, controller: ThetaController) -> AdaptiveFda {
        let theta0 = inner.theta();
        AdaptiveFda {
            inner,
            controller,
            window_start_bytes: 0,
            window_steps: 0,
            theta_history: vec![theta0],
        }
    }

    /// The Θ trajectory (one entry per adjustment window, plus the start).
    pub fn theta_history(&self) -> &[f32] {
        &self.theta_history
    }

    /// The current threshold.
    pub fn theta(&self) -> f32 {
        self.inner.theta()
    }

    /// Observed average bytes per worker per step since the run began.
    pub fn avg_bytes_per_step(&self) -> f64 {
        let steps = self.inner.steps().max(1);
        let workers = self.inner.cluster().workers().max(1) as u64;
        self.inner.comm_bytes() as f64 / (steps * workers) as f64
    }
}

impl Strategy for AdaptiveFda {
    fn name(&self) -> String {
        format!("Adaptive{}", self.inner.name())
    }

    fn step(&mut self) -> StepOutcome {
        let out = self.inner.step();
        self.window_steps += 1;
        if self.window_steps >= self.controller.window {
            let workers = self.inner.cluster().workers().max(1) as u64;
            let bytes = self.inner.comm_bytes() - self.window_start_bytes;
            let per_step = bytes as f64 / (self.window_steps * workers) as f64;
            let new_theta = self.controller.adjust(self.inner.theta(), per_step);
            self.inner.set_theta(new_theta);
            self.theta_history.push(new_theta);
            self.window_start_bytes = self.inner.comm_bytes();
            self.window_steps = 0;
        }
        out
    }

    fn cluster(&self) -> &Cluster {
        self.inner.cluster()
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        self.inner.cluster_mut()
    }

    fn syncs(&self) -> u64 {
        self.inner.syncs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::fda::FdaConfig;
    use fda_data::synth::SynthSpec;
    use fda_data::TaskData;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 300,
            n_test: 100,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    fn adaptive(theta0: f32, budget: f64) -> AdaptiveFda {
        let task = tiny_task();
        let inner = Fda::new(
            FdaConfig::linear(theta0),
            ClusterConfig::small_test(4),
            &task,
        );
        AdaptiveFda::new(inner, ThetaController::new(budget, 0.25, 5, 1e-4, 100.0))
    }

    #[test]
    fn tight_budget_raises_theta() {
        // A starving budget (1 byte/step) forces the controller to loosen
        // the trigger monotonically toward theta_max.
        let mut a = adaptive(0.01, 1.0);
        for _ in 0..60 {
            a.step();
        }
        let hist = a.theta_history();
        assert!(
            *hist.last().unwrap() > hist[0] * 2.0,
            "Θ should grow under a starving budget: {hist:?}"
        );
    }

    #[test]
    fn generous_budget_lowers_theta() {
        // An enormous budget lets the controller tighten toward theta_min.
        let mut a = adaptive(5.0, 1e12);
        for _ in 0..60 {
            a.step();
        }
        let hist = a.theta_history();
        assert!(
            *hist.last().unwrap() < hist[0],
            "Θ should shrink under a generous budget: {hist:?}"
        );
    }

    #[test]
    fn controller_meets_budget_within_factor() {
        // Budget set between the two extremes: after convergence the
        // observed bandwidth should be within an order of magnitude of the
        // budget (the controller is MIMD, not exact).
        let budget = 2_000.0; // bytes per worker per step
        let mut a = adaptive(0.5, budget);
        for _ in 0..400 {
            a.step();
        }
        let observed = a.avg_bytes_per_step();
        assert!(
            observed < budget * 10.0,
            "bandwidth {observed} should be pulled toward the budget {budget}"
        );
    }

    #[test]
    fn theta_stays_in_bounds() {
        let mut a = adaptive(0.01, 1.0);
        for _ in 0..200 {
            a.step();
        }
        for &t in a.theta_history() {
            assert!((1e-4..=100.0).contains(&t));
        }
    }

    #[test]
    #[should_panic(expected = "gain must be in")]
    fn invalid_gain_panics() {
        let _ = ThetaController::new(1.0, 1.5, 5, 0.1, 1.0);
    }
}
