//! The experiment grid of Table 2, at reproduction scale.
//!
//! Each entry mirrors one row of the paper's Table 2: the model, its
//! dataset, the Θ grid, batch size, worker counts, local optimizer, and the
//! algorithm set. Absolute Θ values are re-calibrated for our scaled
//! models (drift magnitudes depend on `d`, the optimizer and the task; see
//! `benches/fig12_theta_rule.rs` for the calibration), but the *structure*
//! — which algorithms face which model with which optimizer — is the
//! paper's.

use crate::harness::RunConfig;
use crate::sweeps::Algo;
use fda_data::synth;
use fda_data::TaskData;
use fda_nn::zoo::ModelId;
use fda_optim::OptimizerKind;

/// One row of Table 2.
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Model under training.
    pub model: ModelId,
    /// Task name (dataset stand-in).
    pub task_name: &'static str,
    /// Θ grid (FDA variants).
    pub thetas: Vec<f32>,
    /// Mini-batch size `b`.
    pub batch: usize,
    /// Worker-count grid `K`.
    pub ks: Vec<usize>,
    /// Local optimizer.
    pub optimizer: OptimizerKind,
    /// Algorithms compared on this row.
    pub algos: Vec<Algo>,
    /// Accuracy targets evaluated in the corresponding figures.
    pub accuracy_targets: Vec<f32>,
}

impl ExperimentSpec {
    /// Builds the task data for this spec.
    pub fn make_task(&self) -> TaskData {
        match self.task_name {
            "synth-mnist" => synth::synth_mnist(),
            "synth-cifar10" => synth::synth_cifar10(),
            "synth-cifar100-features" => synth::synth_cifar100_features(),
            other => panic!("unknown task {other}"),
        }
    }

    /// A default run configuration for the first accuracy target.
    pub fn run_config(&self, max_steps: u64) -> RunConfig {
        RunConfig::to_target(self.accuracy_targets[0], max_steps)
    }
}

/// The reproduction's Table 2 (paper Table 2 at scaled d, Θ and K).
///
/// | Paper row | Paper Θ grid | Paper K | Ours |
/// |---|---|---|---|
/// | LeNet-5 / MNIST | 0.5–7 | 5..60 | scaled Θ, K ⊂ {2..12} |
/// | VGG16* / MNIST | 20–100 | 5..60 | scaled |
/// | DenseNet121 / CIFAR-10 | 200–400 | 5..30 | scaled |
/// | DenseNet201 / CIFAR-10 | 350–900 | 5..30 | scaled |
/// | ConvNeXtLarge / CIFAR-100 | 25–150 | 3, 5 | scaled |
pub fn table2() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            model: ModelId::Lenet5,
            task_name: "synth-mnist",
            thetas: vec![0.01, 0.02, 0.05, 0.1, 0.2],
            batch: 32,
            ks: vec![2, 4, 6, 8, 10, 12],
            optimizer: OptimizerKind::paper_adam(),
            algos: vec![
                Algo::LinearFda,
                Algo::SketchFda,
                Algo::Synchronous,
                Algo::FedAdam,
            ],
            accuracy_targets: vec![0.88, 0.91],
        },
        ExperimentSpec {
            model: ModelId::Vgg16Star,
            task_name: "synth-mnist",
            thetas: vec![0.05, 0.1, 0.2, 0.5, 1.0],
            batch: 32,
            ks: vec![2, 4, 6, 8, 10, 12],
            optimizer: OptimizerKind::paper_adam(),
            algos: vec![
                Algo::LinearFda,
                Algo::SketchFda,
                Algo::Synchronous,
                Algo::FedAdam,
            ],
            accuracy_targets: vec![0.90, 0.93],
        },
        ExperimentSpec {
            model: ModelId::DenseNet121,
            task_name: "synth-cifar10",
            thetas: vec![0.2, 0.5, 1.0, 2.0, 4.0],
            batch: 32,
            ks: vec![2, 4, 6, 8],
            optimizer: OptimizerKind::paper_sgd_nm(0.01),
            algos: vec![
                Algo::LinearFda,
                Algo::SketchFda,
                Algo::Synchronous,
                Algo::FedAvgM,
            ],
            accuracy_targets: vec![0.78, 0.81],
        },
        ExperimentSpec {
            model: ModelId::DenseNet201,
            task_name: "synth-cifar10",
            thetas: vec![0.3, 0.6, 1.2, 2.5, 5.0],
            batch: 32,
            ks: vec![2, 4, 6, 8],
            optimizer: OptimizerKind::paper_sgd_nm(0.01),
            algos: vec![
                Algo::LinearFda,
                Algo::SketchFda,
                Algo::Synchronous,
                Algo::FedAvgM,
            ],
            accuracy_targets: vec![0.78, 0.80],
        },
        ExperimentSpec {
            model: ModelId::TransferHead,
            task_name: "synth-cifar100-features",
            thetas: vec![0.2, 0.5, 1.0, 2.0],
            batch: 32,
            ks: vec![3, 5],
            optimizer: OptimizerKind::paper_adamw(),
            algos: vec![Algo::LinearFda, Algo::SketchFda, Algo::Synchronous],
            accuracy_targets: vec![0.76],
        },
    ]
}

/// Looks up the Table 2 row for a model.
pub fn spec_for(model: ModelId) -> ExperimentSpec {
    table2()
        .into_iter()
        .find(|s| s.model == model)
        .expect("every zoo model has a Table 2 row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_five_rows_like_the_paper() {
        let t = table2();
        assert_eq!(t.len(), 5);
        // One row per zoo model, in paper order.
        let models: Vec<ModelId> = t.iter().map(|s| s.model).collect();
        assert_eq!(models, ModelId::ALL.to_vec());
    }

    #[test]
    fn optimizers_match_paper_assignments() {
        let t = table2();
        assert!(matches!(t[0].optimizer, OptimizerKind::Adam { .. }));
        assert!(matches!(t[1].optimizer, OptimizerKind::Adam { .. }));
        assert!(matches!(
            t[2].optimizer,
            OptimizerKind::SgdMomentum { nesterov: true, .. }
        ));
        assert!(matches!(
            t[3].optimizer,
            OptimizerKind::SgdMomentum { nesterov: true, .. }
        ));
        assert!(matches!(t[4].optimizer, OptimizerKind::AdamW { .. }));
    }

    #[test]
    fn fedopt_partner_follows_local_optimizer() {
        // Paper: Adam rows compare against FedAdam, SGD-NM rows against
        // FedAvgM; the transfer row has no FedOpt baseline.
        let t = table2();
        assert!(t[0].algos.contains(&Algo::FedAdam));
        assert!(t[1].algos.contains(&Algo::FedAdam));
        assert!(t[2].algos.contains(&Algo::FedAvgM));
        assert!(t[3].algos.contains(&Algo::FedAvgM));
        assert!(!t[4].algos.contains(&Algo::FedAdam));
        assert!(!t[4].algos.contains(&Algo::FedAvgM));
    }

    #[test]
    fn tasks_build_and_match_models() {
        for spec in table2() {
            let task = spec.make_task();
            assert_eq!(task.dim(), spec.model.input_shape().len());
            assert_eq!(task.classes(), spec.model.classes());
        }
    }

    #[test]
    fn spec_lookup() {
        let s = spec_for(ModelId::DenseNet201);
        assert_eq!(s.task_name, "synth-cifar10");
    }
}
