//! FDA over real OS threads.
//!
//! The simulator executes workers in lock-step on one thread; this module
//! runs the **identical protocol** with one thread per worker and the
//! rendezvous AllReduce of [`fda_comm::ThreadedReducer`] — no coordinator,
//! exactly the deployment §1/Figure 1 of the paper describes. It exists to
//! demonstrate that nothing in the FDA design depends on the simulator's
//! sequential convenience:
//!
//! * local state vectors are genuinely exchanged (flattened to `f32`
//!   buffers, the same layout `crate::wire` frames for transport);
//! * every worker evaluates `H(S̄) > Θ` on the *same* averaged buffer, so
//!   the synchronization decision is consistent cluster-wide without any
//!   extra round;
//! * model AllReduces leave all replicas bit-identical.
//!
//! Workers reduce through [`ThreadedReducer::allreduce_indexed`] with
//! their stable worker ids, so accumulation order is worker order — the
//! same copy-first association as the simulator's
//! `SimNetwork::allreduce_mean`. A threaded run is therefore
//! bit-reproducible across invocations *and* matches the sequential
//! simulator's trajectory (tests assert both), while the reduction itself
//! executes chunk-parallel across the participating threads.

use crate::monitor::{LinearMonitor, LocalState, SketchMonitor, StateSummary, VarianceMonitor};
use fda_comm::ThreadedReducer;
use fda_data::batch::BatchSampler;
use fda_data::{Partition, TaskData};
use fda_nn::zoo::ModelId;
use fda_optim::OptimizerKind;
use fda_sketch::SketchConfig;
use fda_tensor::{vector, Rng};

/// Which monitor the threaded driver runs (the two practical variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedVariant {
    /// LinearFDA.
    Linear,
    /// SketchFDA with the model-scaled sketch.
    Sketch,
}

/// Configuration for a threaded FDA run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedFdaConfig {
    /// Model to train.
    pub model: ModelId,
    /// Number of worker threads `K`.
    pub workers: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Local optimizer.
    pub optimizer: OptimizerKind,
    /// Data distribution.
    pub partition: Partition,
    /// Variance threshold Θ.
    pub theta: f32,
    /// Monitor variant.
    pub variant: ThreadedVariant,
    /// Steps to run (every worker performs exactly this many).
    pub steps: u64,
    /// Master seed (same convention as [`crate::cluster::Cluster`]).
    pub seed: u64,
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedFdaReport {
    /// Synchronizations performed.
    pub syncs: u64,
    /// Total bytes across workers (analytic accounting, same convention
    /// as the simulator).
    pub comm_bytes: u64,
    /// Final consensus-averaged parameters (identical on all workers right
    /// after a sync; otherwise the average of the final replicas).
    pub final_params: Vec<f32>,
    /// Each worker's final replica (for consensus checks).
    pub worker_params: Vec<Vec<f32>>,
}

/// Flattens a state into the AllReduce buffer layout
/// `[‖u‖², summary…]` (averaging is component-wise for every variant).
fn flatten_state(state: &LocalState, out: &mut Vec<f32>) {
    out.clear();
    out.push(state.drift_sq_norm);
    match &state.summary {
        StateSummary::Linear(p) => out.push(*p),
        StateSummary::Sketch(sk) => out.extend_from_slice(sk.as_slice()),
        StateSummary::Exact(v) => out.extend_from_slice(v),
    }
}

/// Rebuilds a state from the averaged buffer, using `template` for shape.
fn unflatten_state(buf: &[f32], template: &LocalState) -> LocalState {
    let drift_sq_norm = buf[0];
    let summary = match &template.summary {
        StateSummary::Linear(_) => StateSummary::Linear(buf[1]),
        StateSummary::Sketch(sk) => {
            let mut s = fda_sketch::AmsSketch::zeros(sk.rows(), sk.cols());
            s.as_mut_slice().copy_from_slice(&buf[1..]);
            StateSummary::Sketch(s)
        }
        StateSummary::Exact(_) => StateSummary::Exact(buf[1..].to_vec()),
    };
    LocalState {
        drift_sq_norm,
        summary,
    }
}

/// Runs FDA with one OS thread per worker; blocks until completion.
///
/// # Panics
/// Panics on degenerate configs (zero workers/steps) or if a worker
/// thread panics.
pub fn run_threaded_fda(config: ThreadedFdaConfig, task: &TaskData) -> ThreadedFdaReport {
    assert!(config.workers >= 1, "threaded fda: need workers");
    assert!(config.steps >= 1, "threaded fda: need steps");
    let k = config.workers;
    let template = config.model.build(config.seed, 0);
    let dim = template.param_count();
    let w0 = template.params_flat();
    let shards = config
        .partition
        .shards(&task.train, k, config.seed ^ 0x5AAD);

    let state_reducer = ThreadedReducer::new(k);
    let model_reducer = ThreadedReducer::new(k);
    let sketch_config = SketchConfig::scaled_for(dim);

    let results: Vec<(u64, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(worker, shard)| {
                let state_reducer = state_reducer.clone();
                let model_reducer = model_reducer.clone();
                let w0 = w0.clone();
                let train = &task.train;
                scope.spawn(move || {
                    let mut model = config
                        .model
                        .build(config.seed, config.seed ^ (worker as u64 + 1));
                    model.load_params(&w0);
                    let mut optimizer = config.optimizer.build(dim);
                    let mut sampler = BatchSampler::new(
                        shard,
                        config.batch_size,
                        Rng::new(config.seed ^ 0xBA7C4).split(worker as u64),
                    );
                    let mut monitor: Box<dyn VarianceMonitor> = match config.variant {
                        ThreadedVariant::Linear => Box::new(LinearMonitor::new()),
                        ThreadedVariant::Sketch => Box::new(SketchMonitor::new(sketch_config, dim)),
                    };
                    let mut w_sync = w0.clone();
                    let mut params = vec![0.0f32; dim];
                    let mut grads = vec![0.0f32; dim];
                    let mut drift = vec![0.0f32; dim];
                    let mut state_buf: Vec<f32> = Vec::new();
                    let mut syncs = 0u64;

                    let channels = model.input_shape().map(|s| s.c);
                    for _ in 0..config.steps {
                        // (1) Local training: batch gathered in the
                        // model's native layout (channel-major for conv
                        // models), no per-step conversion pass.
                        let (x, y) = sampler.sample_native(train, channels);
                        model.compute_gradients_native(x, &y);
                        model.copy_params_to(&mut params);
                        model.copy_grads_to(&mut grads);
                        optimizer.step(&mut params, &grads);
                        model.load_params(&params);

                        // (2) Local state from the drift.
                        vector::sub_into(&params, &w_sync, &mut drift);
                        let state = monitor.local_state(&drift);

                        // (3) Real state AllReduce, worker-order
                        // accumulation (deterministic).
                        flatten_state(&state, &mut state_buf);
                        state_reducer.allreduce_indexed(worker, &mut state_buf);
                        let avg = unflatten_state(&state_buf, &state);

                        // (4) Consistent conditional synchronization: all
                        // workers see the identical averaged buffer, so the
                        // comparison agrees everywhere.
                        if monitor.estimate(&avg) > config.theta {
                            model_reducer.allreduce_indexed(worker, &mut params);
                            model.load_params(&params);
                            monitor.on_sync(&params, &w_sync);
                            w_sync.copy_from_slice(&params);
                            syncs += 1;
                        }
                    }
                    model.copy_params_to(&mut params);
                    (syncs, params)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let syncs = results[0].0;
    assert!(
        results.iter().all(|(s, _)| *s == syncs),
        "workers must agree on the sync schedule"
    );
    let worker_params: Vec<Vec<f32>> = results.into_iter().map(|(_, p)| p).collect();
    let refs: Vec<&[f32]> = worker_params.iter().map(|p| p.as_slice()).collect();
    let final_params = vector::mean(&refs);

    // Analytic byte accounting, same convention as the simulator.
    let state_bytes = match config.variant {
        ThreadedVariant::Linear => 8u64,
        ThreadedVariant::Sketch => sketch_config.byte_size() as u64 + 4,
    };
    let comm_bytes = if k == 1 {
        0
    } else {
        k as u64 * (config.steps * state_bytes + syncs * dim as u64 * 4)
    };
    ThreadedFdaReport {
        syncs,
        comm_bytes,
        final_params,
        worker_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    fn config(theta: f32, variant: ThreadedVariant) -> ThreadedFdaConfig {
        ThreadedFdaConfig {
            model: ModelId::Lenet5,
            workers: 3,
            batch_size: 16,
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            theta,
            variant,
            steps: 40,
            seed: 7,
        }
    }

    #[test]
    fn workers_agree_and_sync_under_tight_theta() {
        let task = tiny_task();
        let report = run_threaded_fda(config(0.01, ThreadedVariant::Linear), &task);
        assert!(report.syncs > 0, "tight Θ must trigger syncs");
        assert!(report.comm_bytes > 0);
    }

    #[test]
    fn loose_theta_never_syncs_and_charges_states_only() {
        let task = tiny_task();
        let report = run_threaded_fda(config(f32::MAX, ThreadedVariant::Linear), &task);
        assert_eq!(report.syncs, 0);
        assert_eq!(report.comm_bytes, 3 * 40 * 8);
    }

    #[test]
    fn sketch_variant_runs_and_syncs_consistently() {
        let task = tiny_task();
        let report = run_threaded_fda(config(0.01, ThreadedVariant::Sketch), &task);
        assert!(report.syncs > 0);
        // State payload dominates the linear variant's.
        assert!(report.comm_bytes > 3 * 40 * 8);
    }

    #[test]
    fn theta_zero_leaves_replicas_identical() {
        // Syncing every step keeps every replica equal to the consensus at
        // the end of every step.
        let task = tiny_task();
        let report = run_threaded_fda(config(0.0, ThreadedVariant::Linear), &task);
        assert_eq!(report.syncs, 40);
        // All replicas end bit-identical (they all load the same AllReduce
        // result). Note: `final_params` is their mean, which can differ in
        // the last ulp (f32 sum-then-divide), so compare replicas directly.
        for p in &report.worker_params {
            assert_eq!(p, &report.worker_params[0], "replicas must agree");
        }
        for (a, b) in report.final_params.iter().zip(&report.worker_params[0]) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
        }
    }

    /// With worker-order (indexed) accumulation, two identical threaded
    /// runs must be bit-identical — no arrival-order jitter.
    #[test]
    fn threaded_runs_are_bit_reproducible() {
        let task = tiny_task();
        let a = run_threaded_fda(config(0.02, ThreadedVariant::Linear), &task);
        let b = run_threaded_fda(config(0.02, ThreadedVariant::Linear), &task);
        assert_eq!(a.syncs, b.syncs);
        assert_eq!(a.worker_params, b.worker_params, "trajectories diverged");
    }

    /// The real-threads runtime now performs the *same arithmetic in the
    /// same order* as the sequential simulator: same seeds ⇒ same sync
    /// schedule and identical final replicas, not just statistically
    /// similar ones.
    #[test]
    fn threaded_matches_simulator_trajectory() {
        use crate::cluster::ClusterConfig;
        use crate::fda::{Fda, FdaConfig};
        use crate::strategy::Strategy;

        let task = tiny_task();
        let cfg = config(0.02, ThreadedVariant::Linear);
        let report = run_threaded_fda(cfg, &task);

        let mut sim = Fda::new(
            FdaConfig::linear(cfg.theta),
            ClusterConfig {
                model: cfg.model,
                workers: cfg.workers,
                batch_size: cfg.batch_size,
                optimizer: cfg.optimizer,
                partition: cfg.partition,
                seed: cfg.seed,
                parallel: false,
            },
            &task,
        );
        for _ in 0..cfg.steps {
            sim.step();
        }
        assert_eq!(report.syncs, sim.syncs(), "sync schedules diverged");
        assert!(report.syncs > 0, "test should exercise syncs");
        for (k, params) in report.worker_params.iter().enumerate() {
            assert_eq!(
                params,
                &sim.cluster().worker(k).params(),
                "worker {k} diverged from the simulator"
            );
        }
    }

    #[test]
    fn threaded_training_actually_learns() {
        let task = tiny_task();
        let mut cfg = config(0.05, ThreadedVariant::Linear);
        cfg.steps = 250;
        let report = run_threaded_fda(cfg, &task);
        let mut eval = ModelId::Lenet5.build(0, 0);
        eval.load_params(&report.final_params);
        let acc = eval.evaluate_batched(task.test.features(), task.test.labels(), 128);
        assert!(acc > 0.5, "threaded FDA should learn: accuracy {acc}");
    }
}
