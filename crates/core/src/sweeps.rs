//! (K, Θ, algorithm) grid runners — the machinery behind Figures 3–6 and
//! 8–11, where each figure aggregates many training runs.

use crate::baselines::{FedOpt, LocalSgd, Synchronous};
use crate::cluster::ClusterConfig;
use crate::fda::{Fda, FdaConfig, FdaVariant};
use crate::harness::{run_to_target, RunConfig, RunResult};
use crate::strategy::Strategy;
use fda_data::{Partition, TaskData};
use fda_nn::zoo::ModelId;
use fda_optim::OptimizerKind;

/// Algorithm selector for sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// LinearFDA (needs Θ).
    LinearFda,
    /// SketchFDA with the paper's default sketch (needs Θ).
    SketchFda,
    /// Oracle-monitor FDA (ablations; needs Θ).
    ExactFda,
    /// Bulk-synchronous baseline.
    Synchronous,
    /// Local-SGD with fixed period τ.
    LocalSgd(u64),
    /// FedAvg with E = 1.
    FedAvg,
    /// FedAvgM with E = 1 (paper §4.1).
    FedAvgM,
    /// FedAdam with E = 1 (paper §4.1).
    FedAdam,
}

impl Algo {
    /// Display name used in tables (matches the paper's legends).
    pub fn name(&self) -> String {
        match self {
            Algo::LinearFda => "LinearFDA".into(),
            Algo::SketchFda => "SketchFDA".into(),
            Algo::ExactFda => "ExactFDA".into(),
            Algo::Synchronous => "Synchronous".into(),
            Algo::LocalSgd(tau) => format!("LocalSGD(tau={tau})"),
            Algo::FedAvg => "FedAvg".into(),
            Algo::FedAvgM => "FedAvgM".into(),
            Algo::FedAdam => "FedAdam".into(),
        }
    }

    /// True iff the algorithm consumes a Θ threshold.
    pub fn uses_theta(&self) -> bool {
        matches!(self, Algo::LinearFda | Algo::SketchFda | Algo::ExactFda)
    }

    /// Instantiates the strategy over a fresh cluster.
    pub fn build(
        &self,
        theta: f32,
        cluster_config: ClusterConfig,
        task: &TaskData,
    ) -> Box<dyn Strategy> {
        match self {
            Algo::LinearFda => Box::new(Fda::new(FdaConfig::linear(theta), cluster_config, task)),
            Algo::SketchFda => Box::new(Fda::new(
                FdaConfig::sketch_auto(theta),
                cluster_config,
                task,
            )),
            Algo::ExactFda => Box::new(Fda::new(
                FdaConfig {
                    variant: FdaVariant::Exact,
                    theta,
                },
                cluster_config,
                task,
            )),
            Algo::Synchronous => Box::new(Synchronous::new(cluster_config, task)),
            Algo::LocalSgd(tau) => Box::new(LocalSgd::new(*tau, cluster_config, task)),
            Algo::FedAvg => Box::new(FedOpt::fedavg(1, cluster_config, task)),
            Algo::FedAvgM => Box::new(FedOpt::fedavgm(1, cluster_config, task)),
            Algo::FedAdam => Box::new(FedOpt::fedadam(1, cluster_config, task)),
        }
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Algorithm display name.
    pub algo: String,
    /// Number of workers.
    pub k: usize,
    /// Θ used (0 for algorithms that ignore it).
    pub theta: f32,
    /// Heterogeneity label.
    pub partition: String,
    /// The run outcome.
    pub result: RunResult,
}

/// Grid specification shared by the figure benches.
#[derive(Clone)]
pub struct GridSpec {
    /// Model under training.
    pub model: ModelId,
    /// Local optimizer.
    pub optimizer: OptimizerKind,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Data distribution.
    pub partition: Partition,
    /// Worker counts to sweep.
    pub ks: Vec<usize>,
    /// Θ values to sweep (FDA algorithms only; others run once per K).
    pub thetas: Vec<f32>,
    /// Algorithms to run.
    pub algos: Vec<Algo>,
    /// Run stopping rule.
    pub run: RunConfig,
    /// Base seed.
    pub seed: u64,
    /// Run worker local steps on scoped threads (bit-identical to the
    /// sequential path; see [`crate::cluster::ClusterConfig::parallel`]).
    pub parallel: bool,
}

/// Runs the full grid: FDA algorithms get every (K, Θ) pair; baselines run
/// once per K (they have no Θ).
pub fn run_grid(spec: &GridSpec, task: &TaskData) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &k in &spec.ks {
        for algo in &spec.algos {
            let thetas: &[f32] = if algo.uses_theta() {
                &spec.thetas
            } else {
                &[0.0]
            };
            for &theta in thetas {
                let cc = ClusterConfig {
                    model: spec.model,
                    workers: k,
                    batch_size: spec.batch_size,
                    optimizer: spec.optimizer,
                    partition: spec.partition,
                    seed: spec.seed ^ (k as u64).wrapping_mul(0x9E37_79B9),
                    parallel: spec.parallel,
                };
                let mut strategy = algo.build(theta, cc, task);
                let result = run_to_target(strategy.as_mut(), task, &spec.run);
                out.push(SweepPoint {
                    algo: algo.name(),
                    k,
                    theta,
                    partition: spec.partition.label(),
                    result,
                });
            }
        }
    }
    out
}

/// Filters reached runs of one algorithm out of a sweep.
pub fn reached_of<'a>(points: &'a [SweepPoint], algo: &str) -> Vec<&'a SweepPoint> {
    points
        .iter()
        .filter(|p| p.algo == algo && p.result.reached)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    #[test]
    fn grid_runs_all_cells() {
        let task = tiny_task();
        let spec = GridSpec {
            model: ModelId::Lenet5,
            optimizer: OptimizerKind::paper_adam(),
            batch_size: 16,
            partition: Partition::Iid,
            ks: vec![2, 3],
            thetas: vec![0.2, 1.0],
            algos: vec![Algo::LinearFda, Algo::Synchronous],
            run: RunConfig::to_target(0.5, 120),
            seed: 11,
            parallel: false,
        };
        let points = run_grid(&spec, &task);
        // LinearFda: 2 K × 2 Θ = 4; Synchronous: 2 K × 1 = 2.
        assert_eq!(points.len(), 6);
        assert_eq!(points.iter().filter(|p| p.algo == "LinearFDA").count(), 4);
        assert_eq!(points.iter().filter(|p| p.algo == "Synchronous").count(), 2);
    }

    #[test]
    fn algo_names_and_theta_usage() {
        assert!(Algo::LinearFda.uses_theta());
        assert!(Algo::SketchFda.uses_theta());
        assert!(!Algo::Synchronous.uses_theta());
        assert!(!Algo::FedAdam.uses_theta());
        assert_eq!(Algo::LocalSgd(16).name(), "LocalSGD(tau=16)");
    }

    #[test]
    fn reached_of_filters() {
        let task = tiny_task();
        let spec = GridSpec {
            model: ModelId::Lenet5,
            optimizer: OptimizerKind::paper_adam(),
            batch_size: 16,
            partition: Partition::Iid,
            ks: vec![2],
            thetas: vec![0.5],
            algos: vec![Algo::LinearFda],
            run: RunConfig::to_target(0.35, 200),
            seed: 3,
            parallel: false,
        };
        let points = run_grid(&spec, &task);
        let reached = reached_of(&points, "LinearFDA");
        assert!(reached.len() <= points.len());
    }
}
