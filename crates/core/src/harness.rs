//! Training runs and the paper's evaluation methodology (§4.1).
//!
//! A *training run* executes one DDL algorithm on one (model, dataset)
//! pair **until the global model reaches a test-accuracy target** (or a
//! step cap). Its cost is the pair the paper plots everywhere:
//!
//! * **communication** — total bytes transmitted by all workers;
//! * **computation** — in-parallel learning steps.
//!
//! Evaluation itself is free (it does not transmit training data or model
//! updates) and is performed on the global model: the consensus model when
//! one exists, the average of worker models otherwise.

use crate::strategy::Strategy;
use fda_data::TaskData;
use fda_nn::Sequential;
use std::path::PathBuf;

/// Stop conditions and evaluation cadence for a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The test-accuracy target that ends the run ("Accuracy Target").
    pub accuracy_target: f32,
    /// Hard cap on in-parallel steps (non-convergence guard).
    pub max_steps: u64,
    /// Steps between test-accuracy evaluations.
    pub eval_every: u64,
    /// Mini-batch size used during evaluation forward passes.
    pub eval_batch: usize,
    /// Cap on train-split samples used for the train-accuracy trace
    /// (Figure 7); `0` disables train-accuracy tracking.
    pub train_eval_samples: usize,
    /// Per-round telemetry JSONL sink (see `fda_obs::event`); `None`
    /// disables telemetry. Strategies that don't emit telemetry ignore it.
    pub telemetry: Option<PathBuf>,
}

impl RunConfig {
    /// A sensible default: evaluate every 10 steps, cap at `max_steps`.
    pub fn to_target(accuracy_target: f32, max_steps: u64) -> RunConfig {
        RunConfig {
            accuracy_target,
            max_steps,
            eval_every: 10,
            eval_batch: 256,
            train_eval_samples: 0,
            telemetry: None,
        }
    }

    /// Enables the Figure-7 style train-accuracy trace.
    pub fn with_train_trace(mut self, samples: usize) -> RunConfig {
        self.train_eval_samples = samples;
        self
    }

    /// Streams per-round telemetry events to `path` as versioned JSONL.
    pub fn with_telemetry(mut self, path: impl Into<PathBuf>) -> RunConfig {
        self.telemetry = Some(path.into());
        self
    }
}

/// One point of the evaluation trace.
#[derive(Debug, Clone, Copy)]
pub struct TracePoint {
    /// In-parallel steps at evaluation time.
    pub step: u64,
    /// Total communication so far (bytes).
    pub comm_bytes: u64,
    /// Synchronizations so far.
    pub syncs: u64,
    /// Test accuracy of the global model.
    pub test_acc: f32,
    /// Train accuracy of the global model (NaN when disabled).
    pub train_acc: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm display name.
    pub strategy: String,
    /// Whether the accuracy target was reached before the step cap.
    pub reached: bool,
    /// In-parallel steps consumed (the paper's computation metric).
    pub steps: u64,
    /// Total bytes transmitted by all workers (communication metric).
    pub comm_bytes: u64,
    /// Number of model synchronizations.
    pub syncs: u64,
    /// Best test accuracy observed.
    pub best_test_acc: f32,
    /// Evaluation trace (one point per evaluation).
    pub trace: Vec<TracePoint>,
}

impl RunResult {
    /// Communication in gigabytes (the paper's x-axis unit).
    pub fn comm_gb(&self) -> f64 {
        self.comm_bytes as f64 / 1e9
    }

    /// The first trace point at or above `target` test accuracy.
    ///
    /// Lets one run to a high target answer "what did it cost to reach
    /// every lower target?" — how the multi-target panels of Figures 4–6
    /// are produced without re-running the grid per target.
    pub fn cost_at(&self, target: f32) -> Option<TracePoint> {
        self.trace.iter().copied().find(|p| p.test_acc >= target)
    }
}

/// Runs `strategy` until the target accuracy or the step cap.
///
/// The evaluation model is rebuilt from the cluster's [`fda_nn::zoo::ModelId`]
/// and loaded with the strategy's global parameters at each evaluation
/// point; dropout is inactive in eval mode so the measurement is
/// deterministic.
pub fn run_to_target(strategy: &mut dyn Strategy, task: &TaskData, cfg: &RunConfig) -> RunResult {
    assert!(cfg.max_steps > 0, "run: max_steps must be positive");
    assert!(cfg.eval_every > 0, "run: eval_every must be positive");
    let model_id = strategy.cluster().config().model;
    let mut eval_model = model_id.build(0, 0);
    let mut best_test = 0.0f32;
    let mut trace = Vec::new();
    let mut reached = false;

    let telemetry_attached = match &cfg.telemetry {
        Some(path) => {
            let writer = fda_obs::JsonlWriter::create(path)
                .unwrap_or_else(|e| panic!("run: cannot create telemetry file {path:?}: {e}"));
            strategy.set_telemetry(Some(writer))
        }
        None => false,
    };

    // Evaluate the untrained global model once so every trace starts at
    // step zero (useful for Figure-7 style plots).
    let p0 = evaluate(strategy, task, cfg, &mut eval_model);
    best_test = best_test.max(p0.test_acc);
    reached |= p0.test_acc >= cfg.accuracy_target;
    trace.push(p0);

    while !reached && strategy.steps() < cfg.max_steps {
        for _ in 0..cfg.eval_every {
            strategy.step();
            if strategy.steps() >= cfg.max_steps {
                break;
            }
        }
        let point = evaluate(strategy, task, cfg, &mut eval_model);
        best_test = best_test.max(point.test_acc);
        reached |= point.test_acc >= cfg.accuracy_target;
        trace.push(point);
    }

    if telemetry_attached {
        strategy.set_telemetry(None);
    }

    RunResult {
        strategy: strategy.name(),
        reached,
        steps: strategy.steps(),
        comm_bytes: strategy.comm_bytes(),
        syncs: strategy.syncs(),
        best_test_acc: best_test,
        trace,
    }
}

fn evaluate(
    strategy: &mut dyn Strategy,
    task: &TaskData,
    cfg: &RunConfig,
    eval_model: &mut Sequential,
) -> TracePoint {
    let params = strategy.global_params();
    eval_model.load_params(&params);
    let test_acc =
        eval_model.evaluate_batched(task.test.features(), task.test.labels(), cfg.eval_batch);
    let train_acc = if cfg.train_eval_samples > 0 {
        let n = cfg.train_eval_samples.min(task.train.len());
        let idx: Vec<usize> = (0..n).collect();
        let (x, y) = task.train.gather(&idx);
        eval_model.evaluate_batched(&x, &y, cfg.eval_batch)
    } else {
        f32::NAN
    };
    TracePoint {
        step: strategy.steps(),
        comm_bytes: strategy.comm_bytes(),
        syncs: strategy.syncs(),
        test_acc,
        train_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Synchronous;
    use crate::cluster::ClusterConfig;
    use crate::fda::{Fda, FdaConfig};
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 400,
            n_test: 150,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    #[test]
    fn synchronous_reaches_easy_target() {
        let task = tiny_task();
        let mut s = Synchronous::new(ClusterConfig::small_test(3), &task);
        let res = run_to_target(&mut s, &task, &RunConfig::to_target(0.60, 600));
        assert!(res.reached, "easy target should be reachable: {res:?}");
        assert!(res.steps <= 600);
        assert!(res.comm_bytes > 0);
        assert!(!res.trace.is_empty());
    }

    #[test]
    fn unreachable_target_hits_cap() {
        let task = tiny_task();
        let mut s = Synchronous::new(ClusterConfig::small_test(2), &task);
        let res = run_to_target(&mut s, &task, &RunConfig::to_target(1.01, 30));
        assert!(!res.reached);
        assert_eq!(res.steps, 30);
    }

    #[test]
    fn fda_beats_synchronous_on_communication_at_equal_target() {
        // The paper's headline claim, in miniature: to the same accuracy
        // target, FDA transmits far less than Synchronous.
        let task = tiny_task();
        let target = 0.60;
        let cfg = RunConfig::to_target(target, 800);

        let mut sync = Synchronous::new(ClusterConfig::small_test(3), &task);
        let sync_res = run_to_target(&mut sync, &task, &cfg);

        let mut fda = Fda::new(FdaConfig::linear(0.5), ClusterConfig::small_test(3), &task);
        let fda_res = run_to_target(&mut fda, &task, &cfg);

        assert!(
            sync_res.reached && fda_res.reached,
            "{sync_res:?} {fda_res:?}"
        );
        assert!(
            fda_res.comm_bytes < sync_res.comm_bytes / 2,
            "FDA should save communication: {} vs {}",
            fda_res.comm_bytes,
            sync_res.comm_bytes
        );
    }

    #[test]
    fn trace_is_monotone_in_step_and_bytes() {
        let task = tiny_task();
        let mut s = Synchronous::new(ClusterConfig::small_test(2), &task);
        let res = run_to_target(&mut s, &task, &RunConfig::to_target(0.9, 100));
        for w in res.trace.windows(2) {
            assert!(w[0].step <= w[1].step);
            assert!(w[0].comm_bytes <= w[1].comm_bytes);
        }
    }

    #[test]
    fn train_trace_enabled_records_train_accuracy() {
        let task = tiny_task();
        let mut s = Synchronous::new(ClusterConfig::small_test(2), &task);
        let cfg = RunConfig::to_target(0.9, 40).with_train_trace(100);
        let res = run_to_target(&mut s, &task, &cfg);
        assert!(res.trace.iter().all(|p| !p.train_acc.is_nan()));
    }
}
