//! Asynchronous FDA (§3.3).
//!
//! The paper sketches an asynchronous mode: one node acts as *coordinator*,
//! workers push their small local states whenever they finish a step, and
//! the coordinator re-evaluates `H` over the **most recent state from each
//! worker** on every arrival. Synchronization is requested when the
//! estimate exceeds Θ. The benefit is straggler tolerance — fast workers
//! keep training while slow ones lag — not bandwidth (states are tiny
//! either way).
//!
//! This module reproduces that design as a virtual-time event simulation:
//! each worker has its own step duration; events are step completions; the
//! coordinator sees states in completion order. A synchronization is a
//! rendezvous: it happens at the moment the *last* worker finishes its
//! in-flight step (models cannot be averaged mid-step).

use crate::cluster::{Cluster, ClusterConfig};
use crate::monitor::{LocalState, VarianceMonitor};
use fda_data::TaskData;
use fda_tensor::{vector, Rng};

/// Outcome of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncRunReport {
    /// Per-worker completed steps (heterogeneous by design).
    pub steps_per_worker: Vec<u64>,
    /// Number of synchronizations triggered by the coordinator.
    pub syncs: u64,
    /// Total bytes (states to coordinator + model AllReduces).
    pub comm_bytes: u64,
    /// Virtual time at the end of the run (seconds).
    pub virtual_time: f64,
    /// Final exact model variance (should be ≤ Θ-ish between syncs).
    pub final_variance: f32,
}

/// Coordinator-based asynchronous FDA.
pub struct AsyncFda {
    cluster: Cluster,
    monitor: Box<dyn VarianceMonitor>,
    theta: f32,
    /// Per-worker step durations in virtual seconds (stragglers = larger).
    step_times: Vec<f64>,
    w_sync: Vec<f32>,
    latest_states: Vec<Option<LocalState>>,
    /// The state of a zero drift, cached at construction: workers that have
    /// not reported since the last sync still hold `w_sync`, and their
    /// summary is the same for every monitor instant (a zero drift sketches
    /// to zeros and projects to zero), so the coordinator reuses this
    /// instead of allocating a `d`-sized zero vector per arrival.
    zero_state: LocalState,
    /// Reused drift scratch for the reporting worker.
    drift_buf: Vec<f32>,
    clock: Vec<f64>,
    steps: Vec<u64>,
    syncs: u64,
    state_bytes: u64,
    extra_bytes: u64,
}

impl AsyncFda {
    /// Builds the asynchronous runner.
    ///
    /// `straggler_spread` ≥ 0 scales the per-worker slowdowns: worker step
    /// times are `1 + spread·uᵢ` (virtual seconds) with `uᵢ ∈ [0, 1)`.
    pub fn new(
        monitor: Box<dyn VarianceMonitor>,
        theta: f32,
        straggler_spread: f64,
        cluster_config: ClusterConfig,
        task: &TaskData,
    ) -> AsyncFda {
        assert!(theta >= 0.0, "async fda: Θ must be non-negative");
        assert!(straggler_spread >= 0.0, "async fda: spread must be >= 0");
        let cluster = Cluster::new(cluster_config, task);
        let k = cluster.workers();
        let mut rng = Rng::new(cluster.config().seed ^ 0xA57C);
        let step_times: Vec<f64> = (0..k)
            .map(|_| 1.0 + straggler_spread * rng.uniform_f64())
            .collect();
        let w_sync = cluster.worker(0).params();
        let state_bytes = monitor.state_bytes();
        let zero_state = monitor.local_state(&vec![0.0; cluster.dim()]);
        let drift_buf = vec![0.0; cluster.dim()];
        AsyncFda {
            cluster,
            monitor,
            theta,
            step_times,
            w_sync,
            latest_states: vec![None; k],
            zero_state,
            drift_buf,
            clock: vec![0.0; k],
            steps: vec![0; k],
            syncs: 0,
            state_bytes,
            extra_bytes: 0,
        }
    }

    /// Runs until every worker has completed at least `min_steps` steps;
    /// returns the report.
    pub fn run(&mut self, min_steps: u64) -> AsyncRunReport {
        let k = self.cluster.workers();
        while self.steps.iter().any(|&s| s < min_steps) {
            // Next event: the worker whose in-flight step completes first.
            let worker = (0..k)
                .min_by(|&a, &b| {
                    let ta = self.clock[a] + self.step_times[a];
                    let tb = self.clock[b] + self.step_times[b];
                    ta.partial_cmp(&tb).expect("finite clocks")
                })
                .expect("k >= 1");
            self.complete_step(worker);
        }
        AsyncRunReport {
            steps_per_worker: self.steps.clone(),
            syncs: self.syncs,
            comm_bytes: self.comm_bytes(),
            virtual_time: self.clock.iter().cloned().fold(0.0f64, f64::max),
            final_variance: self.cluster.exact_variance(),
        }
    }

    /// Total communication: states pushed to the coordinator plus model
    /// synchronizations (tracked by the cluster fabric).
    pub fn comm_bytes(&self) -> u64 {
        self.cluster.comm_bytes() + self.extra_bytes
    }

    /// Synchronizations so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Per-worker completed steps (exposes straggler skew).
    pub fn steps_per_worker(&self) -> &[u64] {
        &self.steps
    }

    fn complete_step(&mut self, worker: usize) {
        // Advance only this worker: one gradient step on its own batch.
        self.step_one_worker(worker);
        self.clock[worker] += self.step_times[worker];
        self.steps[worker] += 1;

        // Push the local state to the coordinator (point-to-point, so the
        // cost is one state payload, not an AllReduce).
        self.cluster
            .worker(worker)
            .model()
            .copy_params_to(&mut self.drift_buf);
        vector::sub_assign(&mut self.drift_buf, &self.w_sync);
        let state = self.monitor.local_state(&self.drift_buf);
        self.latest_states[worker] = Some(state);
        self.extra_bytes += self.state_bytes;

        // Coordinator decision over the most recent states of all workers
        // (workers that have not reported yet count as zero drift — they
        // still hold w_sync, and the cached zero state stands in without
        // cloning or allocating).
        let k = self.cluster.workers();
        let states: Vec<&LocalState> = (0..k)
            .map(|i| self.latest_states[i].as_ref().unwrap_or(&self.zero_state))
            .collect();
        let estimate = self.monitor.estimate(&LocalState::average_refs(&states));
        if estimate > self.theta {
            // Rendezvous: everyone finishes the current in-flight step
            // (virtual clocks align to the latest worker), then AllReduce.
            let rendezvous = self.clock.iter().cloned().fold(0.0f64, f64::max);
            for c in &mut self.clock {
                *c = rendezvous;
            }
            let w_prev = std::mem::take(&mut self.w_sync);
            let w_new = self.cluster.allreduce_models();
            self.monitor.on_sync(&w_new, &w_prev);
            self.w_sync = w_new;
            self.latest_states.iter_mut().for_each(|s| *s = None);
            self.syncs += 1;
        }
    }

    /// One local training step for a single worker (the synchronous
    /// cluster steps all workers; here we need per-worker granularity).
    fn step_one_worker(&mut self, worker: usize) {
        self.cluster.single_worker_step(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::LinearMonitor;
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 200,
            n_test: 64,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    #[test]
    fn stragglers_produce_uneven_step_counts() {
        let task = tiny_task();
        let mut a = AsyncFda::new(
            Box::new(LinearMonitor::new()),
            1e9, // never sync: pure pacing test
            3.0, // heavy straggler spread
            ClusterConfig::small_test(4),
            &task,
        );
        let report = a.run(10);
        let min = *report.steps_per_worker.iter().min().unwrap();
        let max = *report.steps_per_worker.iter().max().unwrap();
        assert!(min >= 10);
        assert!(
            max > min,
            "fast workers should complete more steps: {:?}",
            report.steps_per_worker
        );
    }

    #[test]
    fn zero_spread_behaves_like_round_robin() {
        let task = tiny_task();
        let mut a = AsyncFda::new(
            Box::new(LinearMonitor::new()),
            1e9,
            0.0,
            ClusterConfig::small_test(3),
            &task,
        );
        let report = a.run(5);
        let min = *report.steps_per_worker.iter().min().unwrap();
        let max = *report.steps_per_worker.iter().max().unwrap();
        assert!(max - min <= 1, "equal speeds ⇒ near-equal progress");
    }

    #[test]
    fn syncs_happen_and_zero_variance_after() {
        let task = tiny_task();
        let mut a = AsyncFda::new(
            Box::new(LinearMonitor::new()),
            0.02,
            1.0,
            ClusterConfig::small_test(3),
            &task,
        );
        let report = a.run(15);
        assert!(report.syncs > 0, "tight Θ must trigger syncs");
        // comm = states + model payloads; must include both components.
        assert!(report.comm_bytes > report.syncs * 3);
    }
}
