//! The simulated worker cluster.
//!
//! A [`Cluster`] holds `K` workers — each with its own model replica,
//! optimizer state and data-shard sampler — plus the byte-accounted
//! network. Every strategy in this crate (FDA and all baselines) drives the
//! same cluster API, so their communication/computation costs are measured
//! on identical footing.

use crate::pool::{SendPtr, WorkerPool};
use fda_comm::SimNetwork;
use fda_data::batch::BatchSampler;
use fda_data::{Dataset, Partition, TaskData};
use fda_nn::zoo::ModelId;
use fda_nn::Sequential;
use fda_optim::{Optimizer, OptimizerKind};
use fda_tensor::Rng;
use std::sync::Arc;

/// Configuration of a cluster: who trains what, on which data, how split.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which zoo model every worker replicates.
    pub model: ModelId,
    /// Number of workers `K`.
    pub workers: usize,
    /// Mini-batch size `b` (paper uses 32 everywhere).
    pub batch_size: usize,
    /// Local optimizer (the paper's `Optimize(w, B)`).
    pub optimizer: OptimizerKind,
    /// Data-heterogeneity scheme.
    pub partition: Partition,
    /// Master seed: controls init, shard split and batch order.
    pub seed: u64,
    /// Run the cluster phases on a persistent [`WorkerPool`].
    ///
    /// The pool is spawned **once** when the cluster is built (`K` lanes:
    /// `K − 1` long-lived OS threads plus the dispatching thread) and every
    /// step thereafter is a rendezvous — publish the phase job, run it on
    /// all lanes, block until the last lane finishes. No per-step thread
    /// spawning. The pool serves the local-step phase, the FDA drift/
    /// monitor-state phase, the chunked state reduction and the full-model
    /// AllReduce; the pool threads are joined when the cluster drops.
    ///
    /// Workers are independent between AllReduce points, every source of
    /// randomness is a per-worker stream, and all cross-worker reductions
    /// use a fixed worker-order association (chunk-parallel over the
    /// vector dimension, never over workers), so the pooled runtime is
    /// **bit-identical** to the sequential one — models, statistics, and
    /// therefore every synchronization decision. Keep `false` for the
    /// deterministic-by-construction single-thread path used as the
    /// bit-exactness reference, or on single-core hosts where the
    /// rendezvous adds (small, spawn-free) overhead.
    pub parallel: bool,
}

impl ClusterConfig {
    /// A small, fast configuration used by tests and examples.
    pub fn small_test(workers: usize) -> ClusterConfig {
        ClusterConfig {
            model: ModelId::Lenet5,
            workers,
            batch_size: 16,
            optimizer: OptimizerKind::paper_adam(),
            partition: Partition::Iid,
            seed: 7,
            parallel: false,
        }
    }

    /// Builds worker `k` of this configuration **standalone** — the exact
    /// replica (model init, `w_0`, dropout stream, shard, batch order,
    /// optimizer state) that [`Cluster::new`] would hold at index `k`.
    ///
    /// This is the construction a distributed driver uses: each OS process
    /// builds only its own worker from the shared config, and because
    /// every stream is derived deterministically from `self.seed` and `k`,
    /// a K-process deployment is bit-identical to the K-worker simulator.
    ///
    /// # Panics
    /// Panics if `k >= self.workers` or on model/dataset dimension
    /// mismatch.
    pub fn build_worker(&self, train: &Dataset, k: usize) -> Worker {
        assert!(
            k < self.workers,
            "build_worker: index {k} out of range for K = {}",
            self.workers
        );
        let shards = self
            .partition
            .shards(train, self.workers, self.seed ^ 0x5AAD);
        let template = self.model.build(self.seed, 0);
        assert_eq!(
            template.in_dim(),
            train.dim(),
            "cluster: model input ({}) != dataset dim ({})",
            template.in_dim(),
            train.dim()
        );
        let dim = template.param_count();
        let w0 = template.params_flat();
        make_worker(self, shards.into_iter().nth(k).expect("k < K"), k, &w0, dim)
    }
}

/// Builds one worker from its shard — shared by [`Cluster::new`] (which
/// maps it over all shards) and [`ClusterConfig::build_worker`] (which
/// builds a single worker for an out-of-process driver). All randomness is
/// a deterministic function of `(config.seed, k)`.
fn make_worker(
    config: &ClusterConfig,
    shard: Vec<usize>,
    k: usize,
    w0: &[f32],
    dim: usize,
) -> Worker {
    // Each worker gets its own dropout stream but the same w0.
    let mut model = config
        .model
        .build(config.seed, config.seed ^ (k as u64 + 1));
    model.load_params(w0);
    let sampler = BatchSampler::new(
        shard,
        config.batch_size,
        Rng::new(config.seed ^ 0xBA7C4).split(k as u64),
    );
    Worker {
        model,
        optimizer: config.optimizer.build(dim),
        sampler,
        params_buf: vec![0.0; dim],
        grads_buf: vec![0.0; dim],
    }
}

/// One worker: model replica + optimizer + shard sampler + scratch buffers.
pub struct Worker {
    model: Sequential,
    optimizer: Box<dyn Optimizer>,
    sampler: BatchSampler,
    // Scratch to avoid per-step allocation of two d-sized vectors.
    params_buf: Vec<f32>,
    grads_buf: Vec<f32>,
}

impl Worker {
    /// The worker's model (mutable; used for evaluation plumbing).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Immutable model access.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mini-batch steps in one epoch of this worker's shard.
    pub fn batches_per_epoch(&self) -> usize {
        self.sampler.batches_per_epoch()
    }

    /// Flat parameters of this worker's model.
    pub fn params(&self) -> Vec<f32> {
        self.model.params_flat()
    }

    /// One local training step for this worker: sample, backprop, optimize.
    /// Returns `(batch loss, #correct, #samples)`.
    ///
    /// The batch is gathered directly in the model's native activation
    /// layout (channel-major for convolutional models) and handed over by
    /// value, so the hot path performs no layout conversion and no input
    /// clone. Sampling order and values are identical to the sample-major
    /// path, so this is trajectory-preserving.
    ///
    /// Public so out-of-process drivers (the `fda_net` worker loop) run
    /// the *same* training code path as the simulator — any divergence
    /// would break their bit-identity proofs.
    pub fn step_once(&mut self, dataset: &Dataset) -> (f32, usize, usize) {
        let channels = self.model.input_shape().map(|s| s.c);
        let (x, y) = self.sampler.sample_native(dataset, channels);
        let (loss, correct) = self.model.compute_gradients_native(x, &y);
        self.model.copy_params_to(&mut self.params_buf);
        self.model.copy_grads_to(&mut self.grads_buf);
        self.optimizer.step(&mut self.params_buf, &self.grads_buf);
        self.model.load_params(&self.params_buf);
        (loss, correct, y.len())
    }
}

/// Per-step training telemetry summed across workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Mean (across workers) of the mini-batch training loss.
    pub mean_loss: f32,
    /// Mini-batch training accuracy pooled across workers.
    pub batch_accuracy: f32,
}

/// `K` workers and the fabric that connects them.
pub struct Cluster {
    config: ClusterConfig,
    dataset: Arc<Dataset>,
    workers: Vec<Worker>,
    net: SimNetwork,
    dim: usize,
    steps: u64,
    /// The persistent rendezvous pool (`Some` iff `config.parallel` and
    /// `K > 1`); spawned once here, joined on drop.
    pool: Option<WorkerPool>,
    /// Pool-owned per-worker `(loss, correct, samples)` results, reused
    /// every step (no per-step allocation).
    step_results: Vec<(f32, usize, usize)>,
    /// Reused output buffer for the pooled model average.
    avg_buf: Vec<f32>,
}

impl Cluster {
    /// Builds the cluster: replicate the model (`w_0` identical everywhere,
    /// Algorithm 1 line 1), partition the training set, seed per-worker
    /// batch streams.
    ///
    /// # Panics
    /// Panics on inconsistent configs (e.g. dataset/model dim mismatch).
    pub fn new(config: ClusterConfig, task: &TaskData) -> Cluster {
        let dataset = Arc::new(task.train.clone());
        let shards = config
            .partition
            .shards(&dataset, config.workers, config.seed ^ 0x5AAD);
        let template = config.model.build(config.seed, 0);
        assert_eq!(
            template.in_dim(),
            dataset.dim(),
            "cluster: model input ({}) != dataset dim ({})",
            template.in_dim(),
            dataset.dim()
        );
        let dim = template.param_count();
        let w0 = template.params_flat();
        let workers: Vec<Worker> = shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| make_worker(&config, shard, k, &w0, dim))
            .collect();
        let pool = (config.parallel && config.workers > 1).then(|| WorkerPool::new(config.workers));
        Cluster {
            net: SimNetwork::new(config.workers),
            step_results: vec![(0.0, 0, 0); config.workers],
            avg_buf: Vec::new(),
            pool,
            config,
            dataset,
            workers,
            dim,
            steps: 0,
        }
    }

    /// The persistent pool (if the cluster runs pooled) together with the
    /// worker slice — split borrows for strategies (FDA's monitor phase)
    /// that dispatch their own per-worker jobs.
    pub(crate) fn pool_and_workers(&mut self) -> (Option<&mut WorkerPool>, &mut [Worker]) {
        (self.pool.as_mut(), &mut self.workers)
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of workers `K`.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// In-parallel learning steps performed so far (the paper's
    /// computation metric: steps per worker, not multiplied by K).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total bytes transmitted by all workers (the paper's communication
    /// metric).
    pub fn comm_bytes(&self) -> u64 {
        self.net.total_bytes()
    }

    /// Mutable access to the fabric (strategies charge their traffic here).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// Worker accessor.
    pub fn worker(&self, k: usize) -> &Worker {
        &self.workers[k]
    }

    /// Mutable worker accessor.
    pub fn worker_mut(&mut self, k: usize) -> &mut Worker {
        &mut self.workers[k]
    }

    /// Mini-batch steps per epoch, defined (as in the paper's figures) by
    /// the shard size; workers have near-equal shards, so take the max.
    pub fn steps_per_epoch(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.batches_per_epoch())
            .max()
            .expect("cluster has workers")
    }

    /// One *in-parallel* local step: every worker samples a batch from its
    /// shard and applies its local optimizer (Algorithm 1 lines 4–5).
    ///
    /// With [`ClusterConfig::parallel`] set, workers run on the persistent
    /// [`WorkerPool`] lanes (one rendezvous, no thread spawning); each lane
    /// writes its `(loss, correct, samples)` into its own slot of a
    /// pool-owned results buffer, and the statistics are folded in worker
    /// order afterwards, so both modes produce bit-identical models,
    /// statistics and (therefore) synchronization decisions.
    pub fn local_step(&mut self) -> StepStats {
        let k = self.workers.len();
        let (loss_sum, correct_sum, sample_sum) = if let Some(pool) = &mut self.pool {
            let dataset: &Dataset = &self.dataset;
            let workers = SendPtr(self.workers.as_mut_ptr());
            let results = SendPtr(self.step_results.as_mut_ptr());
            pool.run(&|lane| {
                // SAFETY: each lane touches only its own worker and its
                // own results slot; the rendezvous orders these writes
                // before the fold below.
                let w = unsafe { &mut *workers.get().add(lane) };
                let slot = unsafe { &mut *results.get().add(lane) };
                *slot = w.step_once(dataset);
            });
            self.step_results
                .iter()
                .fold((0.0f32, 0usize, 0usize), |(l, c, s), &(wl, wc, ws)| {
                    (l + wl, c + wc, s + ws)
                })
        } else {
            let mut acc = (0.0f32, 0usize, 0usize);
            for w in &mut self.workers {
                let (loss, correct, samples) = w.step_once(&self.dataset);
                acc = (acc.0 + loss, acc.1 + correct, acc.2 + samples);
            }
            acc
        };
        self.steps += 1;
        StepStats {
            mean_loss: loss_sum / k as f32,
            batch_accuracy: correct_sum as f32 / sample_sum.max(1) as f32,
        }
    }

    /// Loads the same parameter vector into every worker — e.g. a
    /// pre-trained model for fine-tuning scenarios (Figure 13). This is a
    /// (re-)initialization, not training traffic: no bytes are charged,
    /// matching the paper's convention that dataset/base-model staging is
    /// outside the training communication budget.
    ///
    /// # Panics
    /// Panics if the vector length differs from the model dimension.
    pub fn load_global(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.dim, "load_global: dimension mismatch");
        if let Some(pool) = &mut self.pool {
            let workers = SendPtr(self.workers.as_mut_ptr());
            pool.run(&|lane| {
                // SAFETY: lane-private worker.
                let w = unsafe { &mut *workers.get().add(lane) };
                w.model.load_params(params);
            });
        } else {
            for w in &mut self.workers {
                w.model.load_params(params);
            }
        }
    }

    /// One local step for a **single** worker (used by the asynchronous
    /// variant, where workers progress at their own pace). Does not bump
    /// the in-parallel step counter — async progress is per-worker.
    pub fn single_worker_step(&mut self, k: usize) -> StepStats {
        let (loss, correct, samples) = self.workers[k].step_once(&self.dataset);
        StepStats {
            mean_loss: loss,
            batch_accuracy: correct as f32 / samples.max(1) as f32,
        }
    }

    /// Synchronizes all models to their average via AllReduce, charging
    /// `d·4` bytes per worker. Returns the new global model.
    ///
    /// Pooled mode performs the same arithmetic as
    /// [`SimNetwork::allreduce_mean`] — per element, contributions are
    /// summed in worker order (copy-first) and scaled by `1/K` — but
    /// parallelized in three rendezvous: every lane snapshots its worker's
    /// parameters, every lane averages its own contiguous chunk of the flat
    /// parameter vector, and every lane loads the shared average back. The
    /// chunking is over the *dimension*, never over workers, so the result
    /// is bit-identical to the sequential path.
    pub fn allreduce_models(&mut self) -> Vec<f32> {
        if let Some(pool) = &mut self.pool {
            let dim = self.dim;
            // (1) Snapshot every worker's parameters into its own scratch.
            let workers = SendPtr(self.workers.as_mut_ptr());
            pool.run(&|lane| {
                // SAFETY: lane-private worker.
                let w = unsafe { &mut *workers.get().add(lane) };
                w.model.copy_params_to(&mut w.params_buf);
            });
            // (2) Chunk-parallel worker-order mean into the shared buffer.
            if self.avg_buf.len() != dim {
                self.avg_buf = vec![0.0; dim];
            }
            {
                let srcs: Vec<&[f32]> = self
                    .workers
                    .iter()
                    .map(|w| w.params_buf.as_slice())
                    .collect();
                pool.chunked_mean(&srcs, &mut self.avg_buf);
            }
            // (3) Broadcast: every lane loads the shared average.
            let workers = SendPtr(self.workers.as_mut_ptr());
            let avg: &[f32] = &self.avg_buf;
            pool.run(&|lane| {
                // SAFETY: lane-private worker; `avg` is read-only here.
                let w = unsafe { &mut *workers.get().add(lane) };
                w.model.load_params(avg);
            });
            // Same traffic entry as the sequential `allreduce_mean`.
            self.net.charge_allreduce(dim as u64 * 4);
            self.avg_buf.clone()
        } else {
            let mut bufs: Vec<Vec<f32>> =
                self.workers.iter().map(|w| w.model.params_flat()).collect();
            self.net.allreduce_mean(&mut bufs);
            for (w, buf) in self.workers.iter_mut().zip(&bufs) {
                w.model.load_params(buf);
            }
            bufs.into_iter().next().expect("k >= 1")
        }
    }

    /// [`Cluster::allreduce_models`] with an uplink codec: each worker's
    /// parameters are encoded, charged at exactly the emitted byte count,
    /// and reconstructed (decoded) before the worker-order mean — the same
    /// arithmetic a coordinator receiving coded uploads performs. The
    /// consensus broadcast stays dense, mirroring the `fda_net` downlink.
    /// Runs sequentially even in pooled mode: the lossy reconstruction
    /// must follow the single code path the socket coordinator uses, or
    /// the bit-identity proofs break.
    ///
    /// # Panics
    /// Panics if the codec fails to decode its own output (a codec
    /// contract violation, not an input condition).
    pub fn allreduce_models_coded(&mut self, codec: &dyn fda_comm::Codec) -> Vec<f32> {
        let k = self.workers.len();
        let mut bufs: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut payloads: Vec<u64> = Vec::with_capacity(k);
        for w in &self.workers {
            let params = w.model.params_flat();
            let enc = codec.encode(&params);
            payloads.push(enc.len() as u64);
            bufs.push(
                codec
                    .decode(&enc, params.len())
                    .expect("codec decodes own output"),
            );
        }
        self.net.allreduce_mean_with(&mut bufs, &payloads);
        for (w, buf) in self.workers.iter_mut().zip(&bufs) {
            w.model.load_params(buf);
        }
        bufs.into_iter().next().expect("k >= 1")
    }

    /// The average of the current worker models **without** any
    /// communication charge — used only for evaluation, mirroring the
    /// paper's convention that accuracy is measured on the (conceptual)
    /// global model and is not part of the training traffic.
    pub fn average_params(&self) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut scratch = vec![0.0f32; self.dim];
        for w in &self.workers {
            w.model.copy_params_to(&mut scratch);
            fda_tensor::vector::add_assign(&mut acc, &scratch);
        }
        fda_tensor::vector::scale(&mut acc, 1.0 / self.workers.len() as f32);
        acc
    }

    /// True iff every worker currently holds exactly the same parameters.
    pub fn models_identical(&self) -> bool {
        let first = self.workers[0].model.params_flat();
        self.workers
            .iter()
            .skip(1)
            .all(|w| w.model.params_flat() == first)
    }

    /// The exact model variance across workers (Eq. 2) — evaluation/test
    /// helper; a real cluster could not compute this cheaply.
    pub fn exact_variance(&self) -> f32 {
        let params: Vec<Vec<f32>> = self.workers.iter().map(|w| w.model.params_flat()).collect();
        let refs: Vec<&[f32]> = params.iter().map(|p| p.as_slice()).collect();
        fda_tensor::vector::variance_of(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 300,
            n_test: 100,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    #[test]
    fn workers_start_from_common_model() {
        let task = tiny_task();
        let cluster = Cluster::new(ClusterConfig::small_test(4), &task);
        assert!(cluster.models_identical());
        assert!(cluster.exact_variance() < 1e-12);
    }

    #[test]
    fn local_steps_diverge_models() {
        let task = tiny_task();
        let mut cluster = Cluster::new(ClusterConfig::small_test(4), &task);
        for _ in 0..3 {
            cluster.local_step();
        }
        assert!(!cluster.models_identical());
        assert!(cluster.exact_variance() > 0.0);
        assert_eq!(cluster.steps(), 3);
        // Local training alone transmits nothing.
        assert_eq!(cluster.comm_bytes(), 0);
    }

    #[test]
    fn allreduce_restores_consensus_and_charges() {
        let task = tiny_task();
        let mut cluster = Cluster::new(ClusterConfig::small_test(3), &task);
        cluster.local_step();
        let d = cluster.dim() as u64;
        let global = cluster.allreduce_models();
        assert!(cluster.models_identical());
        assert!(cluster.exact_variance() < 1e-9);
        assert_eq!(cluster.comm_bytes(), 3 * d * 4);
        assert_eq!(global.len(), d as usize);
    }

    #[test]
    fn average_params_is_free_and_correct() {
        let task = tiny_task();
        let mut cluster = Cluster::new(ClusterConfig::small_test(3), &task);
        cluster.local_step();
        let before = cluster.comm_bytes();
        let avg = cluster.average_params();
        assert_eq!(cluster.comm_bytes(), before, "evaluation must be free");
        // Cross-check against an explicit mean.
        let expect = {
            let ps: Vec<Vec<f32>> = (0..3).map(|k| cluster.worker(k).params()).collect();
            let refs: Vec<&[f32]> = ps.iter().map(|p| p.as_slice()).collect();
            fda_tensor::vector::mean(&refs)
        };
        for (a, b) in avg.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let task = tiny_task();
        let mut a = Cluster::new(ClusterConfig::small_test(2), &task);
        let mut b = Cluster::new(ClusterConfig::small_test(2), &task);
        for _ in 0..3 {
            a.local_step();
            b.local_step();
        }
        assert_eq!(a.worker(0).params(), b.worker(0).params());
        assert_eq!(a.worker(1).params(), b.worker(1).params());
    }

    /// The scoped-thread local-step phase must be bit-identical to the
    /// sequential one: every worker's model, the step statistics, and
    /// therefore every downstream synchronization decision.
    #[test]
    fn parallel_mode_is_bit_identical_to_sequential() {
        let task = tiny_task();
        let mut seq = Cluster::new(ClusterConfig::small_test(4), &task);
        let par_cfg = ClusterConfig {
            parallel: true,
            ..ClusterConfig::small_test(4)
        };
        let mut par = Cluster::new(par_cfg, &task);
        for step in 0..5 {
            let s = seq.local_step();
            let p = par.local_step();
            assert_eq!(s.mean_loss, p.mean_loss, "loss diverged at step {step}");
            assert_eq!(
                s.batch_accuracy, p.batch_accuracy,
                "accuracy diverged at step {step}"
            );
            for k in 0..4 {
                assert_eq!(
                    seq.worker(k).params(),
                    par.worker(k).params(),
                    "worker {k} params diverged at step {step}"
                );
            }
        }
        assert_eq!(seq.exact_variance(), par.exact_variance());
    }

    /// The pooled chunk-parallel model AllReduce must be bit-identical to
    /// the sequential `SimNetwork::allreduce_mean` path — same consensus
    /// model, same replica states, same byte accounting.
    #[test]
    fn pooled_allreduce_is_bit_identical_to_sequential() {
        let task = tiny_task();
        let mut seq = Cluster::new(ClusterConfig::small_test(4), &task);
        let par_cfg = ClusterConfig {
            parallel: true,
            ..ClusterConfig::small_test(4)
        };
        let mut par = Cluster::new(par_cfg, &task);
        for _ in 0..3 {
            seq.local_step();
            par.local_step();
        }
        let g_seq = seq.allreduce_models();
        let g_par = par.allreduce_models();
        assert_eq!(g_seq, g_par, "consensus models diverged");
        assert!(par.models_identical());
        for k in 0..4 {
            assert_eq!(seq.worker(k).params(), par.worker(k).params());
        }
        assert_eq!(
            seq.comm_bytes(),
            par.comm_bytes(),
            "byte accounting diverged"
        );
        // Pooled broadcast-load (`load_global`) matches, too.
        let fresh = vec![0.25f32; seq.dim()];
        seq.load_global(&fresh);
        par.load_global(&fresh);
        for k in 0..4 {
            assert_eq!(seq.worker(k).params(), par.worker(k).params());
        }
    }

    /// Pooled stepping must not allocate a fresh results vector per step:
    /// the pool dispatches exactly the expected number of rendezvous.
    #[test]
    fn pool_rounds_track_phases() {
        let task = tiny_task();
        let cfg = ClusterConfig {
            parallel: true,
            ..ClusterConfig::small_test(3)
        };
        let mut cluster = Cluster::new(cfg, &task);
        let pool_rounds = |c: &Cluster| c.pool.as_ref().expect("pooled").rounds();
        assert_eq!(pool_rounds(&cluster), 0);
        cluster.local_step();
        assert_eq!(pool_rounds(&cluster), 1, "one rendezvous per local step");
        cluster.allreduce_models();
        assert_eq!(
            pool_rounds(&cluster),
            4,
            "snapshot + chunk-reduce + broadcast = three rendezvous"
        );
    }

    /// `ClusterConfig::build_worker` must reconstruct worker `k`
    /// standalone, bit-identical to the cluster-built one at every step —
    /// the property the multi-process TCP driver rests on.
    #[test]
    fn standalone_worker_matches_cluster_worker() {
        let task = tiny_task();
        let cfg = ClusterConfig::small_test(3);
        let mut cluster = Cluster::new(cfg.clone(), &task);
        let mut solo: Vec<Worker> = (0..3).map(|k| cfg.build_worker(&task.train, k)).collect();
        for step in 0..3 {
            cluster.local_step();
            for (k, w) in solo.iter_mut().enumerate() {
                w.step_once(&task.train);
                assert_eq!(
                    w.params(),
                    cluster.worker(k).params(),
                    "worker {k} diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn different_workers_see_different_batches() {
        let task = tiny_task();
        let mut cluster = Cluster::new(ClusterConfig::small_test(2), &task);
        cluster.local_step();
        // After one step from identical inits, models differ iff batches
        // (or dropout) differ.
        assert_ne!(cluster.worker(0).params(), cluster.worker(1).params());
    }
}
