//! Baseline DDL algorithms the paper compares against.
//!
//! * [`Synchronous`] — BSP: AllReduce the models after **every** step
//!   (§4.1 footnote: "a special case of the FDA Algorithm 1 where Θ is set
//!   to zero", minus the monitoring traffic).
//! * [`LocalSgd`] — fixed-period averaging every τ steps (the Local-SGD
//!   family of §2 that FDA's dynamic schedule replaces).
//! * [`FedOpt`] — the FedAvg/FedAvgM/FedAdam family: `E` local epochs per
//!   round, then the server applies its optimizer to the pseudo-gradient
//!   `−Δ̄` (Reddi et al., as configured in §4.1).
//!
//! All baselines drive the same [`Cluster`] primitives as FDA
//! (`local_step`, `allreduce_models`, `load_global`), so with
//! [`ClusterConfig::parallel`] they run on the same persistent worker pool
//! — one rendezvous per phase, no per-step thread spawning — and remain
//! bit-identical to their sequential runs.

use crate::cluster::{Cluster, ClusterConfig};
use crate::strategy::{StepOutcome, Strategy};
use fda_data::TaskData;
use fda_optim::{Optimizer, OptimizerKind};
use fda_tensor::vector;

/// Bulk-synchronous training: synchronize after every step.
pub struct Synchronous {
    cluster: Cluster,
    syncs: u64,
}

impl Synchronous {
    /// Builds the strategy over a fresh cluster.
    pub fn new(cluster_config: ClusterConfig, task: &TaskData) -> Synchronous {
        Synchronous {
            cluster: Cluster::new(cluster_config, task),
            syncs: 0,
        }
    }

    /// Builds over an existing cluster.
    pub fn over_cluster(cluster: Cluster) -> Synchronous {
        Synchronous { cluster, syncs: 0 }
    }
}

impl Strategy for Synchronous {
    fn name(&self) -> String {
        "Synchronous".to_string()
    }

    fn step(&mut self) -> StepOutcome {
        let stats = self.cluster.local_step();
        self.cluster.allreduce_models();
        self.syncs += 1;
        StepOutcome {
            stats,
            synced: true,
            variance_estimate: None,
        }
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// Local-SGD with a fixed synchronization period τ.
pub struct LocalSgd {
    cluster: Cluster,
    tau: u64,
    since_sync: u64,
    syncs: u64,
}

impl LocalSgd {
    /// Builds Local-SGD(τ) over a fresh cluster.
    ///
    /// # Panics
    /// Panics if `tau == 0`.
    pub fn new(tau: u64, cluster_config: ClusterConfig, task: &TaskData) -> LocalSgd {
        assert!(tau >= 1, "local-sgd: τ must be positive");
        LocalSgd {
            cluster: Cluster::new(cluster_config, task),
            tau,
            since_sync: 0,
            syncs: 0,
        }
    }

    /// The synchronization period.
    pub fn tau(&self) -> u64 {
        self.tau
    }
}

impl Strategy for LocalSgd {
    fn name(&self) -> String {
        format!("LocalSGD(tau={})", self.tau)
    }

    fn step(&mut self) -> StepOutcome {
        let stats = self.cluster.local_step();
        self.since_sync += 1;
        let mut synced = false;
        if self.since_sync >= self.tau {
            self.cluster.allreduce_models();
            self.syncs += 1;
            self.since_sync = 0;
            synced = true;
        }
        StepOutcome {
            stats,
            synced,
            variance_estimate: None,
        }
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// The FedOpt family: `E` local epochs per round, server optimizer on the
/// averaged pseudo-gradient.
///
/// With server SGD(lr = 1) this is exactly FedAvg; with server SGD-M it is
/// FedAvgM; with server Adam it is FedAdam.
pub struct FedOpt {
    cluster: Cluster,
    display_name: &'static str,
    server_opt: Box<dyn Optimizer>,
    /// Global (server) model `w`.
    w_global: Vec<f32>,
    /// Steps between rounds: `E ×` steps-per-epoch.
    steps_per_round: u64,
    since_round: u64,
    syncs: u64,
}

impl FedOpt {
    /// Builds a FedOpt strategy.
    ///
    /// `local_epochs` is the paper's `E` (they use `E = 1`).
    ///
    /// # Panics
    /// Panics if `local_epochs == 0`.
    pub fn new(
        display_name: &'static str,
        server: OptimizerKind,
        local_epochs: u32,
        cluster_config: ClusterConfig,
        task: &TaskData,
    ) -> FedOpt {
        assert!(local_epochs >= 1, "fedopt: E must be positive");
        let cluster = Cluster::new(cluster_config, task);
        let dim = cluster.dim();
        let steps_per_round = local_epochs as u64 * cluster.steps_per_epoch() as u64;
        let w_global = cluster.worker(0).params();
        FedOpt {
            cluster,
            display_name,
            server_opt: server.build(dim),
            w_global,
            steps_per_round,
            since_round: 0,
            syncs: 0,
        }
    }

    /// FedAvg: server SGD with lr 1 (plain averaging).
    pub fn fedavg(local_epochs: u32, cluster_config: ClusterConfig, task: &TaskData) -> FedOpt {
        FedOpt::new(
            "FedAvg",
            OptimizerKind::Sgd { lr: 1.0 },
            local_epochs,
            cluster_config,
            task,
        )
    }

    /// FedAvgM as configured in the paper (§4.1).
    pub fn fedavgm(local_epochs: u32, cluster_config: ClusterConfig, task: &TaskData) -> FedOpt {
        FedOpt::new(
            "FedAvgM",
            OptimizerKind::fedavgm_server(),
            local_epochs,
            cluster_config,
            task,
        )
    }

    /// FedAdam as configured in the paper (§4.1).
    pub fn fedadam(local_epochs: u32, cluster_config: ClusterConfig, task: &TaskData) -> FedOpt {
        FedOpt::new(
            "FedAdam",
            OptimizerKind::fedadam_server(),
            local_epochs,
            cluster_config,
            task,
        )
    }

    /// Steps between rounds (E × steps-per-epoch).
    pub fn steps_per_round(&self) -> u64 {
        self.steps_per_round
    }

    fn round(&mut self) {
        // Δ̄ = mean_k(w_k) − w_global, gathered with one model AllReduce.
        let w_mean = self.cluster.allreduce_models();
        let mut pseudo_grad = self.w_global.clone();
        vector::sub_assign(&mut pseudo_grad, &w_mean); // −Δ̄
        self.server_opt.step(&mut self.w_global, &pseudo_grad);
        // Broadcast the server model to every worker (pooled when the
        // cluster is). In a real fabric the server step is computable by
        // every node (it is deterministic in Δ̄), so no extra traffic is
        // charged beyond the AllReduce — the convention used by the
        // paper's synchronous framing.
        self.cluster.load_global(&self.w_global);
        self.syncs += 1;
    }
}

impl Strategy for FedOpt {
    fn name(&self) -> String {
        self.display_name.to_string()
    }

    fn step(&mut self) -> StepOutcome {
        let stats = self.cluster.local_step();
        self.since_round += 1;
        let mut synced = false;
        if self.since_round >= self.steps_per_round {
            self.round();
            self.since_round = 0;
            synced = true;
        }
        StepOutcome {
            stats,
            synced,
            variance_estimate: None,
        }
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }

    fn global_params(&self) -> Vec<f32> {
        self.w_global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 200,
            n_test: 64,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    #[test]
    fn synchronous_syncs_every_step_and_charges_models() {
        let task = tiny_task();
        let mut s = Synchronous::new(ClusterConfig::small_test(3), &task);
        for _ in 0..4 {
            let out = s.step();
            assert!(out.synced);
            assert!(s.cluster().models_identical());
        }
        let d = s.cluster().dim() as u64;
        assert_eq!(s.comm_bytes(), 4 * 3 * d * 4);
        assert_eq!(s.syncs(), 4);
    }

    #[test]
    fn local_sgd_period() {
        let task = tiny_task();
        let mut s = LocalSgd::new(5, ClusterConfig::small_test(2), &task);
        let mut syncs = Vec::new();
        for i in 1..=15u64 {
            let out = s.step();
            if out.synced {
                syncs.push(i);
            }
        }
        assert_eq!(syncs, vec![5, 10, 15]);
        let d = s.cluster().dim() as u64;
        assert_eq!(s.comm_bytes(), 3 * 2 * d * 4);
    }

    #[test]
    fn fedavg_round_equals_plain_averaging() {
        let task = tiny_task();
        let mut s = FedOpt::fedavg(1, ClusterConfig::small_test(2), &task);
        let spr = s.steps_per_round();
        assert!(spr >= 1);
        // Drive to just before the round: models differ, global unchanged.
        for _ in 0..spr - 1 {
            s.step();
        }
        let manual_avg = s.cluster().average_params();
        let out = s.step(); // triggers the round
        assert!(out.synced);
        // FedAvg server lr = 1 ⇒ new global = average of worker models at
        // round end. The cluster average changed during the last step, so
        // compare against the fresh average… which is now the consensus.
        assert!(s.cluster().models_identical());
        let _ = manual_avg;
        let global = s.global_params();
        assert_eq!(global, s.cluster().worker(0).params());
    }

    #[test]
    fn fedopt_communicates_once_per_round() {
        let task = tiny_task();
        let mut s = FedOpt::fedadam(1, ClusterConfig::small_test(3), &task);
        let spr = s.steps_per_round();
        for _ in 0..2 * spr {
            s.step();
        }
        assert_eq!(s.syncs(), 2);
        let d = s.cluster().dim() as u64;
        assert_eq!(s.comm_bytes(), 2 * 3 * d * 4);
    }

    #[test]
    fn fedavgm_momentum_moves_beyond_average() {
        // After two rounds with consistent drift direction, the momentum
        // server should have moved the global model differently from plain
        // FedAvg given identical clusters (same seed).
        let task = tiny_task();
        let mut avg = FedOpt::fedavg(1, ClusterConfig::small_test(2), &task);
        let mut avgm = FedOpt::fedavgm(1, ClusterConfig::small_test(2), &task);
        for _ in 0..2 * avg.steps_per_round() {
            avg.step();
            avgm.step();
        }
        assert_ne!(avg.global_params(), avgm.global_params());
    }

    #[test]
    fn strategies_share_identical_computation_metric() {
        let task = tiny_task();
        let mut a = Synchronous::new(ClusterConfig::small_test(2), &task);
        let mut b = LocalSgd::new(3, ClusterConfig::small_test(2), &task);
        for _ in 0..6 {
            a.step();
            b.step();
        }
        assert_eq!(a.steps(), b.steps());
    }
}
