//! Algorithm 1: Federated Dynamic Averaging.
//!
//! Per step `t` (paper, Algorithm 1):
//!
//! 1. every worker trains locally — `w_t^(k) ← Optimize(w_{t−1}^(k), B)`;
//! 2. every worker updates its local state `S_t^(k)` from its drift
//!    `u_t^(k) = w_t^(k) − w_t0`;
//! 3. the small states are AllReduced into `S̄_t` (cheap);
//! 4. if `H(S̄_t) > Θ` the models themselves are AllReduced (expensive) —
//!    otherwise the Round Invariant `Var(w_t) ≤ Θ` is certified and
//!    training continues locally.
//!
//! After each synchronization, `w_t0` becomes the fresh consensus model
//! and the model variance drops to exactly zero.

use crate::cluster::{Cluster, ClusterConfig};
use crate::monitor::{ExactMonitor, LinearMonitor, LocalState, SketchMonitor, VarianceMonitor};
use crate::strategy::{StepOutcome, Strategy};
use fda_data::TaskData;
use fda_sketch::SketchConfig;
use fda_tensor::vector;

/// Which FDA variant to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FdaVariant {
    /// SketchFDA with the given AMS sketch configuration (§3.1).
    Sketch(SketchConfig),
    /// SketchFDA with the sketch sized relative to the model dimension
    /// (`SketchConfig::scaled_for(d)`), preserving the paper's
    /// sketch-to-model cost ratio on our scaled zoo.
    SketchAuto,
    /// LinearFDA with the heuristic ξ (§3.2).
    Linear,
    /// Oracle monitor shipping full drifts — for tests/ablations only.
    Exact,
}

impl FdaVariant {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            FdaVariant::Sketch(_) | FdaVariant::SketchAuto => "SketchFDA",
            FdaVariant::Linear => "LinearFDA",
            FdaVariant::Exact => "ExactFDA",
        }
    }
}

/// FDA configuration: the variant and the variance threshold Θ.
#[derive(Debug, Clone, Copy)]
pub struct FdaConfig {
    /// The monitor variant.
    pub variant: FdaVariant,
    /// The model-variance threshold Θ (Algorithm 1 input).
    pub theta: f32,
}

impl FdaConfig {
    /// SketchFDA with the paper's default sketch size (5 kB).
    pub fn sketch(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::Sketch(SketchConfig::paper_default()),
            theta,
        }
    }

    /// SketchFDA with the model-scaled sketch size.
    pub fn sketch_auto(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::SketchAuto,
            theta,
        }
    }

    /// LinearFDA.
    pub fn linear(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::Linear,
            theta,
        }
    }
}

/// The FDA strategy (Algorithm 1) over a simulated cluster.
pub struct Fda {
    cluster: Cluster,
    monitor: Box<dyn VarianceMonitor>,
    theta: f32,
    variant_name: &'static str,
    /// `w_t0`: the model right after the most recent synchronization.
    w_sync: Vec<f32>,
    syncs: u64,
    // Scratch drift buffer reused across steps and workers.
    drift_buf: Vec<f32>,
}

impl Fda {
    /// Builds FDA over a fresh cluster.
    ///
    /// # Panics
    /// Panics if `theta < 0` (Θ = 0 is allowed and behaves like
    /// Synchronous plus monitoring traffic).
    pub fn new(config: FdaConfig, cluster_config: ClusterConfig, task: &TaskData) -> Fda {
        assert!(config.theta >= 0.0, "fda: Θ must be non-negative");
        let cluster = Cluster::new(cluster_config, task);
        Fda::over_cluster(config, cluster)
    }

    /// Builds FDA with a caller-supplied monitor — the extension point for
    /// custom variance estimators (used by the ξ-choice ablation bench).
    pub fn with_monitor(monitor: Box<dyn VarianceMonitor>, theta: f32, cluster: Cluster) -> Fda {
        assert!(theta >= 0.0, "fda: Θ must be non-negative");
        let dim = cluster.dim();
        let w_sync = cluster.worker(0).params();
        let variant_name = monitor.name();
        Fda {
            cluster,
            monitor,
            theta,
            variant_name,
            w_sync,
            syncs: 0,
            drift_buf: vec![0.0; dim],
        }
    }

    /// Builds FDA over an existing cluster (used by sweeps that pre-build
    /// clusters).
    pub fn over_cluster(config: FdaConfig, cluster: Cluster) -> Fda {
        let dim = cluster.dim();
        let monitor: Box<dyn VarianceMonitor> = match config.variant {
            FdaVariant::Sketch(sk) => Box::new(SketchMonitor::new(sk, dim)),
            FdaVariant::SketchAuto => {
                Box::new(SketchMonitor::new(SketchConfig::scaled_for(dim), dim))
            }
            FdaVariant::Linear => Box::new(LinearMonitor::new()),
            FdaVariant::Exact => Box::new(ExactMonitor::new(dim)),
        };
        let w_sync = cluster.worker(0).params();
        Fda {
            cluster,
            monitor,
            theta: config.theta,
            variant_name: config.variant.name(),
            w_sync,
            syncs: 0,
            drift_buf: vec![0.0; dim],
        }
    }

    /// The variance threshold Θ.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Replaces Θ (used by the adaptive controller of [`crate::adaptive`];
    /// all workers can apply the same deterministic update without extra
    /// communication).
    ///
    /// # Panics
    /// Panics if `theta < 0`.
    pub fn set_theta(&mut self, theta: f32) {
        assert!(theta >= 0.0, "fda: Θ must be non-negative");
        self.theta = theta;
    }

    /// The monitor in use.
    pub fn monitor(&self) -> &dyn VarianceMonitor {
        self.monitor.as_ref()
    }

    /// The model at the last synchronization (`w_t0`).
    pub fn sync_model(&self) -> &[f32] {
        &self.w_sync
    }

    /// Computes all workers' local states (Algorithm 1 line 6).
    fn local_states(&mut self) -> Vec<LocalState> {
        let k = self.cluster.workers();
        let mut states = Vec::with_capacity(k);
        for i in 0..k {
            let dim = self.drift_buf.len();
            // drift = w^(k) − w_t0, computed without allocating.
            {
                let mut scratch = std::mem::take(&mut self.drift_buf);
                debug_assert_eq!(scratch.len(), dim);
                self.cluster
                    .worker_mut(i)
                    .model_mut()
                    .copy_params_to(&mut scratch);
                vector::sub_assign(&mut scratch, &self.w_sync);
                states.push(self.monitor.local_state(&scratch));
                self.drift_buf = scratch;
            }
        }
        states
    }
}

impl Strategy for Fda {
    fn name(&self) -> String {
        self.variant_name.to_string()
    }

    fn step(&mut self) -> StepOutcome {
        // (1) Local training on every worker.
        let stats = self.cluster.local_step();

        // (2) Local states from drifts.
        let states = self.local_states();

        // (3) AllReduce of the states — charged at the monitor's state
        //     size. The arithmetic is the component-wise average.
        let avg = LocalState::average(&states);
        let state_bytes = self.monitor.state_bytes();
        self.cluster.net_mut().charge_allreduce(state_bytes);

        // (4) The conditional synchronization.
        let estimate = self.monitor.estimate(&avg);
        let mut synced = false;
        if estimate > self.theta {
            let w_prev = std::mem::take(&mut self.w_sync);
            let w_new = self.cluster.allreduce_models();
            self.monitor.on_sync(&w_new, &w_prev);
            self.w_sync = w_new;
            self.syncs += 1;
            synced = true;
        }
        StepOutcome {
            stats,
            synced,
            variance_estimate: Some(estimate),
        }
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;
    use fda_data::TaskData;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    fn tiny_cluster_config(k: usize) -> ClusterConfig {
        ClusterConfig::small_test(k)
    }

    #[test]
    fn variance_zero_after_every_sync() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.05), tiny_cluster_config(4), &task);
        let mut saw_sync = false;
        for _ in 0..30 {
            let out = fda.step();
            if out.synced {
                saw_sync = true;
                assert!(
                    fda.cluster().exact_variance() < 1e-9,
                    "variance must be exactly zero right after a sync"
                );
                assert!(fda.cluster().models_identical());
            }
        }
        assert!(saw_sync, "Θ small enough that syncs must happen");
    }

    #[test]
    fn round_invariant_certified_when_no_sync() {
        // With the exact monitor, H(S̄) = Var, so "no sync" must mean the
        // true variance is ≤ Θ at every step (the RI, Eq. 3).
        let task = tiny_task();
        let theta = 0.5;
        let mut fda = Fda::new(
            FdaConfig {
                variant: FdaVariant::Exact,
                theta,
            },
            tiny_cluster_config(4),
            &task,
        );
        for _ in 0..40 {
            let out = fda.step();
            if !out.synced {
                let v = fda.cluster().exact_variance();
                assert!(
                    v <= theta * 1.01 + 1e-6,
                    "RI violated without sync: Var = {v} > Θ = {theta}"
                );
            }
        }
    }

    #[test]
    fn linear_estimate_overestimates_true_variance() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(1e9), tiny_cluster_config(3), &task);
        for _ in 0..25 {
            let out = fda.step();
            let est = out.variance_estimate.expect("fda reports estimates");
            let truth = fda.cluster().exact_variance();
            assert!(
                est >= truth - 1e-3 * (1.0 + truth),
                "Theorem 3.2 violated: H = {est} < Var = {truth}"
            );
        }
    }

    #[test]
    fn theta_zero_syncs_every_step() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.0), tiny_cluster_config(3), &task);
        for _ in 0..10 {
            let out = fda.step();
            assert!(out.synced, "Θ = 0 must behave like Synchronous");
        }
        assert_eq!(fda.syncs(), 10);
    }

    #[test]
    fn huge_theta_never_syncs_and_communicates_only_states() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(f32::MAX), tiny_cluster_config(3), &task);
        for _ in 0..20 {
            let out = fda.step();
            assert!(!out.synced);
        }
        assert_eq!(fda.syncs(), 0);
        // 20 steps × 3 workers × 8-byte linear state.
        assert_eq!(fda.comm_bytes(), 20 * 3 * 8);
    }

    #[test]
    fn sketch_state_costs_dominate_linear_but_not_models() {
        let task = tiny_task();
        let k = 3;
        let mut sketch = Fda::new(FdaConfig::sketch(f32::MAX), tiny_cluster_config(k), &task);
        for _ in 0..5 {
            sketch.step();
        }
        let per_step_per_worker = 5_004u64; // paper's 5 kB + scalar
        assert_eq!(sketch.comm_bytes(), 5 * k as u64 * per_step_per_worker);
        // Still far below one model payload per step.
        let model_bytes = sketch.cluster().dim() as u64 * 4;
        assert!(per_step_per_worker < model_bytes);
    }

    #[test]
    fn higher_theta_means_fewer_syncs() {
        let task = tiny_task();
        let mut counts = Vec::new();
        for theta in [0.02f32, 0.2, 2.0] {
            let mut fda = Fda::new(FdaConfig::linear(theta), tiny_cluster_config(4), &task);
            for _ in 0..40 {
                fda.step();
            }
            counts.push(fda.syncs());
        }
        assert!(
            counts[0] >= counts[1] && counts[1] >= counts[2],
            "syncs must fall as Θ rises: {counts:?}"
        );
        assert!(counts[0] > counts[2], "sweep should actually differentiate");
    }

    #[test]
    fn xi_refreshes_after_second_sync() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.01), tiny_cluster_config(3), &task);
        let mut syncs_seen = 0;
        for _ in 0..60 {
            if fda.step().synced {
                syncs_seen += 1;
                if syncs_seen >= 2 {
                    break;
                }
            }
        }
        assert!(syncs_seen >= 2, "need two syncs to form ξ");
        // After ≥ 1 sync the monitor has a ξ; estimates must remain valid
        // over-estimates (checked implicitly by the RI test above), and the
        // estimate should now be able to drop below mean‖u‖².
        let out = fda.step();
        assert!(out.variance_estimate.is_some());
    }
}
