//! Algorithm 1: Federated Dynamic Averaging.
//!
//! Per step `t` (paper, Algorithm 1):
//!
//! 1. every worker trains locally — `w_t^(k) ← Optimize(w_{t−1}^(k), B)`;
//! 2. every worker updates its local state `S_t^(k)` from its drift
//!    `u_t^(k) = w_t^(k) − w_t0`;
//! 3. the small states are AllReduced into `S̄_t` (cheap);
//! 4. if `H(S̄_t) > Θ` the models themselves are AllReduced (expensive) —
//!    otherwise the Round Invariant `Var(w_t) ≤ Θ` is certified and
//!    training continues locally.
//!
//! After each synchronization, `w_t0` becomes the fresh consensus model
//! and the model variance drops to exactly zero.

use crate::cluster::{Cluster, ClusterConfig};
use crate::monitor::{ExactMonitor, LinearMonitor, LocalState, SketchMonitor, VarianceMonitor};
use crate::pool::SendPtr;
use crate::strategy::{StepOutcome, Strategy};
use fda_comm::{Codec, CodecSpec, DownlinkSpec};
use fda_data::TaskData;
use fda_obs::{JsonlWriter, MembershipRecord, RoundEvent, RunEvent};
use fda_sketch::SketchConfig;
use fda_tensor::vector;

/// Summary payloads below this length are averaged on the dispatching
/// thread even in pooled mode: a rendezvous costs more than a few hundred
/// scalar adds (LinearFDA's summary is a single float). Both paths compute
/// bit-identical results, so the cutoff affects speed only.
const POOLED_STATE_REDUCE_MIN: usize = 256;

/// Registry histogram fed by phase 1 of every [`Fda::step`] (local
/// training), in microseconds. The bench reads phase splits from these
/// instead of a bespoke struct-return path.
pub const HIST_LOCAL_STEP_US: &str = "fda_step_local_us";
/// Registry histogram fed by phases 2–3 (drift + state build, state
/// reduction, the `H(S̄)` estimate), in microseconds.
pub const HIST_MONITOR_US: &str = "fda_step_monitor_us";
/// Registry histogram fed by phase 4 (the conditional model AllReduce;
/// ~0 µs samples on rounds where the Round Invariant held).
pub const HIST_ALLREDUCE_US: &str = "fda_step_allreduce_us";

/// Per-round telemetry attached via [`Strategy::set_telemetry`].
struct TelemetrySession {
    writer: JsonlWriter,
    rounds: u32,
    decisions: String,
}

/// Which FDA variant to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FdaVariant {
    /// SketchFDA with the given AMS sketch configuration (§3.1).
    Sketch(SketchConfig),
    /// SketchFDA with the sketch sized relative to the model dimension
    /// (`SketchConfig::scaled_for(d)`), preserving the paper's
    /// sketch-to-model cost ratio on our scaled zoo.
    SketchAuto,
    /// LinearFDA with the heuristic ξ (§3.2).
    Linear,
    /// Oracle monitor shipping full drifts — for tests/ablations only.
    Exact,
}

impl FdaVariant {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            FdaVariant::Sketch(_) | FdaVariant::SketchAuto => "SketchFDA",
            FdaVariant::Linear => "LinearFDA",
            FdaVariant::Exact => "ExactFDA",
        }
    }

    /// Builds this variant's monitor for a `dim`-parameter model — the
    /// single home of the variant → monitor mapping (including the
    /// `SketchAuto` sizing rule), shared by the simulator and the
    /// transport drivers so they cannot drift apart.
    pub fn build_monitor(&self, dim: usize) -> Box<dyn VarianceMonitor> {
        match self {
            FdaVariant::Sketch(sk) => Box::new(SketchMonitor::new(*sk, dim)),
            FdaVariant::SketchAuto => {
                Box::new(SketchMonitor::new(SketchConfig::scaled_for(dim), dim))
            }
            FdaVariant::Linear => Box::new(LinearMonitor::new()),
            FdaVariant::Exact => Box::new(ExactMonitor::new(dim)),
        }
    }
}

/// FDA configuration: the variant and the variance threshold Θ.
#[derive(Debug, Clone, Copy)]
pub struct FdaConfig {
    /// The monitor variant.
    pub variant: FdaVariant,
    /// The model-variance threshold Θ (Algorithm 1 input).
    pub theta: f32,
}

impl FdaConfig {
    /// SketchFDA with the paper's default sketch size (5 kB).
    pub fn sketch(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::Sketch(SketchConfig::paper_default()),
            theta,
        }
    }

    /// SketchFDA with the model-scaled sketch size.
    pub fn sketch_auto(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::SketchAuto,
            theta,
        }
    }

    /// LinearFDA.
    pub fn linear(theta: f32) -> FdaConfig {
        FdaConfig {
            variant: FdaVariant::Linear,
            theta,
        }
    }
}

/// The FDA strategy (Algorithm 1) over a simulated cluster.
pub struct Fda {
    cluster: Cluster,
    monitor: Box<dyn VarianceMonitor>,
    theta: f32,
    variant_name: &'static str,
    /// `w_t0`: the model right after the most recent synchronization.
    w_sync: Vec<f32>,
    syncs: u64,
    /// Per-worker drift scratch `u_t^(k)` (K × d), reused across steps.
    drift_bufs: Vec<Vec<f32>>,
    /// Per-worker local states, constructed in place each step.
    states: Vec<LocalState>,
    /// Reused slot for the averaged state `S̄_t` in the pooled reduction
    /// (the sequential reference path allocates, as it always did).
    avg_state: Option<LocalState>,
    /// The uplink payload codec. [`CodecSpec::Dense`] by default.
    codec: CodecSpec,
    /// Built codec — `None` on the dense path, which keeps its historical
    /// byte-for-byte behaviour (pooled reductions, `charge_allreduce`).
    codec_impl: Option<Box<dyn Codec>>,
    /// The downlink mode. [`DownlinkSpec::Dense`] by default.
    downlink: DownlinkSpec,
    /// Built downlink delta codec — `None` on the dense downlink, which
    /// broadcasts the AllReduce mean bit-exactly as it always did.
    downlink_impl: Option<Box<dyn Codec>>,
    /// Per-round JSONL telemetry, `None` unless attached.
    telemetry: Option<TelemetrySession>,
}

impl Fda {
    /// Builds FDA over a fresh cluster.
    ///
    /// # Panics
    /// Panics if `theta < 0` (Θ = 0 is allowed and behaves like
    /// Synchronous plus monitoring traffic).
    pub fn new(config: FdaConfig, cluster_config: ClusterConfig, task: &TaskData) -> Fda {
        assert!(config.theta >= 0.0, "fda: Θ must be non-negative");
        let cluster = Cluster::new(cluster_config, task);
        Fda::over_cluster(config, cluster)
    }

    /// Builds FDA with a caller-supplied monitor — the extension point for
    /// custom variance estimators (used by the ξ-choice ablation bench).
    pub fn with_monitor(monitor: Box<dyn VarianceMonitor>, theta: f32, cluster: Cluster) -> Fda {
        assert!(theta >= 0.0, "fda: Θ must be non-negative");
        let w_sync = cluster.worker(0).params();
        let variant_name = monitor.name();
        Fda {
            cluster,
            monitor,
            theta,
            variant_name,
            w_sync,
            syncs: 0,
            drift_bufs: Vec::new(),
            states: Vec::new(),
            avg_state: None,
            codec: CodecSpec::Dense,
            codec_impl: None,
            downlink: DownlinkSpec::Dense,
            downlink_impl: None,
            telemetry: None,
        }
    }

    /// Builds FDA over an existing cluster (used by sweeps that pre-build
    /// clusters).
    pub fn over_cluster(config: FdaConfig, cluster: Cluster) -> Fda {
        let monitor = config.variant.build_monitor(cluster.dim());
        let w_sync = cluster.worker(0).params();
        Fda {
            cluster,
            monitor,
            theta: config.theta,
            variant_name: config.variant.name(),
            w_sync,
            syncs: 0,
            drift_bufs: Vec::new(),
            states: Vec::new(),
            avg_state: None,
            codec: CodecSpec::Dense,
            codec_impl: None,
            downlink: DownlinkSpec::Dense,
            downlink_impl: None,
            telemetry: None,
        }
    }

    /// Selects the uplink payload codec: worker → coordinator state
    /// summaries and model uploads are roundtripped through it (the lossy
    /// reconstruction a receiver of encoded payloads computes) and charged
    /// at exactly the emitted byte counts. The drift scalar and the
    /// consensus downlink stay dense. [`CodecSpec::Dense`] restores the
    /// historical byte-for-byte behaviour.
    ///
    /// # Panics
    /// Panics if the spec fails [`CodecSpec::validate`].
    pub fn set_codec(&mut self, spec: CodecSpec) {
        spec.validate().expect("fda: invalid codec spec");
        self.codec_impl = (!spec.is_dense()).then(|| spec.build());
        self.codec = spec;
    }

    /// The configured uplink codec.
    pub fn codec_spec(&self) -> CodecSpec {
        self.codec
    }

    /// Selects the downlink mode — the simulator mirror of the
    /// coordinator's consensus broadcast. Under
    /// [`DownlinkSpec::Delta`] the post-sync consensus becomes the
    /// shared lossy reconstruction `prev + decode(encode(mean − prev))`
    /// ([`fda_comm::compress::delta_downlink`]), loaded into every worker
    /// uncharged (downlink bytes are outside the paper's convention, like
    /// the dense broadcast before it). [`DownlinkSpec::Dense`] restores
    /// the historical bitwise behaviour.
    ///
    /// # Panics
    /// Panics if the spec fails [`DownlinkSpec::validate`].
    pub fn set_downlink(&mut self, spec: DownlinkSpec) {
        spec.validate().expect("fda: invalid downlink spec");
        self.downlink_impl = spec.build();
        self.downlink = spec;
    }

    /// The configured downlink mode.
    pub fn downlink_spec(&self) -> DownlinkSpec {
        self.downlink
    }

    /// The variance threshold Θ.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Replaces Θ (used by the adaptive controller of [`crate::adaptive`];
    /// all workers can apply the same deterministic update without extra
    /// communication).
    ///
    /// # Panics
    /// Panics if `theta < 0`.
    pub fn set_theta(&mut self, theta: f32) {
        assert!(theta >= 0.0, "fda: Θ must be non-negative");
        self.theta = theta;
    }

    /// The monitor in use.
    pub fn monitor(&self) -> &dyn VarianceMonitor {
        self.monitor.as_ref()
    }

    /// The model at the last synchronization (`w_t0`).
    pub fn sync_model(&self) -> &[f32] {
        &self.w_sync
    }

    /// Computes all workers' local states into `self.states` (Algorithm 1
    /// line 6): per worker, `drift = w^(k) − w_t0`, then the monitor's
    /// summary — each on its own pool lane when the cluster is pooled,
    /// sequentially otherwise. Buffers are lane-private and reused across
    /// steps, so the steady state allocates nothing; both modes perform
    /// identical per-worker arithmetic and are therefore bit-identical.
    fn compute_states(&mut self) {
        let k = self.cluster.workers();
        if self.states.len() != k {
            let dim = self.cluster.dim();
            let zeros = vec![0.0f32; dim];
            self.states = (0..k).map(|_| self.monitor.local_state(&zeros)).collect();
            self.drift_bufs = vec![zeros; k];
        }
        let w_sync: &[f32] = &self.w_sync;
        let monitor: &dyn VarianceMonitor = self.monitor.as_ref();
        let (pool, workers) = self.cluster.pool_and_workers();
        if let Some(pool) = pool {
            let wptr = SendPtr(workers.as_mut_ptr());
            let dptr = SendPtr(self.drift_bufs.as_mut_ptr());
            let sptr = SendPtr(self.states.as_mut_ptr());
            pool.run(&|lane| {
                // SAFETY: lane-private worker, drift buffer and state slot.
                let w = unsafe { &mut *wptr.get().add(lane) };
                let drift = unsafe { &mut *dptr.get().add(lane) };
                let state = unsafe { &mut *sptr.get().add(lane) };
                w.model_mut().copy_params_to(drift);
                vector::sub_assign(drift, w_sync);
                monitor.local_state_into(drift, state);
            });
        } else {
            for (i, w) in workers.iter_mut().enumerate() {
                let drift = &mut self.drift_bufs[i];
                w.model_mut().copy_params_to(drift);
                vector::sub_assign(drift, w_sync);
                monitor.local_state_into(drift, &mut self.states[i]);
            }
        }
    }

    /// Averages `self.states` — the arithmetic of the state AllReduce
    /// (Algorithm 1 line 7) — and returns the monitor's estimate `H(S̄_t)`.
    /// Large summaries (sketches at scale, the Exact oracle's full drift)
    /// reduce chunk-parallel on the pool into the reused `avg_state` slot;
    /// the chunking is over the summary payload with worker-order
    /// accumulation per element, i.e. bit-identical to
    /// [`LocalState::average_refs`], which the sequential path calls.
    fn averaged_estimate(&mut self) -> f32 {
        let k = self.states.len();
        let n = self.states[0].summary_slice().len();
        let (pool, _) = self.cluster.pool_and_workers();
        match pool {
            Some(pool) if n >= POOLED_STATE_REDUCE_MIN => {
                let drift_sq_norm =
                    self.states.iter().map(|s| s.drift_sq_norm).sum::<f32>() / k as f32;
                // One clone on first use; thereafter the slot already has
                // the right shape (the monitor never changes) and every
                // element is overwritten below.
                let avg = match &mut self.avg_state {
                    Some(avg) if avg.summary_slice().len() == n => avg,
                    slot => slot.insert(self.states[0].clone()),
                };
                {
                    let srcs: Vec<&[f32]> = self.states.iter().map(|s| s.summary_slice()).collect();
                    pool.chunked_mean(&srcs, avg.summary_slice_mut());
                }
                avg.drift_sq_norm = drift_sq_norm;
                self.monitor.estimate(avg)
            }
            _ => {
                let refs: Vec<&LocalState> = self.states.iter().collect();
                self.monitor.estimate(&LocalState::average_refs(&refs))
            }
        }
    }

    /// Writes this round's telemetry event. `charged_before`/`charged_mid`
    /// bracket the state charge, so byte deltas are exact per frame kind;
    /// the simulator's measured total *is* its charged total (there is no
    /// socket to measure).
    fn emit_round_event(
        &mut self,
        charged_before: u64,
        charged_mid: u64,
        synced: bool,
        estimate: f32,
    ) {
        let alive = self.cluster.workers() as u32;
        let theta = self.theta;
        let codec = self.codec.name().to_string();
        let charged_total = self.cluster.comm_bytes();
        if let Some(sess) = &mut self.telemetry {
            sess.rounds += 1;
            sess.decisions.push(if synced { '1' } else { '0' });
            let event = RoundEvent {
                source: "sim".into(),
                round: sess.rounds,
                epoch: 1,
                alive,
                decision: synced,
                estimate,
                theta,
                codec,
                state_bytes: charged_mid - charged_before,
                model_bytes: charged_total - charged_mid,
                charged_bytes: charged_total,
                measured_bytes: charged_total,
                deposit_us: Vec::new(),
                drops: Vec::new(),
            };
            let _ = sess.writer.write(&event.to_json());
        }
    }

    /// Writes the end-of-run summary and closes the stream (called when
    /// telemetry is detached).
    fn emit_run_event(&mut self, mut sess: TelemetrySession) {
        let charged = self.cluster.comm_bytes();
        let workers = self.cluster.workers() as u32;
        let event = RunEvent {
            source: "sim".into(),
            workers,
            variant: self.variant_name.to_string(),
            theta: self.theta,
            steps: sess.rounds,
            syncs: self.syncs,
            decisions: std::mem::take(&mut sess.decisions),
            codec: self.codec.name().to_string(),
            charged_bytes: charged,
            measured_payload_bytes: charged,
            raw_tx_bytes: 0,
            raw_rx_bytes: 0,
            survivors: (0..workers).collect(),
            membership: (0..workers)
                .map(|w| MembershipRecord {
                    round: 0,
                    worker: w,
                    event: "join".into(),
                })
                .collect(),
        };
        let _ = sess.writer.write(&event.to_json());
        let _ = sess.writer.flush();
    }
}

impl Strategy for Fda {
    fn name(&self) -> String {
        self.variant_name.to_string()
    }

    fn step(&mut self) -> StepOutcome {
        let charged_before = self.cluster.comm_bytes();

        // (1) Local training on every worker.
        let stats = {
            let _span = fda_obs::histogram!(HIST_LOCAL_STEP_US).span();
            self.cluster.local_step()
        };

        // (2)–(3) Local states from drifts, then the AllReduce of the
        //     states — charged at the monitor's state size. The arithmetic
        //     is the component-wise average; the estimate `H(S̄_t)` comes
        //     straight off the averaged state.
        let estimate = {
            let _span = fda_obs::histogram!(HIST_MONITOR_US).span();
            self.compute_states();
            if let Some(codec) = &self.codec_impl {
                // Coded uplink: roundtrip every worker's summary through
                // the codec — what a coordinator reconstructs from an
                // encoded deposit — and charge exactly the emitted bytes
                // plus the raw 4-byte drift scalar (the codec covers the
                // summary only).
                let mut payloads = Vec::with_capacity(self.states.len());
                for s in &mut self.states {
                    let enc = codec.encode(s.summary_slice());
                    payloads.push(4 + enc.len() as u64);
                    let dec = codec
                        .decode(&enc, s.summary_slice().len())
                        .expect("codec decodes own output");
                    s.summary_slice_mut().copy_from_slice(&dec);
                }
                self.cluster.net_mut().charge_per_worker(&payloads);
            } else {
                let state_bytes = self.monitor.state_bytes();
                self.cluster.net_mut().charge_allreduce(state_bytes);
            }
            self.averaged_estimate()
        };
        let charged_mid = self.cluster.comm_bytes();

        // (4) The conditional synchronization.
        let mut synced = false;
        {
            let _span = fda_obs::histogram!(HIST_ALLREDUCE_US).span();
            if estimate > self.theta {
                let w_prev = std::mem::take(&mut self.w_sync);
                let mut w_new = match &self.codec_impl {
                    Some(codec) => self.cluster.allreduce_models_coded(codec.as_ref()),
                    None => self.cluster.allreduce_models(),
                };
                if let Some(delta_codec) = &self.downlink_impl {
                    // Delta downlink mirror: the consensus every worker
                    // ends the round with is the reconstruction of the
                    // coded delta against the previous consensus — load
                    // it uncharged, exactly like the transport does.
                    let (_, recon) =
                        fda_comm::compress::delta_downlink(&w_prev, &w_new, delta_codec.as_ref());
                    self.cluster.load_global(&recon);
                    w_new = recon;
                }
                self.monitor.on_sync(&w_new, &w_prev);
                self.w_sync = w_new;
                self.syncs += 1;
                synced = true;
            }
        }

        if self.telemetry.is_some() {
            self.emit_round_event(charged_before, charged_mid, synced, estimate);
        }

        StepOutcome {
            stats,
            synced,
            variance_estimate: Some(estimate),
        }
    }

    fn set_telemetry(&mut self, sink: Option<JsonlWriter>) -> bool {
        match sink {
            Some(writer) => {
                self.telemetry = Some(TelemetrySession {
                    writer,
                    rounds: 0,
                    decisions: String::new(),
                });
            }
            None => {
                if let Some(sess) = self.telemetry.take() {
                    self.emit_run_event(sess);
                }
            }
        }
        true
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_data::synth::SynthSpec;
    use fda_data::TaskData;

    fn tiny_task() -> TaskData {
        SynthSpec {
            n_train: 240,
            n_test: 80,
            ..SynthSpec::synth_mnist()
        }
        .generate("tiny")
    }

    fn tiny_cluster_config(k: usize) -> ClusterConfig {
        ClusterConfig::small_test(k)
    }

    #[test]
    fn variance_zero_after_every_sync() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.05), tiny_cluster_config(4), &task);
        let mut saw_sync = false;
        for _ in 0..30 {
            let out = fda.step();
            if out.synced {
                saw_sync = true;
                assert!(
                    fda.cluster().exact_variance() < 1e-9,
                    "variance must be exactly zero right after a sync"
                );
                assert!(fda.cluster().models_identical());
            }
        }
        assert!(saw_sync, "Θ small enough that syncs must happen");
    }

    #[test]
    fn round_invariant_certified_when_no_sync() {
        // With the exact monitor, H(S̄) = Var, so "no sync" must mean the
        // true variance is ≤ Θ at every step (the RI, Eq. 3).
        let task = tiny_task();
        let theta = 0.5;
        let mut fda = Fda::new(
            FdaConfig {
                variant: FdaVariant::Exact,
                theta,
            },
            tiny_cluster_config(4),
            &task,
        );
        for _ in 0..40 {
            let out = fda.step();
            if !out.synced {
                let v = fda.cluster().exact_variance();
                assert!(
                    v <= theta * 1.01 + 1e-6,
                    "RI violated without sync: Var = {v} > Θ = {theta}"
                );
            }
        }
    }

    #[test]
    fn linear_estimate_overestimates_true_variance() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(1e9), tiny_cluster_config(3), &task);
        for _ in 0..25 {
            let out = fda.step();
            let est = out.variance_estimate.expect("fda reports estimates");
            let truth = fda.cluster().exact_variance();
            assert!(
                est >= truth - 1e-3 * (1.0 + truth),
                "Theorem 3.2 violated: H = {est} < Var = {truth}"
            );
        }
    }

    #[test]
    fn theta_zero_syncs_every_step() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.0), tiny_cluster_config(3), &task);
        for _ in 0..10 {
            let out = fda.step();
            assert!(out.synced, "Θ = 0 must behave like Synchronous");
        }
        assert_eq!(fda.syncs(), 10);
    }

    #[test]
    fn huge_theta_never_syncs_and_communicates_only_states() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(f32::MAX), tiny_cluster_config(3), &task);
        for _ in 0..20 {
            let out = fda.step();
            assert!(!out.synced);
        }
        assert_eq!(fda.syncs(), 0);
        // 20 steps × 3 workers × 8-byte linear state.
        assert_eq!(fda.comm_bytes(), 20 * 3 * 8);
    }

    #[test]
    fn sketch_state_costs_dominate_linear_but_not_models() {
        let task = tiny_task();
        let k = 3;
        let mut sketch = Fda::new(FdaConfig::sketch(f32::MAX), tiny_cluster_config(k), &task);
        for _ in 0..5 {
            sketch.step();
        }
        let per_step_per_worker = 5_004u64; // paper's 5 kB + scalar
        assert_eq!(sketch.comm_bytes(), 5 * k as u64 * per_step_per_worker);
        // Still far below one model payload per step.
        let model_bytes = sketch.cluster().dim() as u64 * 4;
        assert!(per_step_per_worker < model_bytes);
    }

    #[test]
    fn higher_theta_means_fewer_syncs() {
        let task = tiny_task();
        let mut counts = Vec::new();
        for theta in [0.02f32, 0.2, 2.0] {
            let mut fda = Fda::new(FdaConfig::linear(theta), tiny_cluster_config(4), &task);
            for _ in 0..40 {
                fda.step();
            }
            counts.push(fda.syncs());
        }
        assert!(
            counts[0] >= counts[1] && counts[1] >= counts[2],
            "syncs must fall as Θ rises: {counts:?}"
        );
        assert!(counts[0] > counts[2], "sweep should actually differentiate");
    }

    #[test]
    fn xi_refreshes_after_second_sync() {
        let task = tiny_task();
        let mut fda = Fda::new(FdaConfig::linear(0.01), tiny_cluster_config(3), &task);
        let mut syncs_seen = 0;
        for _ in 0..60 {
            if fda.step().synced {
                syncs_seen += 1;
                if syncs_seen >= 2 {
                    break;
                }
            }
        }
        assert!(syncs_seen >= 2, "need two syncs to form ξ");
        // After ≥ 1 sync the monitor has a ξ; estimates must remain valid
        // over-estimates (checked implicitly by the RI test above), and the
        // estimate should now be able to drop below mean‖u‖².
        let out = fda.step();
        assert!(out.variance_estimate.is_some());
    }
}
