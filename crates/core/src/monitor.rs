//! Variance monitors: local states and the estimation functions `H(S̄)`.
//!
//! A monitor answers one question per step: *given only the averaged local
//! states, can the cluster certify that the model variance is still below
//! Θ?* The three implementations trade communication for estimation
//! fidelity exactly as §3.1–§3.2 of the paper describe:
//!
//! | Monitor           | Summary of drift `u`     | Bytes/worker/step | Guarantee          |
//! |-------------------|--------------------------|-------------------|--------------------|
//! | [`SketchMonitor`] | AMS sketch `sk(u)`       | `l·m·4 + 4`       | prob. ≥ 1 − δ      |
//! | [`LinearMonitor`] | scalar `⟨ξ, u⟩`          | `4 + 4`           | deterministic      |
//! | [`ExactMonitor`]  | the full drift (oracle)  | `d·4 + 4`         | exact (tests only) |

use fda_sketch::{AmsSketch, SketchConfig, SketchPlan};
use fda_tensor::vector;

/// A worker's local state `S_t^(k)`: the scalar `‖u‖²` plus a
/// variant-specific low-dimensional summary of the drift.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalState {
    /// `‖u_t^(k)‖₂²` — always transmitted (4 bytes).
    pub drift_sq_norm: f32,
    /// The drift summary.
    pub summary: StateSummary,
}

/// The variant-specific part of a local state.
#[derive(Debug, Clone, PartialEq)]
pub enum StateSummary {
    /// AMS sketch of the drift (SketchFDA).
    Sketch(AmsSketch),
    /// `⟨ξ, u⟩` for the shared unit vector ξ (LinearFDA).
    Linear(f32),
    /// The full drift vector (oracle; for tests and ablations).
    Exact(Vec<f32>),
}

impl LocalState {
    /// The summary's flat `f32` payload — the exact numbers the state
    /// AllReduce would put on the wire. A `Linear` summary is a 1-element
    /// slice; averaging any variant is element-wise over this slice.
    pub fn summary_slice(&self) -> &[f32] {
        match &self.summary {
            StateSummary::Sketch(sk) => sk.as_slice(),
            StateSummary::Linear(v) => std::slice::from_ref(v),
            StateSummary::Exact(v) => v,
        }
    }

    /// Mutable view of the summary payload (for in-place reductions).
    pub fn summary_slice_mut(&mut self) -> &mut [f32] {
        match &mut self.summary {
            StateSummary::Sketch(sk) => sk.as_mut_slice(),
            StateSummary::Linear(v) => std::slice::from_mut(v),
            StateSummary::Exact(v) => v,
        }
    }

    /// Whether two states carry the same summary variant and payload
    /// length — the precondition [`LocalState::average_refs`] panics on.
    /// A transport coordinator validates each deposit against a template
    /// state with this, so a well-framed but wrong-shaped state from a
    /// broken peer becomes a per-worker protocol drop instead of a
    /// process abort.
    pub fn same_shape(&self, other: &LocalState) -> bool {
        std::mem::discriminant(&self.summary) == std::mem::discriminant(&other.summary)
            && self.summary_slice().len() == other.summary_slice().len()
    }

    /// Averages `K` local states component-wise — the arithmetic the state
    /// AllReduce performs. All states must come from the same monitor.
    ///
    /// # Panics
    /// Panics on an empty slice or mixed summary variants.
    pub fn average(states: &[LocalState]) -> LocalState {
        let refs: Vec<&LocalState> = states.iter().collect();
        LocalState::average_refs(&refs)
    }

    /// [`LocalState::average`] over references (callers with long-lived
    /// per-worker states avoid cloning them just to average).
    ///
    /// The summary accumulation is *copy-first, then add in worker order* —
    /// the same association as `SimNetwork::allreduce_mean` and
    /// `fda_tensor::vector::mean_range_into` — so chunk-parallel
    /// reductions over the summary payload are bit-identical to this
    /// sequential reference.
    ///
    /// # Panics
    /// Panics on an empty slice or mixed summary variants.
    pub fn average_refs(states: &[&LocalState]) -> LocalState {
        assert!(!states.is_empty(), "state average: empty input");
        let k = states.len() as f32;
        let variant = std::mem::discriminant(&states[0].summary);
        assert!(
            states
                .iter()
                .all(|s| std::mem::discriminant(&s.summary) == variant),
            "state average: mixed summary variants"
        );
        let drift_sq_norm = states.iter().map(|s| s.drift_sq_norm).sum::<f32>() / k;
        let mut avg = (*states[0]).clone();
        {
            let out = avg.summary_slice_mut();
            for s in &states[1..] {
                vector::add_assign(out, s.summary_slice());
            }
            vector::scale(out, 1.0 / k);
        }
        avg.drift_sq_norm = drift_sq_norm;
        avg
    }
}

/// The monitor interface of the FDA protocol (Algorithm 1 lines 6–8).
///
/// `Sync` because the pooled runtime shares one monitor across all worker
/// lanes during the (read-only) state-construction phase; `on_sync` — the
/// only `&mut` method — runs on the dispatching thread between phases.
pub trait VarianceMonitor: Send + Sync {
    /// Monitor name for reports (`sketch` / `linear` / `exact`).
    fn name(&self) -> &'static str;

    /// Wire size of one worker's local state in bytes (charged per step).
    fn state_bytes(&self) -> u64;

    /// Computes a worker's local state from its current drift
    /// `u_t^(k) = w_t^(k) − w_t0`.
    fn local_state(&self, drift: &[f32]) -> LocalState;

    /// Writes a worker's local state into an existing, correctly-shaped
    /// slot — the borrow-friendly form the pooled runtime uses so the
    /// steady state constructs states without allocating. Falls back to
    /// [`VarianceMonitor::local_state`] (which allocates) on shape
    /// mismatch; produces bit-identical values either way.
    fn local_state_into(&self, drift: &[f32], out: &mut LocalState) {
        *out = self.local_state(drift);
    }

    /// The estimation function `H(S̄_t)`: an over-estimate of `Var(w_t)`
    /// computed from the averaged state.
    fn estimate(&self, avg: &LocalState) -> f32;

    /// Hook invoked right after a synchronization with the new global
    /// model and the previous synchronization's model (used by
    /// [`LinearMonitor`] to refresh ξ; no-op otherwise).
    fn on_sync(&mut self, w_new: &[f32], w_prev: &[f32]) {
        let _ = (w_new, w_prev);
    }
}

/// SketchFDA's monitor (§3.1, Theorem 3.1).
///
/// `H(S̄) = mean‖u‖² − M2(mean sketch)/(1+ε)`: the `1/(1+ε)` deflation
/// turns the (1 ± ε) multiplicative sketch guarantee into a one-sided
/// over-estimate of the variance with probability ≥ 1 − δ.
pub struct SketchMonitor {
    plan: SketchPlan,
    epsilon: f32,
}

impl SketchMonitor {
    /// Creates the monitor for `dim`-parameter models.
    pub fn new(config: SketchConfig, dim: usize) -> SketchMonitor {
        SketchMonitor {
            epsilon: config.epsilon() as f32,
            plan: config.build_plan(dim),
        }
    }

    /// The sketch configuration in use.
    pub fn config(&self) -> SketchConfig {
        self.plan.config()
    }
}

impl VarianceMonitor for SketchMonitor {
    fn name(&self) -> &'static str {
        "sketch"
    }

    fn state_bytes(&self) -> u64 {
        self.plan.config().byte_size() as u64 + 4
    }

    fn local_state(&self, drift: &[f32]) -> LocalState {
        LocalState {
            drift_sq_norm: vector::norm_sq(drift),
            summary: StateSummary::Sketch(self.plan.sketch(drift)),
        }
    }

    fn local_state_into(&self, drift: &[f32], out: &mut LocalState) {
        let _span = fda_obs::histogram!("fda_sketch_us").span();
        out.drift_sq_norm = vector::norm_sq(drift);
        match &mut out.summary {
            StateSummary::Sketch(sk)
                if sk.rows() == self.plan.config().rows && sk.cols() == self.plan.config().cols =>
            {
                self.plan.sketch_into(drift, sk);
            }
            summary => *summary = StateSummary::Sketch(self.plan.sketch(drift)),
        }
    }

    fn estimate(&self, avg: &LocalState) -> f32 {
        let sketch = match &avg.summary {
            StateSummary::Sketch(sk) => sk,
            _ => panic!("sketch monitor: wrong summary variant"),
        };
        // By linearity, the average of sketches IS the sketch of ū.
        avg.drift_sq_norm - sketch.estimate_sq_norm() / (1.0 + self.epsilon)
    }
}

/// LinearFDA's monitor (§3.2, Theorem 3.2).
///
/// `H(S̄) = mean‖u‖² − ⟨ξ, ū⟩²` with `‖ξ‖ = 1`; Cauchy–Schwarz makes this a
/// *deterministic* over-estimate. ξ is the heuristic direction: the
/// normalized difference of the last two synchronized models
/// `(w_t0 − w_t−1)/‖·‖` — all workers compute it locally, no extra
/// communication. Before two syncs have happened ξ is undefined and the
/// monitor conservatively uses `⟨ξ, u⟩ = 0` (maximal over-estimate).
pub struct LinearMonitor {
    xi: Option<Vec<f32>>,
}

impl LinearMonitor {
    /// Creates the monitor (ξ unset until the second synchronization).
    pub fn new() -> LinearMonitor {
        LinearMonitor { xi: None }
    }

    /// The current heuristic direction, if any.
    pub fn xi(&self) -> Option<&[f32]> {
        self.xi.as_deref()
    }
}

impl Default for LinearMonitor {
    fn default() -> Self {
        LinearMonitor::new()
    }
}

impl VarianceMonitor for LinearMonitor {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn state_bytes(&self) -> u64 {
        4 + 4
    }

    fn local_state(&self, drift: &[f32]) -> LocalState {
        let proj = match &self.xi {
            Some(xi) => vector::dot(xi, drift),
            None => 0.0,
        };
        LocalState {
            drift_sq_norm: vector::norm_sq(drift),
            summary: StateSummary::Linear(proj),
        }
    }

    fn estimate(&self, avg: &LocalState) -> f32 {
        let proj = match &avg.summary {
            StateSummary::Linear(v) => *v,
            _ => panic!("linear monitor: wrong summary variant"),
        };
        avg.drift_sq_norm - proj * proj
    }

    fn on_sync(&mut self, w_new: &[f32], w_prev: &[f32]) {
        let mut xi = vec![0.0f32; w_new.len()];
        vector::sub_into(w_new, w_prev, &mut xi);
        let norm = vector::normalize(&mut xi);
        // A zero difference (identical consecutive syncs) gives no usable
        // direction; keep the previous ξ in that degenerate case.
        if norm > 0.0 && norm.is_finite() {
            self.xi = Some(xi);
        }
    }
}

/// The oracle monitor: ships the entire drift, so `H(S̄) = Var(w_t)`
/// exactly (Eq. 4). Communication-wise this is as expensive as
/// synchronizing, so it exists only for tests and for quantifying the
/// estimation gap of the practical monitors (ablation benches).
pub struct ExactMonitor {
    dim: usize,
}

impl ExactMonitor {
    /// Creates the oracle for `dim`-parameter models.
    pub fn new(dim: usize) -> ExactMonitor {
        ExactMonitor { dim }
    }
}

impl VarianceMonitor for ExactMonitor {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn state_bytes(&self) -> u64 {
        self.dim as u64 * 4 + 4
    }

    fn local_state(&self, drift: &[f32]) -> LocalState {
        LocalState {
            drift_sq_norm: vector::norm_sq(drift),
            summary: StateSummary::Exact(drift.to_vec()),
        }
    }

    fn local_state_into(&self, drift: &[f32], out: &mut LocalState) {
        out.drift_sq_norm = vector::norm_sq(drift);
        match &mut out.summary {
            StateSummary::Exact(v) if v.len() == drift.len() => v.copy_from_slice(drift),
            summary => *summary = StateSummary::Exact(drift.to_vec()),
        }
    }

    fn estimate(&self, avg: &LocalState) -> f32 {
        let u_bar = match &avg.summary {
            StateSummary::Exact(v) => v,
            _ => panic!("exact monitor: wrong summary variant"),
        };
        avg.drift_sq_norm - vector::norm_sq(u_bar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_tensor::Rng;

    fn random_drifts(seed: u64, k: usize, d: usize, scale: f32) -> Vec<Vec<f32>> {
        let mut rng = Rng::new(seed);
        (0..k)
            .map(|_| {
                let mut v = vec![0.0f32; d];
                rng.fill_normal(&mut v, 0.0, scale);
                v
            })
            .collect()
    }

    fn true_variance(drifts: &[Vec<f32>]) -> f32 {
        let refs: Vec<&[f32]> = drifts.iter().map(|d| d.as_slice()).collect();
        vector::variance_from_drifts(&refs)
    }

    #[test]
    fn exact_monitor_equals_variance() {
        let drifts = random_drifts(1, 6, 200, 1.0);
        let m = ExactMonitor::new(200);
        let states: Vec<LocalState> = drifts.iter().map(|d| m.local_state(d)).collect();
        let avg = LocalState::average(&states);
        let est = m.estimate(&avg);
        let truth = true_variance(&drifts);
        assert!(
            (est - truth).abs() < 1e-2 * (1.0 + truth),
            "exact: {est} vs {truth}"
        );
    }

    #[test]
    fn linear_monitor_always_overestimates() {
        // Theorem 3.2: deterministic over-estimate, whatever ξ is.
        for seed in 0..20u64 {
            let drifts = random_drifts(seed, 5, 100, 0.5);
            let mut m = LinearMonitor::new();
            // Install an arbitrary ξ via the sync hook.
            let w_new = random_drifts(seed + 100, 1, 100, 1.0).pop().unwrap();
            let w_prev = random_drifts(seed + 200, 1, 100, 1.0).pop().unwrap();
            m.on_sync(&w_new, &w_prev);
            let states: Vec<LocalState> = drifts.iter().map(|d| m.local_state(d)).collect();
            let est = m.estimate(&LocalState::average(&states));
            let truth = true_variance(&drifts);
            assert!(
                est >= truth - 1e-3 * (1.0 + truth.abs()),
                "seed {seed}: H = {est} < Var = {truth}"
            );
        }
    }

    #[test]
    fn linear_monitor_without_xi_uses_full_norm() {
        let drifts = random_drifts(3, 4, 50, 1.0);
        let m = LinearMonitor::new();
        let states: Vec<LocalState> = drifts.iter().map(|d| m.local_state(d)).collect();
        let avg = LocalState::average(&states);
        let est = m.estimate(&avg);
        assert!(
            (est - avg.drift_sq_norm).abs() < 1e-6,
            "no ξ ⇒ H = mean‖u‖²"
        );
    }

    #[test]
    fn linear_xi_is_unit_and_ignores_degenerate_sync() {
        let mut m = LinearMonitor::new();
        let a = vec![1.0f32, 2.0, 2.0];
        let b = vec![1.0f32, 0.0, 0.0];
        m.on_sync(&a, &b);
        let xi = m.xi().expect("xi set").to_vec();
        assert!((vector::norm(&xi) - 1.0).abs() < 1e-6);
        // Degenerate sync (identical models) must not clobber ξ.
        m.on_sync(&a, &a);
        assert_eq!(m.xi().unwrap(), xi.as_slice());
    }

    #[test]
    fn linear_perfect_xi_gives_tight_estimate() {
        // If all drifts are parallel to ξ, ⟨ξ, ū⟩² = ‖ū‖² and H = Var.
        let dir = {
            let mut v = random_drifts(7, 1, 80, 1.0).pop().unwrap();
            vector::normalize(&mut v);
            v
        };
        let mut m = LinearMonitor::new();
        let origin = vec![0.0f32; 80];
        m.on_sync(&dir, &origin); // ξ = dir
        let drifts: Vec<Vec<f32>> = (1..=4)
            .map(|i| {
                let mut d = dir.clone();
                vector::scale(&mut d, i as f32);
                d
            })
            .collect();
        let states: Vec<LocalState> = drifts.iter().map(|d| m.local_state(d)).collect();
        let est = m.estimate(&LocalState::average(&states));
        let truth = true_variance(&drifts);
        assert!(
            (est - truth).abs() < 1e-2 * (1.0 + truth),
            "tight case: H = {est}, Var = {truth}"
        );
    }

    #[test]
    fn sketch_monitor_overestimates_with_high_probability() {
        // Theorem 3.1: H ≥ Var with probability ≥ 1 − δ. With the paper's
        // (l, m) the failure probability is ~5%; over 40 seeds allow a few.
        let d = 500;
        let mut failures = 0;
        for seed in 0..40u64 {
            let drifts = random_drifts(seed, 8, d, 1.0);
            let m = SketchMonitor::new(fda_sketch::SketchConfig::new(5, 250, seed + 1000), d);
            let states: Vec<LocalState> = drifts.iter().map(|u| m.local_state(u)).collect();
            let est = m.estimate(&LocalState::average(&states));
            let truth = true_variance(&drifts);
            if est < truth {
                failures += 1;
            }
        }
        assert!(
            failures <= 6,
            "sketch over-estimate failed {failures}/40 times"
        );
    }

    #[test]
    fn sketch_estimate_is_much_tighter_than_norm_bound() {
        // The whole point of the sketch: H should sit close to Var, far
        // below the trivial bound mean‖u‖² (which is what Linear-without-ξ
        // gives). Use drifts with a strong common component so
        // ‖ū‖² ≫ 0 and the bounds differ a lot.
        let d = 400;
        let mut rng = Rng::new(5);
        let mut common = vec![0.0f32; d];
        rng.fill_normal(&mut common, 0.0, 1.0);
        let drifts: Vec<Vec<f32>> = (0..6)
            .map(|_| {
                let mut v = common.clone();
                let mut noise = vec![0.0f32; d];
                rng.fill_normal(&mut noise, 0.0, 0.2);
                vector::add_assign(&mut v, &noise);
                v
            })
            .collect();
        let m = SketchMonitor::new(fda_sketch::SketchConfig::paper_default(), d);
        let states: Vec<LocalState> = drifts.iter().map(|u| m.local_state(u)).collect();
        let avg = LocalState::average(&states);
        let est = m.estimate(&avg);
        let truth = true_variance(&drifts);
        let trivial = avg.drift_sq_norm;
        assert!(est >= truth * 0.8, "est {est} vs truth {truth}");
        assert!(
            est < truth + 0.25 * (trivial - truth),
            "sketch bound {est} should be much closer to Var {truth} than the trivial bound {trivial}"
        );
    }

    #[test]
    fn state_bytes_match_paper() {
        let sketch = SketchMonitor::new(fda_sketch::SketchConfig::paper_default(), 100);
        assert_eq!(sketch.state_bytes(), 5_000 + 4); // "5 kB" + the scalar
        let linear = LinearMonitor::new();
        assert_eq!(linear.state_bytes(), 8); // two numbers
        let exact = ExactMonitor::new(100);
        assert_eq!(exact.state_bytes(), 404);
    }

    #[test]
    fn average_state_is_componentwise() {
        let m = LinearMonitor::new();
        let a = m.local_state(&[1.0, 0.0]);
        let b = m.local_state(&[0.0, 2.0]);
        let avg = LocalState::average(&[a, b]);
        assert!((avg.drift_sq_norm - (1.0 + 4.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mixed summary variants")]
    fn mixed_variants_panic() {
        let lin = LinearMonitor::new().local_state(&[1.0]);
        let exa = ExactMonitor::new(1).local_state(&[1.0]);
        let _ = LocalState::average(&[lin, exa]);
    }

    /// The borrow-friendly `local_state_into` must be bit-identical to the
    /// allocating `local_state` for every monitor, including when reusing
    /// a slot populated by a previous (different) drift.
    #[test]
    fn local_state_into_matches_local_state() {
        let d = 300;
        let drifts = random_drifts(11, 2, d, 1.0);
        let monitors: Vec<Box<dyn VarianceMonitor>> = vec![
            Box::new(SketchMonitor::new(
                fda_sketch::SketchConfig::new(4, 64, 3),
                d,
            )),
            Box::new({
                let mut m = LinearMonitor::new();
                let w = random_drifts(40, 2, d, 1.0);
                m.on_sync(&w[0], &w[1]);
                m
            }),
            Box::new(ExactMonitor::new(d)),
        ];
        for m in &monitors {
            let mut slot = m.local_state(&vec![0.0; d]);
            for drift in &drifts {
                m.local_state_into(drift, &mut slot);
                let fresh = m.local_state(drift);
                assert_eq!(slot, fresh, "{} reuse diverged", m.name());
            }
        }
    }

    /// `average_refs` avoids clones and matches `average` bit-for-bit, and
    /// its summary slices round-trip through the flat payload view.
    #[test]
    fn average_refs_matches_average() {
        let drifts = random_drifts(5, 6, 128, 0.7);
        let m = SketchMonitor::new(fda_sketch::SketchConfig::new(3, 32, 9), 128);
        let states: Vec<LocalState> = drifts.iter().map(|u| m.local_state(u)).collect();
        let refs: Vec<&LocalState> = states.iter().collect();
        let a = LocalState::average(&states);
        let b = LocalState::average_refs(&refs);
        assert_eq!(a, b);
        assert_eq!(a.summary_slice().len(), 3 * 32);
        let lin = LinearMonitor::new().local_state(&[2.0, 0.0]);
        assert_eq!(lin.summary_slice(), &[0.0]);
    }
}
