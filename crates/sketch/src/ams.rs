//! The AMS sketch: construction, linear combination, and L2 estimation.
//!
//! Construction is *plan-based*: a [`SketchConfig`] (shared by every worker,
//! like the paper's common hash functions) expands into a [`SketchPlan`]
//! that precomputes the sign and bucket of every coordinate for every row,
//! packed into one `u32` per coordinate (bucket in the low 31 bits, sign in
//! bit 31). Sketching a drift vector is then a table-driven scatter-add of
//! cost `O(l·d)` with no hashing in the hot loop — important because
//! SketchFDA sketches the local drift at **every** training step. The
//! accumulate inner loop dispatches through the kernel layer
//! ([`fda_tensor::simd`]); every arm shares the same single-pass scatter
//! (the dependent bucket adds are latency-bound, so a vectorized staging
//! pass measured slower — see the kernel tables), which makes every
//! dispatch arm bit-identical by construction. The packed entry itself is
//! the win: one 4-byte table stream and an XOR sign flip instead of a
//! sign table and a multiply.

use crate::hashing::FourWiseHash;
use fda_tensor::{simd, stats, Rng};

/// Shared sketch configuration: dimensions and the hash-family seed.
///
/// Workers must use identical configs; otherwise their sketches are not
/// linearly combinable (AllReduce over sketches would be meaningless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Number of independent estimator rows `l` (median dimension).
    pub rows: usize,
    /// Number of buckets per row `m` (averaging dimension).
    pub cols: usize,
    /// Seed of the shared hash family.
    pub seed: u64,
}

impl SketchConfig {
    /// The paper's recommended configuration (§3.3): `l = 5`, `m = 250`,
    /// i.e. a 5 kB sketch with measured ε ≈ 6% at ≈95% confidence.
    pub fn paper_default() -> SketchConfig {
        SketchConfig {
            rows: 5,
            cols: 250,
            seed: 0xFDA_2025,
        }
    }

    /// Creates a config with explicit dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, seed: u64) -> SketchConfig {
        assert!(rows >= 1 && cols >= 1, "sketch dims must be positive");
        SketchConfig { rows, cols, seed }
    }

    /// A sketch sized *relative to the model*: `m ≈ d/250` (clamped to
    /// `[32, 250]`), keeping `l = 5`.
    ///
    /// The paper pairs a fixed 5 kB sketch with models of 62 K–198 M
    /// parameters, i.e. the sketch is ≤ 2% of one model payload. Our zoo
    /// is ~3 orders of magnitude smaller, so a fixed 5 kB sketch would be
    /// up to a third of the model — a cost *structure* the paper never
    /// evaluates. Scaling `m` with `d` preserves the paper's
    /// sketch-to-model cost ratio at the price of a looser ε = 1/√m; the
    /// `1/(1+ε)` deflation in the estimator keeps the over-estimate
    /// guarantee, it just triggers somewhat earlier syncs.
    pub fn scaled_for(dim: usize) -> SketchConfig {
        let cols = (dim / 250).clamp(32, 250);
        SketchConfig {
            rows: 5,
            cols,
            seed: 0xFDA_2025,
        }
    }

    /// Empirical relative error of the median estimator, ε ≈ 1/√m.
    ///
    /// Matches the paper's measured ε ≈ 6% at `m = 250` (1/√250 ≈ 0.063).
    pub fn epsilon(&self) -> f64 {
        1.0 / (self.cols as f64).sqrt()
    }

    /// Sketch size in bytes (each counter is an `f32`), the per-step
    /// AllReduce payload SketchFDA adds on top of the two scalars.
    pub fn byte_size(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Expands the config into a plan for `dim`-dimensional inputs.
    pub fn build_plan(&self, dim: usize) -> SketchPlan {
        let mut rng = Rng::new(self.seed);
        let mut entries = vec![0u32; self.rows * dim];
        for r in 0..self.rows {
            let sign_hash = FourWiseHash::random(&mut rng);
            let bucket_hash = FourWiseHash::random(&mut rng);
            let e = &mut entries[r * dim..(r + 1) * dim];
            for (i, e) in e.iter_mut().enumerate() {
                let bucket = bucket_hash.bucket(i as u64, self.cols) as u32;
                debug_assert!(bucket < 1 << 31, "bucket overflows the packed entry");
                let sign = if sign_hash.sign(i as u64) > 0.0 {
                    0
                } else {
                    SketchPlan::SIGN_BIT
                };
                *e = bucket | sign;
            }
        }
        SketchPlan {
            config: *self,
            dim,
            entries,
        }
    }
}

/// Precomputed packed sign/bucket table for sketching `dim`-dimensional
/// vectors under a fixed [`SketchConfig`].
#[derive(Debug, Clone)]
pub struct SketchPlan {
    config: SketchConfig,
    dim: usize,
    // Row-major `rows × dim`; each entry packs `bucket | sign << 31`.
    // One table stream instead of separate sign/bucket arrays halves the
    // table bytes pulled through the scatter-add per coordinate.
    entries: Vec<u32>,
}

impl SketchPlan {
    /// Bit 31 of a packed entry holds the coordinate's sign (set = −1).
    const SIGN_BIT: u32 = 0x8000_0000;

    /// The underlying configuration.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Input dimension this plan supports.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Sketches `v` into a fresh [`AmsSketch`].
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn sketch(&self, v: &[f32]) -> AmsSketch {
        let mut out = AmsSketch::zeros(self.config.rows, self.config.cols);
        self.sketch_into(v, &mut out);
        out
    }

    /// Sketches `v` into an existing sketch buffer (overwriting it) — the
    /// borrow-friendly hot-path entry: SketchFDA sketches every worker's
    /// drift at every step, and reusing each worker's sketch buffer keeps
    /// the monitor phase allocation-free (and safe to run on per-worker
    /// pool lanes, since `self` is only read). Runs on the process-wide
    /// dispatched kernel arm.
    pub fn sketch_into(&self, v: &[f32], out: &mut AmsSketch) {
        self.sketch_into_with_kernel(simd::kernels(), v, out);
    }

    /// [`SketchPlan::sketch_into`] on an explicit kernel table — test
    /// support for exercising every ISA arm in one process (obtain tables
    /// via [`simd::all_supported`]). All arms produce bit-identical
    /// sketches: the scatter-add order is ascending `i` in every arm, and
    /// the sign is applied as an exact sign-bit flip.
    pub fn sketch_into_with_kernel(&self, kn: &simd::Kernels, v: &[f32], out: &mut AmsSketch) {
        assert_eq!(v.len(), self.dim, "sketch: input dimension mismatch");
        assert_eq!(out.rows, self.config.rows, "sketch: row mismatch");
        assert_eq!(out.cols, self.config.cols, "sketch: col mismatch");
        out.data.iter_mut().for_each(|x| *x = 0.0);
        let cols = self.config.cols;
        for r in 0..self.config.rows {
            let entries = &self.entries[r * self.dim..(r + 1) * self.dim];
            let row = &mut out.data[r * cols..(r + 1) * cols];
            (kn.sketch_accumulate)(entries, v, row);
        }
    }
}

/// An `l × m` AMS sketch (dense `f32` counters).
#[derive(Debug, Clone, PartialEq)]
pub struct AmsSketch {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl AmsSketch {
    /// The all-zero sketch (sketch of the zero vector).
    pub fn zeros(rows: usize, cols: usize) -> AmsSketch {
        AmsSketch {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of estimator rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of buckets per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw counters (row-major), e.g. for transport.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw counters (row-major), e.g. for AllReduce in place.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Wire size in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * 4
    }

    /// The `M2` estimator: median over rows of the row's squared L2 norm.
    ///
    /// `M2(sk(v)) ≈ ‖v‖²` within `(1 ± ε)` w.p. `≥ 1 − δ` (§3.1).
    pub fn estimate_sq_norm(&self) -> f32 {
        let mut row_estimates = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            row_estimates.push(fda_tensor::vector::norm_sq(row));
        }
        stats::median_f32(&row_estimates)
    }

    /// `self ← self + α·other` — the linearity property (§3.1, property a).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &AmsSketch) {
        assert_eq!(self.rows, other.rows, "sketch axpy: row mismatch");
        assert_eq!(self.cols, other.cols, "sketch axpy: col mismatch");
        fda_tensor::vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// `self ← self · α`.
    pub fn scale(&mut self, alpha: f32) {
        fda_tensor::vector::scale(&mut self.data, alpha);
    }

    /// Copies another sketch's counters into this one, reusing the
    /// allocation.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &AmsSketch) {
        assert_eq!(self.rows, other.rows, "sketch copy: row mismatch");
        assert_eq!(self.cols, other.cols, "sketch copy: col mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Average of several sketches — what AllReduce produces from the
    /// workers' local-state sketches. Accumulates copy-first in input
    /// order, the same association every AllReduce path in the workspace
    /// uses, so sequential and chunk-parallel reductions agree bit-for-bit.
    pub fn average(sketches: &[&AmsSketch]) -> AmsSketch {
        assert!(!sketches.is_empty(), "sketch average: empty input");
        let mut out = sketches[0].clone();
        for s in &sketches[1..] {
            out.axpy(1.0, s);
        }
        out.scale(1.0 / sketches.len() as f32);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_vec(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v, 0.0, 1.0);
        v
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let plan = SketchConfig::paper_default().build_plan(100);
        let sk = plan.sketch(&vec![0.0; 100]);
        assert_eq!(sk.estimate_sq_norm(), 0.0);
    }

    #[test]
    fn single_coordinate_is_exact() {
        // A 1-sparse vector collides with nothing: every row estimate is
        // exactly x² regardless of hashing.
        let plan = SketchConfig::new(5, 16, 7).build_plan(50);
        let mut v = vec![0.0f32; 50];
        v[13] = 3.0;
        let sk = plan.sketch(&v);
        assert!((sk.estimate_sq_norm() - 9.0).abs() < 1e-5);
    }

    #[test]
    fn estimate_within_epsilon_typically() {
        let config = SketchConfig::paper_default();
        let dim = 2_000;
        let plan = config.build_plan(dim);
        let mut within = 0;
        let trials = 40;
        for t in 0..trials {
            let v = random_vec(100 + t, dim);
            let truth = fda_tensor::vector::norm_sq(&v);
            let est = plan.sketch(&v).estimate_sq_norm();
            // Allow 3ε for the pass/fail line; count how many land in 2ε.
            let rel = ((est - truth) / truth).abs() as f64;
            if rel <= 2.0 * config.epsilon() {
                within += 1;
            }
            assert!(
                rel < 6.0 * config.epsilon(),
                "trial {t}: rel err {rel} hopeless (ε = {})",
                config.epsilon()
            );
        }
        assert!(
            within >= trials * 8 / 10,
            "only {within}/{trials} within 2ε"
        );
    }

    #[test]
    fn linearity_exact() {
        let plan = SketchConfig::new(3, 32, 5).build_plan(200);
        let a = random_vec(1, 200);
        let b = random_vec(2, 200);
        let alpha = 0.7f32;
        let beta = -1.3f32;
        // sk(αa + βb)
        let combo: Vec<f32> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| alpha * x + beta * y)
            .collect();
        let sk_combo = plan.sketch(&combo);
        // α·sk(a) + β·sk(b)
        let mut lin = AmsSketch::zeros(3, 32);
        lin.axpy(alpha, &plan.sketch(&a));
        lin.axpy(beta, &plan.sketch(&b));
        for (x, y) in sk_combo.as_slice().iter().zip(lin.as_slice()) {
            assert!((x - y).abs() < 1e-3, "linearity violated: {x} vs {y}");
        }
    }

    #[test]
    fn average_equals_sketch_of_average() {
        let plan = SketchConfig::new(4, 64, 9).build_plan(300);
        let vs: Vec<Vec<f32>> = (0..5).map(|i| random_vec(i + 10, 300)).collect();
        let sketches: Vec<AmsSketch> = vs.iter().map(|v| plan.sketch(v)).collect();
        let refs: Vec<&AmsSketch> = sketches.iter().collect();
        let avg_sketch = AmsSketch::average(&refs);
        let vrefs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let avg_vec = fda_tensor::vector::mean(&vrefs);
        let sketch_of_avg = plan.sketch(&avg_vec);
        for (x, y) in avg_sketch.as_slice().iter().zip(sketch_of_avg.as_slice()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn byte_size_matches_paper() {
        // l·m·4 = 5·250·4 = 5000 bytes ("5 kB", §3.3).
        assert_eq!(SketchConfig::paper_default().byte_size(), 5_000);
    }

    #[test]
    fn different_seeds_different_plans() {
        let a = SketchConfig::new(2, 16, 1).build_plan(64);
        let b = SketchConfig::new(2, 16, 2).build_plan(64);
        let v = random_vec(3, 64);
        assert_ne!(a.sketch(&v).as_slice(), b.sketch(&v).as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let plan = SketchConfig::new(2, 8, 1).build_plan(10);
        let _ = plan.sketch(&[0.0; 11]);
    }

    /// Every kernel arm the host supports produces bit-identical sketches
    /// (the arms share one single-pass scatter loop; this pins that
    /// contract), including at dimensions that stress lane-boundary
    /// tails.
    #[test]
    fn sketch_bit_identical_across_kernel_arms() {
        use fda_tensor::simd;
        let scalar = simd::table_for(simd::Isa::Scalar).expect("scalar always supported");
        for dim in [1usize, 15, 16, 17, 127, 128, 129, 1000] {
            let plan = SketchConfig::new(3, 16, 11).build_plan(dim);
            let v = random_vec(dim as u64, dim);
            let mut want = AmsSketch::zeros(3, 16);
            plan.sketch_into_with_kernel(scalar, &v, &mut want);
            for kn in simd::all_supported() {
                let mut got = AmsSketch::zeros(3, 16);
                plan.sketch_into_with_kernel(kn, &v, &mut got);
                for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "arm {} diverged at dim {dim}",
                        kn.name()
                    );
                }
            }
        }
    }

    /// `sketch_into` reuse and `copy_from` are bit-identical to the
    /// allocating constructors.
    #[test]
    fn buffer_reuse_matches_fresh_sketch() {
        let plan = SketchConfig::new(3, 16, 4).build_plan(120);
        let a = random_vec(1, 120);
        let b = random_vec(2, 120);
        let mut reused = plan.sketch(&a);
        plan.sketch_into(&b, &mut reused);
        assert_eq!(reused, plan.sketch(&b), "sketch_into reuse diverged");
        let mut copy = AmsSketch::zeros(3, 16);
        copy.copy_from(&reused);
        assert_eq!(copy, reused);
    }
}
