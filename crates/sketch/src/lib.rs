//! # fda-sketch
//!
//! AMS (Alon–Matias–Szegedy) sketches as used by **SketchFDA** (§3.1 of the
//! paper) to estimate the squared L2 norm of the average worker drift
//! `‖ū_t‖²` from small, linearly-combinable summaries.
//!
//! An AMS sketch of `v ∈ R^d` is an `l × m` matrix; each row `ψ_i` is a
//! random ±1 projection of `v` bucketed into `m` counters. The estimator
//! `M2(sk(v)) = median_i ‖ψ_i‖²` satisfies, for `l = O(log 1/δ)` and
//! `m = O(1/ε²)`:
//!
//! ```text
//! Pr[ M2(sk(v)) ∈ (1 ± ε)·‖v‖² ] ≥ 1 − δ
//! ```
//!
//! The two crucial properties exploited by SketchFDA are
//!
//! 1. **linearity** — `sk(αa + βb) = α·sk(a) + β·sk(b)`, so AllReduce over
//!    sketches produces the sketch of the averaged drift, and
//! 2. **dimension-independent accuracy** — ε and δ depend only on `l·m`,
//!    never on `d`.
//!
//! Hashing uses the Carter–Wegman polynomial family over the Mersenne
//! prime `2^61 − 1`: a degree-3 polynomial gives the 4-wise independence
//! required by the AMS variance analysis.

pub mod ams;
pub mod hashing;

pub use ams::{AmsSketch, SketchConfig, SketchPlan};
