//! Carter–Wegman 4-wise independent hashing over GF(2^61 − 1).
//!
//! The AMS estimator's variance bound requires the ±1 "sign" hash to be
//! 4-wise independent; a degree-3 polynomial with random coefficients over
//! a prime field provides exactly that. The bucket hash reuses the same
//! family (2-wise independence suffices there, 4-wise costs nothing extra).

use fda_tensor::Rng;

/// The Mersenne prime 2^61 − 1.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Multiplies two field elements modulo 2^61 − 1 without overflow.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    // Fast Mersenne reduction: x mod (2^61−1) = (x >> 61) + (x & P), folded.
    let lo = (prod & (MERSENNE_P as u128)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    // One fold suffices because lo, hi < 2^61 so s < 2^62.
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// Adds two field elements modulo 2^61 − 1.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b; // a, b < 2^61 so no u64 overflow
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// A degree-3 Carter–Wegman polynomial hash: 4-wise independent.
#[derive(Debug, Clone)]
pub struct FourWiseHash {
    // Coefficients of c3·x³ + c2·x² + c1·x + c0 over GF(2^61 − 1).
    c: [u64; 4],
}

impl FourWiseHash {
    /// Draws a random member of the family.
    pub fn random(rng: &mut Rng) -> Self {
        let mut c = [0u64; 4];
        for v in &mut c {
            *v = rng.next_u64() % MERSENNE_P;
        }
        // Degree must be exactly 3 for full 4-wise independence.
        if c[3] == 0 {
            c[3] = 1;
        }
        FourWiseHash { c }
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = self.c[3];
        acc = add_mod(mul_mod(acc, x), self.c[2]);
        acc = add_mod(mul_mod(acc, x), self.c[1]);
        add_mod(mul_mod(acc, x), self.c[0])
    }

    /// Maps index `i` to a ±1 sign (lowest output bit).
    #[inline]
    pub fn sign(&self, i: u64) -> f32 {
        if self.eval(i) & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Maps index `i` to a bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, i: u64, m: usize) -> usize {
        (self.eval(i) % m as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_mod_matches_u128_reference() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let a = rng.next_u64() % MERSENNE_P;
            let b = rng.next_u64() % MERSENNE_P;
            let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }

    #[test]
    fn add_mod_wraps() {
        assert_eq!(add_mod(MERSENNE_P - 1, 2), 1);
        assert_eq!(add_mod(5, 7), 12);
    }

    #[test]
    fn eval_is_deterministic() {
        let mut rng = Rng::new(2);
        let h = FourWiseHash::random(&mut rng);
        assert_eq!(h.eval(12345), h.eval(12345));
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let mut rng = Rng::new(3);
        let h = FourWiseHash::random(&mut rng);
        let pos = (0..10_000u64).filter(|&i| h.sign(i) > 0.0).count();
        assert!(
            (4_500..5_500).contains(&pos),
            "sign hash should be balanced, got {pos}/10000 positive"
        );
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let mut rng = Rng::new(4);
        let h = FourWiseHash::random(&mut rng);
        let m = 16;
        let mut counts = vec![0usize; m];
        for i in 0..16_000u64 {
            counts[h.bucket(i, m)] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (700..1_300).contains(&c),
                "bucket {b} count {c} far from uniform 1000"
            );
        }
    }

    #[test]
    fn pairwise_sign_products_decorrelated() {
        // For 4-wise independent signs, E[s(i)s(j)] = 0 for i ≠ j; check an
        // empirical average over many hash draws.
        let mut rng = Rng::new(5);
        let mut acc = 0.0f64;
        let trials = 2000;
        for _ in 0..trials {
            let h = FourWiseHash::random(&mut rng);
            acc += (h.sign(17) * h.sign(99)) as f64;
        }
        let mean = acc / trials as f64;
        assert!(mean.abs() < 0.08, "cross-correlation {mean} should be ≈ 0");
    }
}
