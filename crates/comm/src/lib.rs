//! # fda-comm
//!
//! The communication substrate for the FDA reproduction.
//!
//! The paper measures communication as "the total data (in bytes)
//! transmitted by all workers" (§4.1), explicitly agnostic to the cluster
//! fabric. This crate therefore provides:
//!
//! * [`sim::SimNetwork`] — an in-process AllReduce over worker buffers with
//!   exact per-worker byte accounting under two accounting modes
//!   ([`cost::AccountingMode`]): the paper's per-worker-payload convention
//!   and a ring-allreduce convention.
//! * [`cost::Environment`] — wall-time models for the three deployment
//!   regimes of Figure 12 (FL at 0.5 Gbps, Balanced, ARIS-HPC InfiniBand),
//!   used to translate (bytes, steps) into time and pick Θ.
//! * [`threaded::ThreadedReducer`] — a real rendezvous AllReduce across OS
//!   threads (std scoped threads + mutex/condvar rendezvous), proving the
//!   protocol works under true concurrency; tests cross-validate it
//!   against the simulator.

pub mod compress;
pub mod cost;
pub mod sim;
pub mod threaded;

pub use compress::{
    apply_delta_downlink, delta_downlink, Codec, CodecError, CodecSpec, Dense32, DownlinkSpec,
    DriftMask, TopK, Uniform8Bit,
};
pub use cost::{AccountingMode, Environment};
pub use sim::SimNetwork;
pub use threaded::ThreadedReducer;
