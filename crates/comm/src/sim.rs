//! In-process simulated cluster network with exact byte accounting.
//!
//! `SimNetwork` performs the *arithmetic* of AllReduce (element-wise mean
//! across worker buffers, result visible to all workers — §3 Notation) and
//! *charges* each worker the bytes the chosen [`AccountingMode`] dictates.
//! The simulation executes the identical numerics a real fabric would, so
//! byte counts are exact and results are deterministic.

use crate::cost::AccountingMode;

/// Per-worker traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes transmitted by this worker.
    pub bytes: u64,
    /// AllReduce operations this worker participated in.
    pub messages: u64,
}

/// A simulated `K`-worker collective-communication fabric.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    k: usize,
    mode: AccountingMode,
    per_worker: Vec<TrafficStats>,
}

impl SimNetwork {
    /// Creates a fabric for `k` workers with the paper's per-worker-payload
    /// accounting.
    pub fn new(k: usize) -> SimNetwork {
        SimNetwork::with_mode(k, AccountingMode::PerWorkerPayload)
    }

    /// Creates a fabric with an explicit accounting mode.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_mode(k: usize, mode: AccountingMode) -> SimNetwork {
        assert!(k >= 1, "network: need at least one worker");
        SimNetwork {
            k,
            mode,
            per_worker: vec![TrafficStats::default(); k],
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.k
    }

    /// The configured accounting mode.
    pub fn mode(&self) -> AccountingMode {
        self.mode
    }

    /// AllReduce-average over one equal-length `f32` buffer per worker:
    /// every buffer is replaced by the element-wise mean.
    ///
    /// # Panics
    /// Panics if the number of buffers differs from `K` or lengths are
    /// ragged.
    pub fn allreduce_mean(&mut self, buffers: &mut [Vec<f32>]) {
        assert_eq!(buffers.len(), self.k, "allreduce: buffer count != K");
        let payload = buffers[0].len() as u64 * 4;
        let payloads = vec![payload; self.k];
        self.allreduce_mean_with(buffers, &payloads);
    }

    /// [`SimNetwork::allreduce_mean`] with per-worker payload sizes: the
    /// identical arithmetic, but worker `i` is charged for `payloads[i]`
    /// bytes instead of the dense `n·4`. This is the accounting shape of a
    /// content-dependent codec (top-k / drift-mask emit different byte
    /// counts per worker); callers roundtrip the buffers through the codec
    /// *before* this call so the averaged values match what a receiver
    /// reconstructs.
    ///
    /// # Panics
    /// Panics if buffer or payload counts differ from `K`, or buffer
    /// lengths are ragged.
    pub fn allreduce_mean_with(&mut self, buffers: &mut [Vec<f32>], payloads: &[u64]) {
        assert_eq!(payloads.len(), self.k, "allreduce: payload count != K");
        assert_eq!(buffers.len(), self.k, "allreduce: buffer count != K");
        let n = buffers[0].len();
        assert!(
            buffers.iter().all(|b| b.len() == n),
            "allreduce: ragged buffers"
        );
        let inv_k = 1.0 / self.k as f32;
        let (first, rest) = buffers.split_first_mut().expect("k >= 1");
        for b in rest.iter() {
            fda_tensor::vector::add_assign(first, b);
        }
        fda_tensor::vector::scale(first, inv_k);
        let mean = first.clone();
        for b in rest.iter_mut() {
            b.copy_from_slice(&mean);
        }
        self.charge_per_worker(payloads);
    }

    /// AllReduce-average over one scalar per worker; returns the mean and
    /// stores it back into every slot.
    pub fn allreduce_scalar(&mut self, values: &mut [f32]) -> f32 {
        assert_eq!(values.len(), self.k, "allreduce: scalar count != K");
        let mean = values.iter().sum::<f32>() / self.k as f32;
        values.iter_mut().for_each(|v| *v = mean);
        self.charge_all(4);
        mean
    }

    /// Charges every worker for an AllReduce with the given payload,
    /// without performing arithmetic (used when the caller fuses payloads —
    /// e.g. FDA's state = sketch ‖ scalar — but wants one traffic entry).
    pub fn charge_allreduce(&mut self, payload_bytes: u64) {
        self.charge_all(payload_bytes);
    }

    fn charge_all(&mut self, payload_bytes: u64) {
        let per = self.mode.per_worker_bytes(payload_bytes, self.k);
        for s in &mut self.per_worker {
            s.bytes += per;
            s.messages += 1;
        }
    }

    /// Charges worker `i` for an AllReduce participation with its own
    /// payload size `payloads[i]` — the accounting entry point for codecs
    /// whose emitted byte count is content-dependent and therefore varies
    /// per worker.
    ///
    /// # Panics
    /// Panics if `payloads.len() != K`.
    pub fn charge_per_worker(&mut self, payloads: &[u64]) {
        assert_eq!(payloads.len(), self.k, "charge: payload count != K");
        for (s, &payload) in self.per_worker.iter_mut().zip(payloads) {
            s.bytes += self.mode.per_worker_bytes(payload, self.k);
            s.messages += 1;
        }
    }

    /// Total bytes transmitted by all workers — the paper's communication
    /// metric.
    pub fn total_bytes(&self) -> u64 {
        self.per_worker.iter().map(|s| s.bytes).sum()
    }

    /// Total AllReduce participations summed over workers.
    pub fn total_messages(&self) -> u64 {
        self.per_worker.iter().map(|s| s.messages).sum()
    }

    /// Traffic of a single worker.
    pub fn worker_stats(&self, k: usize) -> &TrafficStats {
        &self.per_worker[k]
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.per_worker = vec![TrafficStats::default(); self.k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_mean_averages_and_broadcasts() {
        let mut net = SimNetwork::new(3);
        let mut bufs = vec![vec![1.0f32, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]];
        net.allreduce_mean(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![2.0, 5.0]);
        }
    }

    #[test]
    fn bytes_charged_per_worker_payload() {
        let mut net = SimNetwork::new(4);
        let mut bufs = vec![vec![0.0f32; 100]; 4];
        net.allreduce_mean(&mut bufs);
        // 100 f32 = 400 bytes per worker, 4 workers.
        assert_eq!(net.total_bytes(), 1_600);
        assert_eq!(net.total_messages(), 4);
        assert_eq!(net.worker_stats(2).bytes, 400);
    }

    #[test]
    fn ring_mode_charges_less_per_worker() {
        let mut a = SimNetwork::with_mode(8, AccountingMode::PerWorkerPayload);
        let mut b = SimNetwork::with_mode(8, AccountingMode::RingAllReduce);
        let mut bufs_a = vec![vec![0.0f32; 1000]; 8];
        let mut bufs_b = bufs_a.clone();
        a.allreduce_mean(&mut bufs_a);
        b.allreduce_mean(&mut bufs_b);
        // Ring: 2·7/8 = 1.75× < 2× but per-worker-payload charges 1×...
        // actually ring charges MORE per worker here (1.75×·payload versus
        // 1×·payload): what matters is both are exact for their convention.
        assert_eq!(a.worker_stats(0).bytes, 4_000);
        assert_eq!(b.worker_stats(0).bytes, 7_000);
    }

    #[test]
    fn scalar_allreduce() {
        let mut net = SimNetwork::new(5);
        let mut vals = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mean = net.allreduce_scalar(&mut vals);
        assert_eq!(mean, 3.0);
        assert!(vals.iter().all(|&v| v == 3.0));
        assert_eq!(net.total_bytes(), 5 * 4);
    }

    #[test]
    fn single_worker_free() {
        let mut net = SimNetwork::new(1);
        let mut bufs = vec![vec![7.0f32; 10]];
        net.allreduce_mean(&mut bufs);
        assert_eq!(bufs[0], vec![7.0f32; 10]);
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = SimNetwork::new(2);
        net.charge_allreduce(1000);
        assert!(net.total_bytes() > 0);
        net.reset();
        assert_eq!(net.total_bytes(), 0);
        assert_eq!(net.total_messages(), 0);
    }

    #[test]
    fn per_worker_payload_charging() {
        let mut net = SimNetwork::new(3);
        net.charge_per_worker(&[100, 0, 50]);
        assert_eq!(net.worker_stats(0).bytes, 100);
        assert_eq!(net.worker_stats(1).bytes, 0);
        assert_eq!(net.worker_stats(2).bytes, 50);
        assert_eq!(net.total_messages(), 3);
        // k == 1 charges nothing under the paper convention.
        let mut solo = SimNetwork::new(1);
        solo.charge_per_worker(&[100]);
        assert_eq!(solo.total_bytes(), 0);
        // allreduce_mean_with does the same arithmetic as allreduce_mean
        // while charging the supplied per-worker payloads.
        let mut bufs = vec![vec![1.0f32, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]];
        let mut net2 = SimNetwork::new(3);
        net2.allreduce_mean_with(&mut bufs, &[8, 16, 24]);
        for b in &bufs {
            assert_eq!(b, &vec![2.0, 5.0]);
        }
        assert_eq!(net2.total_bytes(), 48);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffers_panic() {
        let mut net = SimNetwork::new(2);
        let mut bufs = vec![vec![0.0f32; 3], vec![0.0f32; 4]];
        net.allreduce_mean(&mut bufs);
    }
}
