//! A real AllReduce across OS threads.
//!
//! The simulator executes workers sequentially; this module provides the
//! same collective over genuinely concurrent workers, demonstrating that
//! the FDA protocol (state AllReduce every step, conditional model
//! AllReduce) needs nothing beyond a rendezvous mean — no coordinator, as
//! the paper stresses for the AllReduce design (§1, Figure 1).
//!
//! The collective is a three-phase generation rendezvous:
//!
//! 1. **deposit** — every participant copies its contribution into its own
//!    slot (outside the lock, slots are participant-private);
//! 2. **reduce** — once all `K` have deposited, every participant averages
//!    its own contiguous *chunk* of the buffer over all `K` slots **in
//!    participant order** (`((c₀ + c₁) + c₂)…·1/K`, the same association
//!    as `SimNetwork::allreduce_mean`) — the reduction itself is parallel
//!    across the vector dimension, which is what makes large model
//!    AllReduces scale with cores;
//! 3. **copy-out** — everyone copies the shared mean back out; the last
//!    one re-arms the rendezvous for the next round.
//!
//! Because accumulation order is fixed by participant *id* — not by
//! arrival order, as in the original implementation — a run is
//! bit-reproducible and matches the simulated [`crate::SimNetwork`]
//! numerics exactly when callers use [`ThreadedReducer::allreduce_indexed`]
//! with stable worker ids. The id-less [`ThreadedReducer::allreduce`]
//! assigns ids by arrival order and therefore keeps the old
//! "deterministic mean, nondeterministic last-ulp" behavior.
//!
//! Cost accounting: the reducer counts completed rounds and reduced
//! elements ([`ThreadedReducer::rounds`], [`ThreadedReducer::elems_reduced`])
//! so drivers can cross-check their analytic byte accounting against the
//! collectives that actually ran.

use std::cell::UnsafeCell;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Deposit,
    Reduce,
    CopyOut,
}

struct Ctrl {
    phase: Phase,
    joined: usize,
    /// Ids that have joined the current round — duplicate ids panic at the
    /// join instead of racing on a contribution slot.
    claimed: Vec<bool>,
    deposited: usize,
    reduced: usize,
    copied: usize,
    /// Buffer length of the current round.
    n: usize,
    /// Base pointer of the shared result buffer for the current round.
    result_base: *mut f32,
    rounds: u64,
    elems_reduced: u64,
}
// SAFETY: the raw pointer is only dereferenced during the Reduce/CopyOut
// phases of the round that set it, under the chunk-disjointness protocol
// described on `allreduce_indexed`.
unsafe impl Send for Ctrl {}

struct Core {
    k: usize,
    ctrl: Mutex<Ctrl>,
    cvar: Condvar,
    /// One contribution slot per participant id. A slot is written only by
    /// its owner during Deposit and read by everyone during Reduce; the
    /// phase transitions under `ctrl` order those accesses.
    contribs: Vec<UnsafeCell<Vec<f32>>>,
    /// The shared mean of the current round; written in disjoint chunks
    /// during Reduce, read by everyone during CopyOut.
    result: UnsafeCell<Vec<f32>>,
}
// SAFETY: all access to the UnsafeCells follows the phase protocol above.
unsafe impl Sync for Core {}

/// A reusable K-party AllReduce-average rendezvous (see module docs).
///
/// All `k` participants must call an allreduce method the same number of
/// times with equal-length buffers; each call blocks until every
/// participant has contributed, then returns with the element-wise mean
/// written into the caller's buffer.
#[derive(Clone)]
pub struct ThreadedReducer {
    core: Arc<Core>,
}

impl ThreadedReducer {
    /// Creates a reducer for `k` participants.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> ThreadedReducer {
        assert!(k >= 1, "reducer: need at least one participant");
        ThreadedReducer {
            core: Arc::new(Core {
                k,
                ctrl: Mutex::new(Ctrl {
                    phase: Phase::Deposit,
                    joined: 0,
                    claimed: vec![false; k],
                    deposited: 0,
                    reduced: 0,
                    copied: 0,
                    n: 0,
                    result_base: std::ptr::null_mut(),
                    rounds: 0,
                    elems_reduced: 0,
                }),
                cvar: Condvar::new(),
                contribs: (0..k).map(|_| UnsafeCell::new(Vec::new())).collect(),
                result: UnsafeCell::new(Vec::new()),
            }),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.core.k
    }

    /// Completed AllReduce rounds.
    pub fn rounds(&self) -> u64 {
        self.core.ctrl.lock().expect("reducer lock poisoned").rounds
    }

    /// Total elements reduced across all rounds (each element counted
    /// once, whichever participant's chunk covered it) — the quantity an
    /// analytic cost model charges per collective.
    pub fn elems_reduced(&self) -> u64 {
        self.core
            .ctrl
            .lock()
            .expect("reducer lock poisoned")
            .elems_reduced
    }

    /// Contributes `buf` as participant `id` and blocks until the round's
    /// mean is available, then overwrites `buf` with it.
    ///
    /// With every participant passing its stable worker id, accumulation
    /// order is id order — bit-reproducible across runs and bit-identical
    /// to `SimNetwork::allreduce_mean`. Each id must appear exactly once
    /// per round (enforced: a duplicate id panics at the join, instead of
    /// racing on a contribution slot); do not mix with the id-less
    /// [`ThreadedReducer::allreduce`] within a round.
    ///
    /// # Panics
    /// Panics if `id >= k`, an id joins the same round twice, or buffer
    /// lengths disagree within a round.
    pub fn allreduce_indexed(&self, id: usize, buf: &mut [f32]) {
        assert!(id < self.core.k, "allreduce: participant id out of range");
        self.allreduce_impl(Some(id), buf);
    }

    /// [`ThreadedReducer::allreduce_indexed`] with ids assigned by arrival
    /// order — correct mean, but the accumulation order (and hence the
    /// last ulp) depends on thread scheduling. Prefer the indexed form
    /// when callers have stable worker ids.
    ///
    /// # Panics
    /// Panics if buffer lengths disagree within a round.
    pub fn allreduce(&self, buf: &mut [f32]) {
        self.allreduce_impl(None, buf);
    }

    fn allreduce_impl(&self, id: Option<usize>, buf: &mut [f32]) {
        // Per-participant wall time of the whole rendezvous (join + deposit
        // + wait-for-result), the wait being the straggler signal.
        let _span = fda_obs::histogram!("reduce_rendezvous_us").span();
        let core = &*self.core;

        // ---- join the round ----------------------------------------
        let (id, n, result_base) = {
            let mut c = core.ctrl.lock().expect("reducer lock poisoned");
            while c.phase != Phase::Deposit {
                c = core.cvar.wait(c).expect("reducer lock poisoned");
            }
            // Arrival-order id assignment happens under the join lock, so
            // id-less participants cannot collide.
            let id = id.unwrap_or(c.joined);
            assert!(
                !c.claimed[id],
                "allreduce: participant id {id} joined this round twice"
            );
            c.claimed[id] = true;
            if c.joined == 0 {
                c.n = buf.len();
                // SAFETY: between rounds no other thread touches `result`
                // (previous round's readers all finished before the phase
                // returned to Deposit; this round's peers join under this
                // lock after us).
                let result = unsafe { &mut *core.result.get() };
                result.clear();
                result.resize(buf.len(), 0.0);
                c.result_base = result.as_mut_ptr();
            } else {
                assert_eq!(c.n, buf.len(), "allreduce: ragged buffers");
            }
            c.joined += 1;
            (id, c.n, c.result_base)
        };

        // ---- deposit (outside the lock; slot is ours alone) --------
        {
            // SAFETY: slot `id` is written only by this participant during
            // Deposit; the barrier below publishes it.
            let slot = unsafe { &mut *core.contribs[id].get() };
            slot.clear();
            slot.extend_from_slice(buf);
        }
        {
            let mut c = core.ctrl.lock().expect("reducer lock poisoned");
            c.deposited += 1;
            if c.deposited == core.k {
                c.phase = Phase::Reduce;
                core.cvar.notify_all();
            } else {
                while c.phase == Phase::Deposit {
                    c = core.cvar.wait(c).expect("reducer lock poisoned");
                }
            }
        }

        // ---- reduce own chunk, participant-order accumulation ------
        let (lo, hi) = fda_tensor::vector::chunk_range(n, core.k, id);
        if lo < hi {
            // SAFETY: contributions are read-only during Reduce; chunk
            // [lo, hi) of the result is written by this participant only.
            let srcs: Vec<&[f32]> = core
                .contribs
                .iter()
                .map(|c| unsafe { (*c.get()).as_slice() })
                .collect();
            let chunk = unsafe { std::slice::from_raw_parts_mut(result_base.add(lo), hi - lo) };
            fda_tensor::vector::mean_range_into(&srcs, lo, hi, chunk);
        }
        {
            let mut c = core.ctrl.lock().expect("reducer lock poisoned");
            c.reduced += 1;
            c.elems_reduced += (hi - lo) as u64;
            if c.reduced == core.k {
                c.phase = Phase::CopyOut;
                core.cvar.notify_all();
            } else {
                while c.phase == Phase::Reduce {
                    c = core.cvar.wait(c).expect("reducer lock poisoned");
                }
            }
        }

        // ---- copy the shared mean out ------------------------------
        {
            // SAFETY: `result` is read-only during CopyOut.
            let result = unsafe { &*core.result.get() };
            buf.copy_from_slice(result);
        }
        {
            let mut c = core.ctrl.lock().expect("reducer lock poisoned");
            c.copied += 1;
            if c.copied == core.k {
                c.joined = 0;
                c.deposited = 0;
                c.reduced = 0;
                c.copied = 0;
                c.claimed.iter_mut().for_each(|x| *x = false);
                c.rounds += 1;
                c.phase = Phase::Deposit;
                core.cvar.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_participant_is_identity() {
        let r = ThreadedReducer::new(1);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        r.allreduce(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.rounds(), 1);
        assert_eq!(r.elems_reduced(), 3);
    }

    #[test]
    fn four_threads_compute_the_mean() {
        let k = 4;
        let r = ThreadedReducer::new(k);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|id| {
                    let r = r.clone();
                    scope.spawn(move || {
                        let mut buf = vec![id as f32; 8];
                        r.allreduce_indexed(id, &mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Mean of 0, 1, 2, 3 = 1.5 everywhere, on every worker.
        for res in results {
            assert_eq!(res, vec![1.5f32; 8]);
        }
    }

    #[test]
    fn reducer_is_reusable_across_rounds() {
        let k = 3;
        let r = ThreadedReducer::new(k);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|id| {
                    let r = r.clone();
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..5u32 {
                            let mut buf = vec![(id as f32) * (round as f32 + 1.0); 4];
                            r.allreduce_indexed(id, &mut buf);
                            out.push(buf[0]);
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Round r mean = mean(0,1,2)·(r+1) = 1·(r+1).
        for res in &results {
            for (round, &v) in res.iter().enumerate() {
                assert!((v - (round as f32 + 1.0)).abs() < 1e-6, "{results:?}");
            }
        }
        assert_eq!(r.rounds(), 5);
        assert_eq!(r.elems_reduced(), 5 * 4);
    }

    /// The id-less arrival-order path must still compute correct means
    /// under real contention (ids are assigned under the join lock, so no
    /// two concurrent callers can collide on a slot).
    #[test]
    fn arrival_order_allreduce_under_contention() {
        let k = 4;
        let r = ThreadedReducer::new(k);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let r = r.clone();
                    scope.spawn(move || {
                        let mut buf = vec![i as f32; 16];
                        for _ in 0..25 {
                            // Mean of 0..4 is 1.5 every round; feeding the
                            // round's result back keeps it at 1.5 only if
                            // every round's mean is exact.
                            buf.iter_mut().for_each(|v| *v += i as f32 - 1.5);
                            r.allreduce(&mut buf);
                        }
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for res in &results {
            for v in res {
                assert!(
                    (v - 1.5).abs() < 1e-4,
                    "arrival-order mean drifted: {res:?}"
                );
            }
        }
        assert_eq!(r.rounds(), 25);
    }

    /// Indexed accumulation must be **bit-identical** to the simulated
    /// network: same copy-first, worker-order association.
    #[test]
    fn indexed_matches_sim_network_bitwise() {
        let k = 5;
        let inputs: Vec<Vec<f32>> = (0..k)
            .map(|i| (0..16).map(|j| (i * 17 + j) as f32 * 0.25).collect())
            .collect();

        // Simulated path.
        let mut sim_bufs = inputs.clone();
        let mut net = crate::sim::SimNetwork::new(k);
        net.allreduce_mean(&mut sim_bufs);

        // Threaded path.
        let r = ThreadedReducer::new(k);
        let threaded: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(id, input)| {
                    let r = r.clone();
                    let mut buf = input.clone();
                    scope.spawn(move || {
                        r.allreduce_indexed(id, &mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for t in &threaded {
            for (a, b) in t.iter().zip(&sim_bufs[0]) {
                assert_eq!(a.to_bits(), b.to_bits(), "threaded vs sim mismatch");
            }
        }
    }

    /// Two identical indexed runs produce identical bits regardless of
    /// scheduling — the determinism the arrival-order reducer lacked.
    #[test]
    fn indexed_runs_are_bit_reproducible() {
        let k = 4;
        let run = || -> Vec<Vec<f32>> {
            let r = ThreadedReducer::new(k);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..k)
                    .map(|id| {
                        let r = r.clone();
                        scope.spawn(move || {
                            let mut buf: Vec<f32> =
                                (0..33).map(|j| ((id * 31 + j) as f32).sin()).collect();
                            for _ in 0..7 {
                                r.allreduce_indexed(id, &mut buf);
                            }
                            buf
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
