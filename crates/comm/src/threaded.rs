//! A real AllReduce across OS threads.
//!
//! The simulator executes workers sequentially; this module provides the
//! same collective over genuinely concurrent workers, demonstrating that
//! the FDA protocol (state AllReduce every step, conditional model
//! AllReduce) needs nothing beyond a rendezvous mean — no coordinator, as
//! the paper stresses for the AllReduce design (§1, Figure 1).
//!
//! The implementation is a generation-counted rendezvous: each participant
//! adds its contribution under a mutex; the last arrival computes the mean
//! and bumps the generation; everyone copies the result out. Plain
//! `std::sync` primitives keep the crate dependency-free.

use std::sync::{Arc, Condvar, Mutex};

struct Shared {
    // Accumulator for the current round.
    sum: Vec<f32>,
    // Mean of the completed round (valid when generation is odd-phase).
    result: Vec<f32>,
    arrived: usize,
    generation: u64,
}

/// A reusable K-party AllReduce-average rendezvous.
///
/// All `k` participants must call [`ThreadedReducer::allreduce`] the same
/// number of times with equal-length buffers; each call blocks until every
/// participant has contributed, then returns with the element-wise mean
/// written into the caller's buffer.
#[derive(Clone)]
pub struct ThreadedReducer {
    k: usize,
    state: Arc<(Mutex<Shared>, Condvar)>,
}

impl ThreadedReducer {
    /// Creates a reducer for `k` participants.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> ThreadedReducer {
        assert!(k >= 1, "reducer: need at least one participant");
        ThreadedReducer {
            k,
            state: Arc::new((
                Mutex::new(Shared {
                    sum: Vec::new(),
                    result: Vec::new(),
                    arrived: 0,
                    generation: 0,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.k
    }

    /// Contributes `buf` and blocks until the round's mean is available,
    /// then overwrites `buf` with it.
    ///
    /// # Panics
    /// Panics if buffer lengths disagree within a round.
    pub fn allreduce(&self, buf: &mut [f32]) {
        let (lock, cvar) = &*self.state;
        let mut s = lock.lock().expect("allreduce: poisoned lock");
        let my_gen = s.generation;
        if s.arrived == 0 {
            // First arrival of the round initializes the accumulator.
            s.sum.clear();
            s.sum.extend_from_slice(buf);
        } else {
            assert_eq!(s.sum.len(), buf.len(), "allreduce: ragged buffers");
            for (acc, &v) in s.sum.iter_mut().zip(buf.iter()) {
                *acc += v;
            }
        }
        s.arrived += 1;
        if s.arrived == self.k {
            // Last arrival finalizes the round.
            let inv_k = 1.0 / self.k as f32;
            let sum = std::mem::take(&mut s.sum);
            s.result = sum;
            for v in &mut s.result {
                *v *= inv_k;
            }
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            cvar.notify_all();
        } else {
            while s.generation == my_gen {
                s = cvar.wait(s).expect("allreduce: poisoned lock");
            }
        }
        buf.copy_from_slice(&s.result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_participant_is_identity() {
        let r = ThreadedReducer::new(1);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        r.allreduce(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn four_threads_compute_the_mean() {
        let k = 4;
        let r = ThreadedReducer::new(k);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|id| {
                    let r = r.clone();
                    scope.spawn(move || {
                        let mut buf = vec![id as f32; 8];
                        r.allreduce(&mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Mean of 0, 1, 2, 3 = 1.5 everywhere, on every worker.
        for res in results {
            assert_eq!(res, vec![1.5f32; 8]);
        }
    }

    #[test]
    fn reducer_is_reusable_across_rounds() {
        let k = 3;
        let r = ThreadedReducer::new(k);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|id| {
                    let r = r.clone();
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..5u32 {
                            let mut buf = vec![(id as f32) * (round as f32 + 1.0); 4];
                            r.allreduce(&mut buf);
                            out.push(buf[0]);
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Round r mean = mean(0,1,2)·(r+1) = 1·(r+1).
        for res in &results {
            for (round, &v) in res.iter().enumerate() {
                assert!((v - (round as f32 + 1.0)).abs() < 1e-6, "{results:?}");
            }
        }
    }

    #[test]
    fn matches_sim_network_numerics() {
        let k = 5;
        let inputs: Vec<Vec<f32>> = (0..k)
            .map(|i| (0..16).map(|j| (i * 17 + j) as f32 * 0.25).collect())
            .collect();

        // Simulated path.
        let mut sim_bufs = inputs.clone();
        let mut net = crate::sim::SimNetwork::new(k);
        net.allreduce_mean(&mut sim_bufs);

        // Threaded path.
        let r = ThreadedReducer::new(k);
        let threaded: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|input| {
                    let r = r.clone();
                    let mut buf = input.clone();
                    scope.spawn(move || {
                        r.allreduce(&mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for t in &threaded {
            for (a, b) in t.iter().zip(&sim_bufs[0]) {
                assert!((a - b).abs() < 1e-5, "threaded vs sim mismatch");
            }
        }
    }
}
