//! Payload compression codecs with a real byte surface.
//!
//! The paper (§2, "Compression") emphasizes that FDA is *orthogonal* to
//! message-size reduction: FDA decides **when** to synchronize; codecs
//! shrink **what** is transmitted, and any technique effective under
//! BSP/Local-SGD transfers unchanged. This module provides the standard
//! families so that composition can be demonstrated, measured, and — since
//! these codecs are the actual `fda_net` wire payloads — deployed:
//!
//! * [`Dense32`] — the identity codec: a raw little-endian `f32` run, so a
//!   dense-coded payload is byte-identical to the uncoded layout;
//! * [`Uniform8Bit`] — linear quantization of each chunk to `u8` with a
//!   per-chunk `[lo, hi]` range (≈4× smaller payloads, bounded error);
//! * [`TopK`] — magnitude sparsification keeping the `k` largest entries
//!   as (index, value) pairs;
//! * [`DriftMask`] — selective masking à la Ji et al. 2020: transmit only
//!   coordinates whose drift magnitude exceeds a fixed threshold, the
//!   natural per-coordinate composition with FDA's drift monitor.
//!
//! Three contracts hold for every codec, and the property suite pins them:
//!
//! 1. **Exact accounting** — [`Codec::encoded_bytes`] equals
//!    `encode(v).len()` exactly, so charged bytes are emitted bytes.
//! 2. **Total decoding** — [`Codec::decode`] never panics and never
//!    allocates more than the caller-supplied element count implies, no
//!    matter how hostile the byte buffer (the `core::wire` convention).
//! 3. **Byte idempotence** — `encode(decode(encode(v))) == encode(v)`:
//!    one encode reaches the codec's fixed point, so re-encoding a
//!    reconstruction (as the simulator's accounting does) charges the
//!    same bytes the socket carried.
//!
//! [`Codec::roundtrip`] is *defined* as `decode(encode(v))`, so the
//! simulator and the socket transport share one lossy path by
//! construction — bit-identical reconstructions on both sides.
//!
//! Non-finite policy: values are never silently corrupted. `TopK` and
//! `DriftMask` carry raw bit patterns, and order magnitudes by
//! `f32::total_cmp` (NaN sorts above `+inf`, so a NaN coordinate is
//! always "largest" and survives selection bit-for-bit). `Uniform8Bit`
//! escapes any chunk containing a non-finite value (or whose range
//! degenerates) to a raw `f32` run, propagating every bit pattern
//! exactly.

/// Decode failure of a codec payload. Mirrors the shape of
/// `fda_core::wire::DecodeError` (comm sits below core, so the net layer
/// converts; see `From<CodecError>` there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the declared content.
    Truncated,
    /// Structurally invalid content (bad length multiple, out-of-range or
    /// unsorted indices, degenerate chunk header, trailing bytes).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "codec payload truncated"),
            CodecError::Malformed(what) => write!(f, "malformed codec payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A lossy vector codec over real byte buffers, with exact wire-size
/// accounting and hostile-input-safe decoding.
pub trait Codec: Send {
    /// Codec name for reports.
    fn name(&self) -> &'static str;

    /// Encodes `v` into the codec's wire payload.
    fn encode(&self, v: &[f32]) -> Vec<u8>;

    /// Appends the encoding of `v` to `out` — the allocation-free variant
    /// for round-persistent scratch buffers. Byte-identical to
    /// [`Codec::encode`]; codecs whose hot path matters override the
    /// default (which still allocates an intermediate).
    fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode(v));
    }

    /// Decodes a payload back into a length-`n` vector. Total: any byte
    /// buffer either decodes or returns an error, and nothing larger than
    /// `n` elements is ever allocated. `n` is caller knowledge (the
    /// expected vector length), never taken from the untrusted buffer.
    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError>;

    /// Exact encoded size in bytes for this input — equal to
    /// `encode(v).len()` (the property suite asserts it). Codecs with a
    /// closed form override this to skip the encode.
    fn encoded_bytes(&self, v: &[f32]) -> u64 {
        self.encode(v).len() as u64
    }

    /// The reconstruction a receiver computes: `decode(encode(v))`. The
    /// simulator charges [`Codec::encoded_bytes`] and applies exactly
    /// this, so sim and socket share one lossy path by construction.
    ///
    /// # Panics
    /// Panics only if the codec fails to decode its own encoding — an
    /// internal bug, not an input condition.
    fn roundtrip(&self, v: &[f32]) -> Vec<f32> {
        self.decode(&self.encode(v), v.len())
            .expect("codec decodes its own encoding")
    }
}

/// The identity codec: full-precision `f32` payloads as a raw
/// little-endian run (no header), so dense-coded wire frames are
/// byte-identical to the pre-codec dense layouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dense32;

impl Codec for Dense32 {
    fn name(&self) -> &'static str {
        "dense-f32"
    }

    fn encode(&self, v: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(v.len() * 4);
        self.encode_into(v, &mut out);
        out
    }

    fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        out.reserve(v.len() * 4);
        for &x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        let want = n
            .checked_mul(4)
            .ok_or(CodecError::Malformed("length overflow"))?;
        if buf.len() < want {
            return Err(CodecError::Truncated);
        }
        if buf.len() > want {
            return Err(CodecError::Malformed("trailing bytes after dense run"));
        }
        let mut out = Vec::with_capacity(n);
        for c in buf.chunks_exact(4) {
            out.push(f32::from_le_bytes(c.try_into().expect("len 4")));
        }
        Ok(out)
    }

    fn encoded_bytes(&self, v: &[f32]) -> u64 {
        v.len() as u64 * 4
    }
}

/// The `lo` sentinel marking a raw (escaped) chunk: a canonical quiet
/// NaN. A quantized chunk's `lo` is the minimum of finite values, so a
/// NaN header can never be emitted for one — the escape is unambiguous.
const ESCAPE_BITS: u32 = 0x7fc0_0000;

/// How one quantizer chunk is carried on the wire.
enum ChunkPlan {
    /// `[lo f32][hi f32]` + one `u8` level per element.
    Quantized { lo: f32, hi: f32, scale: f32 },
    /// `[NaN][NaN]` + raw `f32` bits per element — used when the chunk
    /// holds a non-finite value or its range cannot be quantized
    /// losslessly-idempotently (overflowed/degenerate scale, or levels
    /// that collapse below `f32` resolution near a huge `lo`).
    Raw,
}

/// Linear 8-bit quantization with per-chunk min/max scaling.
///
/// Wire format, per chunk of up to `chunk` values:
///
/// ```text
/// [ lo: f32 ] [ hi: f32 ] [ q: u8 × len ]        (quantized chunk)
/// [ NaN ] [ NaN ] [ raw f32 bits × len ]         (escaped chunk)
/// ```
///
/// Decoding maps level `q` to `lo + q·scale` with `scale = (hi−lo)/255`,
/// pinning `q = 0` to `lo` and `q = 255` to `hi` exactly and clamping to
/// `[lo, hi]`. A chunk escapes to raw `f32` when it contains a
/// non-finite value (bit-for-bit propagation — the non-finite policy) or
/// when quantization would not be byte-idempotent (the encoder certifies
/// all 256 levels re-quantize to themselves; a chunk spanning
/// `[−MAX, MAX]` or sitting on a huge offset fails and ships raw).
/// Maximum per-element error of a quantized chunk is `(hi − lo)/510`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform8Bit {
    chunk: usize,
}

impl Uniform8Bit {
    /// Creates the codec with the given chunk length.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn new(chunk: usize) -> Uniform8Bit {
        assert!(chunk >= 1, "quantizer: chunk must be positive");
        Uniform8Bit { chunk }
    }

    /// Chunk length.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The value level `q` decodes to. Shared by the decoder and the
    /// encoder's idempotence certification so they cannot drift.
    fn level(lo: f32, hi: f32, scale: f32, q: u8) -> f32 {
        match q {
            0 => lo,
            255 => hi,
            q => (lo + q as f32 * scale).clamp(lo, hi),
        }
    }

    /// Quantizes one value to its level byte.
    fn quantize(lo: f32, scale: f32, x: f32) -> u8 {
        if scale > 0.0 {
            ((x - lo) / scale).round().clamp(0.0, 255.0) as u8
        } else {
            0
        }
    }

    /// Decides how a chunk travels. Quantized only when every value is
    /// finite, the scale is usable, and all 256 levels re-quantize to
    /// themselves (the byte-idempotence certificate).
    fn plan(chunk: &[f32]) -> ChunkPlan {
        if chunk.iter().any(|x| !x.is_finite()) {
            return ChunkPlan::Raw;
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in chunk {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi == lo {
            // Constant chunk: every level byte is 0 and decodes to `lo`
            // exactly. `hi` is normalized to `lo`'s bit pattern (they can
            // differ across ±0.0) so re-encoding the reconstruction emits
            // an identical header.
            return ChunkPlan::Quantized {
                lo,
                hi: lo,
                scale: 0.0,
            };
        }
        let scale = (hi - lo) / 255.0;
        if !scale.is_finite() || scale <= 0.0 {
            return ChunkPlan::Raw;
        }
        for q in 0..=255u8 {
            if Self::quantize(lo, scale, Self::level(lo, hi, scale, q)) != q {
                return ChunkPlan::Raw;
            }
        }
        ChunkPlan::Quantized { lo, hi, scale }
    }
}

impl Default for Uniform8Bit {
    fn default() -> Self {
        Uniform8Bit::new(1024)
    }
}

impl Codec for Uniform8Bit {
    fn name(&self) -> &'static str {
        "uniform-8bit"
    }

    fn encode(&self, v: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(v.len() + v.len().div_ceil(self.chunk) * 8);
        for chunk in v.chunks(self.chunk) {
            match Uniform8Bit::plan(chunk) {
                ChunkPlan::Quantized { lo, hi, scale } => {
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                    for &x in chunk {
                        out.push(Uniform8Bit::quantize(lo, scale, x));
                    }
                }
                ChunkPlan::Raw => {
                    out.extend_from_slice(&f32::from_bits(ESCAPE_BITS).to_le_bytes());
                    out.extend_from_slice(&f32::from_bits(ESCAPE_BITS).to_le_bytes());
                    for &x in chunk {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        // Every chunk costs an 8-byte header plus at least one byte per
        // element, so any buffer below that floor cannot encode `n`
        // elements. Rejecting here bounds the allocation below by the
        // buffer that claims to back it (saturating: a hostile `n` must
        // not overflow its own guard).
        let floor = n.div_ceil(self.chunk).saturating_mul(8).saturating_add(n);
        if buf.len() < floor {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        let mut off = 0usize;
        while out.len() < n {
            let len = self.chunk.min(n - out.len());
            if buf.len() - off < 8 {
                return Err(CodecError::Truncated);
            }
            let lo = f32::from_le_bytes(buf[off..off + 4].try_into().expect("len 4"));
            let hi = f32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("len 4"));
            off += 8;
            if lo.is_nan() {
                // Escaped chunk: raw f32 bit patterns.
                let want = len * 4;
                if buf.len() - off < want {
                    return Err(CodecError::Truncated);
                }
                for c in buf[off..off + want].chunks_exact(4) {
                    out.push(f32::from_le_bytes(c.try_into().expect("len 4")));
                }
                off += want;
            } else {
                if !lo.is_finite() || !hi.is_finite() || hi < lo {
                    return Err(CodecError::Malformed("degenerate quantizer chunk header"));
                }
                if buf.len() - off < len {
                    return Err(CodecError::Truncated);
                }
                let scale = (hi - lo) / 255.0;
                for &q in &buf[off..off + len] {
                    out.push(Uniform8Bit::level(lo, hi, scale, q));
                }
                off += len;
            }
        }
        if off != buf.len() {
            return Err(CodecError::Malformed(
                "trailing bytes after quantizer chunks",
            ));
        }
        Ok(out)
    }

    fn encoded_bytes(&self, v: &[f32]) -> u64 {
        let mut total = 0u64;
        for chunk in v.chunks(self.chunk) {
            total += 8 + match Uniform8Bit::plan(chunk) {
                ChunkPlan::Quantized { .. } => chunk.len() as u64,
                ChunkPlan::Raw => chunk.len() as u64 * 4,
            };
        }
        total
    }
}

/// Encodes a sparse selection as `[index u32][value f32]` pairs in
/// ascending index order — the shared wire format of [`TopK`] and
/// [`DriftMask`]. Values travel as raw bit patterns (NaN-safe).
fn encode_pairs(v: &[f32], keep: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(keep.len() * 8);
    for &i in keep {
        out.extend_from_slice(&(i as u32).to_le_bytes());
        out.extend_from_slice(&v[i].to_le_bytes());
    }
    out
}

/// Decodes an `[index u32][value f32]` pair run into a length-`n` vector
/// (zeros elsewhere). Indices must be strictly increasing and in range —
/// the canonical form `encode_pairs` emits — so decode→encode is
/// byte-identical and duplicates cannot double-write.
fn decode_pairs(buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    if !buf.len().is_multiple_of(8) {
        return Err(CodecError::Malformed("pair run not a multiple of 8 bytes"));
    }
    let count = buf.len() / 8;
    if count > n {
        return Err(CodecError::Malformed("more pairs than vector elements"));
    }
    let mut out = vec![0.0f32; n];
    let mut prev: Option<u32> = None;
    for pair in buf.chunks_exact(8) {
        let idx = u32::from_le_bytes(pair[0..4].try_into().expect("len 4"));
        let val = f32::from_le_bytes(pair[4..8].try_into().expect("len 4"));
        if idx as usize >= n {
            return Err(CodecError::Malformed("pair index out of range"));
        }
        if prev.is_some_and(|p| idx <= p) {
            return Err(CodecError::Malformed(
                "pair indices not strictly increasing",
            ));
        }
        prev = Some(idx);
        out[idx as usize] = val;
    }
    Ok(out)
}

/// Magnitude top-k sparsification: keeps up to `k` largest-|·| entries,
/// zeroing the rest. Wire cost is 8 bytes per *kept* entry — exactly the
/// emitted pair count, which is less than `k` when the input has fewer
/// than `k` nonzero coordinates (zeros are never transmitted; a `−0.0`
/// therefore reconstructs as `+0.0`).
///
/// Magnitudes are ordered by `f32::total_cmp`, which is total over NaN:
/// a NaN coordinate sorts above `+inf`, is always selected, and its bit
/// pattern survives the wire unchanged.
#[derive(Debug, Clone, Copy)]
pub struct TopK {
    k: usize,
}

impl TopK {
    /// Creates the codec keeping `k` entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> TopK {
        assert!(k >= 1, "top-k: k must be positive");
        TopK { k }
    }

    /// Keeps a fixed fraction of the entries (at least 1).
    pub fn fraction(n: usize, frac: f64) -> TopK {
        assert!((0.0..=1.0).contains(&frac), "top-k: fraction in [0, 1]");
        TopK::new(((n as f64 * frac) as usize).max(1))
    }

    /// Entries kept.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The indices this codec transmits, ascending. Zeros (±0.0) are
    /// never kept; NaN magnitudes order above everything via `total_cmp`.
    fn keep(&self, v: &[f32]) -> Vec<usize> {
        let is_zero = |x: f32| x.abs().to_bits() == 0;
        if self.k >= v.len() {
            return (0..v.len()).filter(|&i| !is_zero(v[i])).collect();
        }
        // Select the k-th largest magnitude without a full sort.
        let mut mags: Vec<f32> = v.iter().map(|x| x.abs()).collect();
        let idx = mags.len() - self.k;
        mags.select_nth_unstable_by(idx, f32::total_cmp);
        let threshold = mags[idx];
        let mut keep = Vec::with_capacity(self.k);
        // Keep strictly-above first, then fill ties up to k in index order.
        for (i, &x) in v.iter().enumerate() {
            if x.abs().total_cmp(&threshold) == std::cmp::Ordering::Greater {
                keep.push(i);
            }
        }
        if keep.len() < self.k {
            let mut fill = Vec::with_capacity(self.k - keep.len());
            for (i, &x) in v.iter().enumerate() {
                if fill.len() + keep.len() == self.k {
                    break;
                }
                if x.abs().total_cmp(&threshold) == std::cmp::Ordering::Equal && !is_zero(x) {
                    fill.push(i);
                }
            }
            keep.extend(fill);
            keep.sort_unstable();
        }
        keep
    }
}

impl Codec for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn encode(&self, v: &[f32]) -> Vec<u8> {
        encode_pairs(v, &self.keep(v))
    }

    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        decode_pairs(buf, n)
    }
}

/// Drift-threshold selective masking (Ji et al. 2020 composed with FDA):
/// transmit only coordinates whose magnitude strictly exceeds a fixed
/// per-coordinate threshold. Applied to FDA's drift payloads this sends
/// exactly the coordinates that moved since the last synchronization —
/// the per-coordinate refinement of the monitor's global drift decision.
///
/// Same `[index u32][value f32]` pair format as [`TopK`]; the emitted
/// count is data-dependent (possibly zero). Comparison is
/// `f32::total_cmp` on magnitudes, so NaN coordinates always transmit
/// (bit-for-bit) and ±0.0 never does.
#[derive(Debug, Clone, Copy)]
pub struct DriftMask {
    threshold: f32,
}

impl DriftMask {
    /// Creates the codec with the given magnitude threshold.
    ///
    /// # Panics
    /// Panics unless `threshold` is finite and non-negative.
    pub fn new(threshold: f32) -> DriftMask {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "drift-mask: threshold must be finite and non-negative"
        );
        DriftMask { threshold }
    }

    /// The magnitude threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    fn keep(&self, v: &[f32]) -> Vec<usize> {
        (0..v.len())
            .filter(|&i| v[i].abs().total_cmp(&self.threshold) == std::cmp::Ordering::Greater)
            .collect()
    }
}

impl Codec for DriftMask {
    fn name(&self) -> &'static str {
        "drift-mask"
    }

    fn encode(&self, v: &[f32]) -> Vec<u8> {
        encode_pairs(v, &self.keep(v))
    }

    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        decode_pairs(buf, n)
    }

    fn encoded_bytes(&self, v: &[f32]) -> u64 {
        self.keep(v).len() as u64 * 8
    }
}

/// Telemetry decorator every [`CodecSpec::build`] result is wrapped in:
/// spans around encode/decode plus byte counters, delegating the codec
/// arithmetic untouched — reconstructions (and therefore trajectories)
/// are bit-identical with telemetry on or off.
struct Instrumented(Box<dyn Codec>);

impl Codec for Instrumented {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn encode(&self, v: &[f32]) -> Vec<u8> {
        let _span = fda_obs::histogram!("codec_encode_us").span();
        let out = self.0.encode(v);
        fda_obs::counter!("codec_encoded_bytes").add(out.len() as u64);
        out
    }

    fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        let _span = fda_obs::histogram!("codec_encode_us").span();
        let before = out.len();
        self.0.encode_into(v, out);
        fda_obs::counter!("codec_encoded_bytes").add((out.len() - before) as u64);
    }

    fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        let _span = fda_obs::histogram!("codec_decode_us").span();
        fda_obs::counter!("codec_decoded_bytes").add(buf.len() as u64);
        self.0.decode(buf, n)
    }

    fn encoded_bytes(&self, v: &[f32]) -> u64 {
        self.0.encoded_bytes(v)
    }
}

/// Wire-encodable codec selection: which codec a job runs and its
/// parameters. Carried in the `JobSpec` config frame so every process of
/// a run builds the identical codec, and in the simulator so both sides
/// share one lossy path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CodecSpec {
    /// [`Dense32`] — identity payloads (the default; byte-identical to
    /// the pre-codec wire layout).
    #[default]
    Dense,
    /// [`Uniform8Bit`] with the given chunk length.
    Uniform8 { chunk: u32 },
    /// [`TopK`] keeping `k` entries.
    TopK { k: u32 },
    /// [`DriftMask`] with the given magnitude threshold.
    DriftMask { threshold: f32 },
}

impl CodecSpec {
    /// Codec name, matching what [`Codec::name`] reports.
    pub fn name(&self) -> &'static str {
        match self {
            CodecSpec::Dense => "dense-f32",
            CodecSpec::Uniform8 { .. } => "uniform-8bit",
            CodecSpec::TopK { .. } => "top-k",
            CodecSpec::DriftMask { .. } => "drift-mask",
        }
    }

    /// Whether this is the identity codec (callers keep the uncoded fast
    /// paths — and their byte-for-byte accounting — when it is).
    pub fn is_dense(&self) -> bool {
        matches!(self, CodecSpec::Dense)
    }

    /// Validates the parameters (a wire-decoded spec is untrusted).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            CodecSpec::Dense => Ok(()),
            CodecSpec::Uniform8 { chunk: 0 } => Err("uniform8 chunk must be positive"),
            CodecSpec::Uniform8 { .. } => Ok(()),
            CodecSpec::TopK { k: 0 } => Err("top-k k must be positive"),
            CodecSpec::TopK { .. } => Ok(()),
            CodecSpec::DriftMask { threshold } if !(threshold.is_finite() && threshold >= 0.0) => {
                Err("drift-mask threshold must be finite and non-negative")
            }
            CodecSpec::DriftMask { .. } => Ok(()),
        }
    }

    /// Builds the codec.
    ///
    /// # Panics
    /// Panics if the spec fails [`CodecSpec::validate`] — wire decoders
    /// validate before building, so this is a caller bug.
    pub fn build(&self) -> Box<dyn Codec> {
        self.validate().expect("valid codec spec");
        let codec: Box<dyn Codec> = match *self {
            CodecSpec::Dense => Box::new(Dense32),
            CodecSpec::Uniform8 { chunk } => Box::new(Uniform8Bit::new(chunk as usize)),
            CodecSpec::TopK { k } => Box::new(TopK::new(k as usize)),
            CodecSpec::DriftMask { threshold } => Box::new(DriftMask::new(threshold)),
        };
        Box::new(Instrumented(codec))
    }

    /// Parses a CLI spec: `dense`, `uniform8[:chunk]`, `topk:<k>`,
    /// `driftmask:<threshold>`.
    pub fn parse(s: &str) -> Result<CodecSpec, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let spec = match (name, arg) {
            ("dense", None) => CodecSpec::Dense,
            ("uniform8", None) => CodecSpec::Uniform8 { chunk: 1024 },
            ("uniform8", Some(a)) => CodecSpec::Uniform8 {
                chunk: a.parse().map_err(|_| format!("bad uniform8 chunk '{a}'"))?,
            },
            ("topk", Some(a)) => CodecSpec::TopK {
                k: a.parse().map_err(|_| format!("bad topk k '{a}'"))?,
            },
            ("driftmask", Some(a)) => CodecSpec::DriftMask {
                threshold: a
                    .parse()
                    .map_err(|_| format!("bad driftmask threshold '{a}'"))?,
            },
            _ => return Err(format!("unknown codec spec '{s}'")),
        };
        spec.validate().map_err(String::from)?;
        Ok(spec)
    }
}

/// Wire-encodable downlink selection: how the coordinator broadcasts the
/// post-AllReduce consensus model. Carried in the `JobSpec` config frame
/// (wire v3) so every process — and the simulator mirror — applies the
/// identical reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DownlinkSpec {
    /// Broadcast the dense AllReduce mean (the default; byte- and
    /// trajectory-identical to the pre-delta wire layout).
    #[default]
    Dense,
    /// Broadcast only the consensus *delta* against the previous
    /// broadcast, encoded with its own codec (independent of the uplink
    /// codec). The authoritative consensus becomes the receiver-side
    /// reconstruction `prev + decode(encode(mean − prev))` — see
    /// [`delta_downlink`] — so even `Delta { codec: Dense }` is a
    /// different (float-rounded) trajectory from [`DownlinkSpec::Dense`].
    Delta {
        /// Codec for the delta payload.
        codec: CodecSpec,
    },
}

impl DownlinkSpec {
    /// Downlink mode name for reports: `"dense"` or `"delta-<codec>"`.
    pub fn name(&self) -> String {
        match self {
            DownlinkSpec::Dense => "dense".to_string(),
            DownlinkSpec::Delta { codec } => format!("delta-{}", codec.name()),
        }
    }

    /// Whether this is the historical dense broadcast (callers keep the
    /// byte-identical `AvgModel` path when it is).
    pub fn is_dense(&self) -> bool {
        matches!(self, DownlinkSpec::Dense)
    }

    /// Validates the parameters (a wire-decoded spec is untrusted).
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            DownlinkSpec::Dense => Ok(()),
            DownlinkSpec::Delta { codec } => codec.validate(),
        }
    }

    /// Builds the delta codec, or `None` in dense mode.
    pub fn build(&self) -> Option<Box<dyn Codec>> {
        match self {
            DownlinkSpec::Dense => None,
            DownlinkSpec::Delta { codec } => Some(codec.build()),
        }
    }

    /// Parses a CLI spec: `dense` or `delta:<codec spec>` (e.g.
    /// `delta:uniform8:256`).
    pub fn parse(s: &str) -> Result<DownlinkSpec, String> {
        match s {
            "dense" => Ok(DownlinkSpec::Dense),
            _ => match s.strip_prefix("delta:") {
                Some(rest) => Ok(DownlinkSpec::Delta {
                    codec: CodecSpec::parse(rest)?,
                }),
                None => Err(format!("unknown downlink spec '{s}'")),
            },
        }
    }
}

/// Produces one delta downlink: the wire payload for the broadcast and the
/// authoritative reconstruction every receiver will hold afterwards.
///
/// The payload encodes `mean − prev` through `codec`; the returned model
/// is computed by running the payload through [`apply_delta_downlink`] —
/// the *receiver's* code path — so the sender's bookkeeping copy is
/// bit-identical to every worker's and the simulator mirror's by
/// construction (never by a parallel reimplementation of the float math).
///
/// # Panics
/// Panics only if the codec fails to decode its own encoding — an
/// internal bug, not an input condition.
pub fn delta_downlink(prev: &[f32], mean: &[f32], codec: &dyn Codec) -> (Vec<u8>, Vec<f32>) {
    assert_eq!(prev.len(), mean.len(), "delta downlink length mismatch");
    let delta: Vec<f32> = prev.iter().zip(mean).map(|(p, m)| m - p).collect();
    let payload = codec.encode(&delta);
    let recon =
        apply_delta_downlink(prev, &payload, codec).expect("codec decodes its own encoding");
    (payload, recon)
}

/// Reconstructs the consensus model from a delta-downlink payload:
/// `prev[i] + decode(payload)[i]`. Total over hostile payloads (the codec
/// decoder validates), and the single shared float path for coordinator
/// bookkeeping, worker receive, and the simulator mirror.
pub fn apply_delta_downlink(
    prev: &[f32],
    payload: &[u8],
    codec: &dyn Codec,
) -> Result<Vec<f32>, CodecError> {
    let delta = codec.decode(payload, prev.len())?;
    Ok(prev.iter().zip(&delta).map(|(p, d)| p + d).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = fda_tensor::Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v, 0.0, 1.0);
        v
    }

    fn all_codecs() -> Vec<Box<dyn Codec>> {
        vec![
            Box::new(Dense32),
            Box::new(Uniform8Bit::new(64)),
            Box::new(TopK::new(17)),
            Box::new(DriftMask::new(0.5)),
        ]
    }

    #[test]
    fn dense_is_lossless_and_byte_exact() {
        let v = sample(100, 1);
        assert_eq!(Dense32.roundtrip(&v), v);
        assert_eq!(Dense32.encoded_bytes(&v), 400);
        assert_eq!(Dense32.encode(&v).len(), 400);
        // The dense payload is the raw LE f32 run — no header.
        let enc = Dense32.encode(&v);
        assert_eq!(&enc[0..4], &v[0].to_le_bytes());
    }

    #[test]
    fn quantizer_error_bounded() {
        let v = sample(5_000, 2);
        let codec = Uniform8Bit::new(512);
        let r = codec.roundtrip(&v);
        assert_eq!(r.len(), v.len());
        // Per-chunk bound: (hi − lo)/255/2; normal data stays within ~8σ,
        // so |err| ≤ 16/510 ≈ 0.032 with slack.
        for (a, b) in v.iter().zip(&r) {
            assert!(
                (a - b).abs() < 0.05,
                "quantization error too large: {a} vs {b}"
            );
        }
        // 4×-ish compression.
        assert!(codec.encoded_bytes(&v) < Dense32.encoded_bytes(&v) / 3);
    }

    #[test]
    fn quantizer_handles_constant_chunks() {
        let v = vec![3.25f32; 100];
        let r = Uniform8Bit::new(32).roundtrip(&v);
        assert_eq!(r, v, "constant chunks must be exact");
    }

    /// Regression (pre-fix: a NaN element quantized to the chunk minimum,
    /// an all-NaN chunk reconstructed as `+inf`, and a chunk containing
    /// `±inf` reconstructed as all-zeros): non-finite values now propagate
    /// bit-for-bit through the raw-chunk escape.
    #[test]
    fn uniform8_propagates_non_finite_bit_for_bit() {
        let codec = Uniform8Bit::new(8);
        // One NaN (with a distinctive payload) among finite values.
        let weird_nan = f32::from_bits(0x7fc1_2345);
        let mut v = sample(24, 7);
        v[3] = weird_nan;
        v[10] = f32::INFINITY;
        v[17] = f32::NEG_INFINITY;
        let r = codec.roundtrip(&v);
        assert_eq!(
            r[3].to_bits(),
            weird_nan.to_bits(),
            "NaN payload must survive"
        );
        assert_eq!(r[10], f32::INFINITY);
        assert_eq!(r[17], f32::NEG_INFINITY);
        // The whole escaped chunk is bit-exact, not just the non-finite
        // elements.
        for i in [0, 1, 2, 4, 5, 6, 7, 8, 9, 11, 16, 18, 23] {
            assert_eq!(r[i].to_bits(), v[i].to_bits(), "raw chunk element {i}");
        }
        // All-NaN input reconstructs all-NaN (pre-fix: +inf).
        let nans = vec![f32::NAN; 16];
        for (a, b) in nans.iter().zip(codec.roundtrip(&nans)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A chunk whose range overflows f32 (or collapses below resolution)
    /// escapes to raw and is therefore exact.
    #[test]
    fn uniform8_escapes_degenerate_ranges_exactly() {
        let codec = Uniform8Bit::new(4);
        let v = vec![f32::MAX, -f32::MAX, 1.0, -1.0];
        assert_eq!(codec.roundtrip(&v), v, "overflowed range ships raw");
        // Huge offset, tiny range: levels collapse below ulp(lo) — the
        // idempotence certificate must reject quantization.
        let lo = 16_777_216.0f32; // 2^24, ulp = 2
        let w = vec![lo, lo + 2.0, lo, lo + 2.0];
        let r = codec.roundtrip(&w);
        assert_eq!(r, w, "sub-resolution chunk ships raw");
    }

    /// Regression (pre-fix: `partial_cmp(..).expect("finite magnitudes")`
    /// panicked): a NaN gradient must not crash the codec; it orders above
    /// +inf via `total_cmp`, is always kept, and survives bit-for-bit.
    #[test]
    fn topk_roundtrip_survives_nan_gradients() {
        let weird_nan = f32::from_bits(0xffc0_0042);
        let mut v = sample(64, 9);
        v[5] = weird_nan;
        let codec = TopK::new(4);
        let r = codec.roundtrip(&v); // pre-fix: panic
        assert_eq!(
            r[5].to_bits(),
            weird_nan.to_bits(),
            "NaN is kept, bit-exact"
        );
        assert_eq!(r.iter().filter(|x| x.to_bits() != 0).count(), 4);
    }

    /// Regression (pre-fix: `encoded_bytes` charged `min(k, n)` pairs even
    /// when fewer were kept): charged bytes equal emitted bytes exactly on
    /// sparse inputs.
    #[test]
    fn topk_encoded_bytes_equals_emitted_on_sparse_input() {
        let codec = TopK::new(10);
        let mut v = vec![0.0f32; 100];
        v[4] = 1.0;
        v[40] = -2.0;
        v[44] = 3.0;
        let enc = codec.encode(&v);
        assert_eq!(enc.len(), 3 * 8, "only 3 nonzeros exist to transmit");
        assert_eq!(
            codec.encoded_bytes(&v),
            enc.len() as u64, // pre-fix: charged 10 * 8
            "charged bytes must equal emitted bytes"
        );
        assert_eq!(codec.roundtrip(&v), v);
    }

    #[test]
    fn topk_keeps_exactly_k_nonzeros() {
        let v = sample(1_000, 3);
        let codec = TopK::new(50);
        let r = codec.roundtrip(&v);
        let nonzero = r.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 50);
        assert_eq!(codec.encode(&v).len(), 50 * 8);
        // Every kept value is one of the originals.
        for (a, b) in v.iter().zip(&r) {
            assert!(*b == 0.0 || a == b);
        }
    }

    #[test]
    fn topk_keeps_the_largest() {
        let v = vec![0.1f32, -5.0, 0.2, 4.0, -0.3];
        let r = TopK::new(2).roundtrip(&v);
        assert_eq!(r, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn topk_fraction_and_bytes() {
        let codec = TopK::fraction(10_000, 0.01);
        let v = sample(10_000, 11);
        assert_eq!(codec.encoded_bytes(&v), 100 * 8);
        let full = TopK::new(20);
        assert_eq!(
            full.roundtrip(&[1.0, 2.0]),
            vec![1.0, 2.0],
            "k >= n is lossless"
        );
    }

    #[test]
    fn driftmask_transmits_only_above_threshold() {
        let codec = DriftMask::new(1.0);
        let v = vec![0.5f32, -3.0, 1.0, 2.0, -0.25, f32::NAN];
        let enc = codec.encode(&v);
        // |−3| and |2| exceed 1.0 strictly; |1.0| ties and stays home;
        // NaN orders above +inf and always transmits.
        assert_eq!(enc.len(), 3 * 8);
        assert_eq!(codec.encoded_bytes(&v), 3 * 8);
        let r = codec.decode(&enc, v.len()).unwrap();
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], -3.0);
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 2.0);
        assert!(r[5].is_nan());
        // Empty mask is a legal zero-byte payload.
        let quiet = vec![0.1f32; 8];
        assert_eq!(codec.encode(&quiet).len(), 0);
        assert_eq!(codec.decode(&[], 8).unwrap(), vec![0.0; 8]);
    }

    /// The shared byte-idempotence contract: one encode reaches the fixed
    /// point, so `encode(decode(encode(v)))` is byte-identical.
    #[test]
    fn encode_decode_encode_is_byte_identical() {
        let mut v = sample(3_000, 13);
        v[7] = f32::NAN;
        v[100] = f32::INFINITY;
        v[2_000] = 0.0;
        for codec in all_codecs() {
            let e1 = codec.encode(&v);
            let d = codec.decode(&e1, v.len()).unwrap();
            let e2 = codec.encode(&d);
            assert_eq!(e1, e2, "{} is not byte-idempotent", codec.name());
            assert_eq!(codec.encoded_bytes(&v), e1.len() as u64, "{}", codec.name());
        }
    }

    /// Decoders are total: truncations and mutations of valid payloads,
    /// and raw byte soup, never panic and never succeed with trailing
    /// bytes.
    #[test]
    fn decoders_are_total_on_hostile_input() {
        let v = sample(300, 17);
        for codec in all_codecs() {
            let enc = codec.encode(&v);
            for cut in 0..enc.len().min(64) {
                let _ = codec.decode(&enc[..cut], v.len());
                let _ = codec.decode(&enc[..enc.len() - cut], v.len());
            }
            let mut junk = enc.clone();
            junk.extend_from_slice(&[0xAB; 9]);
            assert!(codec.decode(&junk, v.len()).is_err(), "{}", codec.name());
        }
        // Pair runs: out-of-range and non-increasing indices are rejected.
        let mut bad = Vec::new();
        bad.extend_from_slice(&999u32.to_le_bytes());
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(TopK::new(4).decode(&bad, 10).is_err());
        let mut dup = Vec::new();
        for _ in 0..2 {
            dup.extend_from_slice(&3u32.to_le_bytes());
            dup.extend_from_slice(&1.0f32.to_le_bytes());
        }
        assert!(DriftMask::new(0.0).decode(&dup, 10).is_err());
    }

    #[test]
    fn codec_spec_builds_parses_and_validates() {
        for (s, name) in [
            ("dense", "dense-f32"),
            ("uniform8", "uniform-8bit"),
            ("uniform8:256", "uniform-8bit"),
            ("topk:32", "top-k"),
            ("driftmask:0.01", "drift-mask"),
        ] {
            let spec = CodecSpec::parse(s).unwrap();
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build().name(), name);
        }
        assert!(CodecSpec::parse("topk").is_err());
        assert!(CodecSpec::parse("topk:0").is_err());
        assert!(CodecSpec::parse("uniform8:0").is_err());
        assert!(CodecSpec::parse("driftmask:nan").is_err());
        assert!(CodecSpec::parse("driftmask:-1").is_err());
        assert!(CodecSpec::parse("gzip").is_err());
        assert!(CodecSpec::Dense.is_dense());
        assert!(!CodecSpec::TopK { k: 5 }.is_dense());
        assert_eq!(CodecSpec::default(), CodecSpec::Dense);
    }

    #[test]
    fn hostile_length_claims_fail_before_allocating() {
        // Regression: `Uniform8Bit::decode` used to reserve `n` output
        // slots before looking at the buffer at all, so a hostile length
        // claim aborted the process inside the allocator instead of
        // returning an error. Buffer-bounded codecs must reject an `n`
        // the buffer cannot possibly back *before* allocating for it.
        let tiny = [0u8; 16];
        for n in [usize::MAX, usize::MAX >> 8, 1 << 40] {
            // Dense rejects via its length-overflow/size check.
            assert!(Dense32.decode(&tiny, n).is_err());
            assert_eq!(
                Uniform8Bit::new(64).decode(&tiny, n),
                Err(CodecError::Truncated)
            );
            assert_eq!(
                Uniform8Bit::new(1).decode(&tiny, n),
                Err(CodecError::Truncated)
            );
        }
        // And an `n` that saturates its own floor arithmetic still errors.
        assert_eq!(
            Uniform8Bit::new(1).decode(&[], usize::MAX),
            Err(CodecError::Truncated)
        );
    }

    /// The delta-downlink contract: the sender's bookkeeping copy is the
    /// receiver's reconstruction, byte for byte, for every codec — because
    /// they are literally the same code path.
    #[test]
    fn delta_downlink_sender_copy_equals_receiver_reconstruction() {
        let prev = sample(300, 11);
        let mean = sample(300, 12);
        for codec in all_codecs() {
            let (payload, recon) = delta_downlink(&prev, &mean, codec.as_ref());
            let applied =
                apply_delta_downlink(&prev, &payload, codec.as_ref()).expect("own payload decodes");
            for (i, (a, b)) in recon.iter().zip(&applied).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {i} diverged");
            }
        }
    }

    /// With a lossless delta codec the reconstruction equals the float sum
    /// `prev + (mean − prev)` — close to, but deliberately not defined as,
    /// `mean`.
    #[test]
    fn delta_downlink_dense_is_the_float_sum() {
        let prev = sample(64, 21);
        let mean = sample(64, 22);
        let (_, recon) = delta_downlink(&prev, &mean, &Dense32);
        for i in 0..64 {
            assert_eq!(
                recon[i].to_bits(),
                (prev[i] + (mean[i] - prev[i])).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "delta downlink length mismatch")]
    fn delta_downlink_rejects_mismatched_lengths() {
        delta_downlink(&[0.0; 3], &[0.0; 4], &Dense32);
    }

    #[test]
    fn apply_delta_downlink_rejects_hostile_payloads() {
        let prev = vec![0.0f32; 16];
        assert!(apply_delta_downlink(&prev, &[0u8; 7], &Dense32).is_err());
        assert!(apply_delta_downlink(&prev, &[0u8; 3], &Uniform8Bit::new(8)).is_err());
    }

    #[test]
    fn downlink_spec_parses_names_and_validates() {
        assert_eq!(DownlinkSpec::parse("dense"), Ok(DownlinkSpec::Dense));
        assert_eq!(
            DownlinkSpec::parse("delta:uniform8:256"),
            Ok(DownlinkSpec::Delta {
                codec: CodecSpec::Uniform8 { chunk: 256 }
            })
        );
        assert_eq!(
            DownlinkSpec::parse("delta:dense"),
            Ok(DownlinkSpec::Delta {
                codec: CodecSpec::Dense
            })
        );
        assert!(DownlinkSpec::parse("delta:uniform8:0").is_err());
        assert!(DownlinkSpec::parse("zstd").is_err());
        assert_eq!(DownlinkSpec::default(), DownlinkSpec::Dense);
        assert!(DownlinkSpec::Dense.is_dense());
        assert!(DownlinkSpec::Dense.build().is_none());
        let delta = DownlinkSpec::parse("delta:topk:4").unwrap();
        assert_eq!(delta.name(), "delta-top-k");
        assert!(delta.build().is_some());
    }

    #[test]
    fn composition_with_averaging_preserves_mean_roughly() {
        // The FDA composition argument: quantize each worker's payload,
        // average the reconstructions — the result stays close to the true
        // average (error does not blow up across workers).
        let k = 8;
        let n = 2_000;
        let codec = Uniform8Bit::default();
        let workers: Vec<Vec<f32>> = (0..k).map(|i| sample(n, 100 + i as u64)).collect();
        let refs: Vec<&[f32]> = workers.iter().map(|w| w.as_slice()).collect();
        let true_mean = fda_tensor::vector::mean(&refs);
        let recon: Vec<Vec<f32>> = workers.iter().map(|w| codec.roundtrip(w)).collect();
        let rrefs: Vec<&[f32]> = recon.iter().map(|w| w.as_slice()).collect();
        let approx_mean = fda_tensor::vector::mean(&rrefs);
        for (a, b) in true_mean.iter().zip(&approx_mean) {
            assert!(
                (a - b).abs() < 0.02,
                "averaged quantization error too large"
            );
        }
    }
}
