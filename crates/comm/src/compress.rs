//! Payload compression codecs.
//!
//! The paper (§2, "Compression") emphasizes that FDA is *orthogonal* to
//! message-size reduction: FDA decides **when** to synchronize; codecs
//! shrink **what** is transmitted, and any technique effective under
//! BSP/Local-SGD transfers unchanged. This module provides the two
//! standard families so that composition can be demonstrated and measured:
//!
//! * [`Uniform8Bit`] — linear quantization of each chunk to `u8` with a
//!   per-chunk scale (4× smaller payloads, bounded per-element error);
//! * [`TopK`] — magnitude sparsification keeping the `k` largest entries
//!   as (index, value) pairs.
//!
//! Codecs report their exact wire size so the byte accounting stays
//! honest when a synchronization payload is compressed.

/// A lossy vector codec with exact wire-size accounting.
pub trait Codec: Send {
    /// Codec name for reports.
    fn name(&self) -> &'static str;

    /// Encoded size in bytes for a vector of length `n`.
    fn encoded_bytes(&self, n: usize) -> u64;

    /// Encodes and immediately decodes (the simulator never materializes
    /// byte buffers for payloads; fidelity loss and size are what matter).
    /// Returns the reconstruction.
    fn roundtrip(&self, v: &[f32]) -> Vec<f32>;
}

/// The identity codec: full-precision `f32` payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dense32;

impl Codec for Dense32 {
    fn name(&self) -> &'static str {
        "dense-f32"
    }

    fn encoded_bytes(&self, n: usize) -> u64 {
        n as u64 * 4
    }

    fn roundtrip(&self, v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }
}

/// Linear 8-bit quantization with per-chunk min/max scaling.
///
/// Each chunk of `chunk` values is mapped to `u8` levels over its own
/// `[min, max]` range; wire cost is `n` bytes plus 8 bytes (two `f32`) per
/// chunk. Maximum per-element error is `(max − min)/510` per chunk.
#[derive(Debug, Clone, Copy)]
pub struct Uniform8Bit {
    chunk: usize,
}

impl Uniform8Bit {
    /// Creates the codec with the given chunk length.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn new(chunk: usize) -> Uniform8Bit {
        assert!(chunk >= 1, "quantizer: chunk must be positive");
        Uniform8Bit { chunk }
    }
}

impl Default for Uniform8Bit {
    fn default() -> Self {
        Uniform8Bit::new(1024)
    }
}

impl Codec for Uniform8Bit {
    fn name(&self) -> &'static str {
        "uniform-8bit"
    }

    fn encoded_bytes(&self, n: usize) -> u64 {
        let chunks = n.div_ceil(self.chunk) as u64;
        n as u64 + chunks * 8
    }

    fn roundtrip(&self, v: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(v.len());
        for chunk in v.chunks(self.chunk) {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &x in chunk {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            if !lo.is_finite() || !hi.is_finite() || hi <= lo {
                // Constant (or degenerate) chunk: transmit the midpoint.
                out.extend(chunk.iter().map(|_| if hi <= lo { lo } else { 0.0 }));
                continue;
            }
            let scale = (hi - lo) / 255.0;
            for &x in chunk {
                let q = ((x - lo) / scale).round().clamp(0.0, 255.0) as u8;
                out.push(lo + q as f32 * scale);
            }
        }
        out
    }
}

/// Magnitude top-k sparsification: keeps the `k` largest-|·| entries,
/// zeroing the rest. Wire cost is `k` (index, value) pairs of 8 bytes.
#[derive(Debug, Clone, Copy)]
pub struct TopK {
    k: usize,
}

impl TopK {
    /// Creates the codec keeping `k` entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> TopK {
        assert!(k >= 1, "top-k: k must be positive");
        TopK { k }
    }

    /// Keeps a fixed fraction of the entries (at least 1).
    pub fn fraction(n: usize, frac: f64) -> TopK {
        assert!((0.0..=1.0).contains(&frac), "top-k: fraction in [0, 1]");
        TopK::new(((n as f64 * frac) as usize).max(1))
    }
}

impl Codec for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn encoded_bytes(&self, n: usize) -> u64 {
        (self.k.min(n) as u64) * 8
    }

    fn roundtrip(&self, v: &[f32]) -> Vec<f32> {
        if self.k >= v.len() {
            return v.to_vec();
        }
        // Select the k-th largest magnitude without a full sort.
        let mut mags: Vec<f32> = v.iter().map(|x| x.abs()).collect();
        let idx = mags.len() - self.k;
        mags.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite magnitudes"));
        let threshold = mags[idx];
        let mut kept = 0usize;
        let mut out = vec![0.0f32; v.len()];
        // Keep strictly-above first, then fill ties up to k deterministically.
        for (o, &x) in out.iter_mut().zip(v) {
            if x.abs() > threshold {
                *o = x;
                kept += 1;
            }
        }
        if kept < self.k {
            for (o, &x) in out.iter_mut().zip(v) {
                if kept == self.k {
                    break;
                }
                if *o == 0.0 && x.abs() == threshold && x != 0.0 {
                    *o = x;
                    kept += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = fda_tensor::Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v, 0.0, 1.0);
        v
    }

    #[test]
    fn dense_is_lossless() {
        let v = sample(100, 1);
        assert_eq!(Dense32.roundtrip(&v), v);
        assert_eq!(Dense32.encoded_bytes(100), 400);
    }

    #[test]
    fn quantizer_error_bounded() {
        let v = sample(5_000, 2);
        let codec = Uniform8Bit::new(512);
        let r = codec.roundtrip(&v);
        assert_eq!(r.len(), v.len());
        // Per-chunk bound: (hi − lo)/255/2; normal data stays within ~8σ,
        // so |err| ≤ 16/510 ≈ 0.032 with slack.
        for (a, b) in v.iter().zip(&r) {
            assert!(
                (a - b).abs() < 0.05,
                "quantization error too large: {a} vs {b}"
            );
        }
        // 4×-ish compression.
        assert!(codec.encoded_bytes(5_000) < Dense32.encoded_bytes(5_000) / 3);
    }

    #[test]
    fn quantizer_handles_constant_chunks() {
        let v = vec![3.25f32; 100];
        let r = Uniform8Bit::new(32).roundtrip(&v);
        assert_eq!(r, v, "constant chunks must be exact");
    }

    #[test]
    fn topk_keeps_exactly_k_nonzeros() {
        let v = sample(1_000, 3);
        let codec = TopK::new(50);
        let r = codec.roundtrip(&v);
        let nonzero = r.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 50);
        // Every kept value is one of the originals.
        for (a, b) in v.iter().zip(&r) {
            assert!(*b == 0.0 || a == b);
        }
    }

    #[test]
    fn topk_keeps_the_largest() {
        let v = vec![0.1f32, -5.0, 0.2, 4.0, -0.3];
        let r = TopK::new(2).roundtrip(&v);
        assert_eq!(r, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn topk_fraction_and_bytes() {
        let codec = TopK::fraction(10_000, 0.01);
        assert_eq!(codec.encoded_bytes(10_000), 100 * 8);
        let full = TopK::new(20);
        assert_eq!(
            full.roundtrip(&[1.0, 2.0]),
            vec![1.0, 2.0],
            "k >= n is lossless"
        );
    }

    #[test]
    fn composition_with_averaging_preserves_mean_roughly() {
        // The FDA composition argument: quantize each worker's payload,
        // average the reconstructions — the result stays close to the true
        // average (error does not blow up across workers).
        let k = 8;
        let n = 2_000;
        let codec = Uniform8Bit::default();
        let workers: Vec<Vec<f32>> = (0..k).map(|i| sample(n, 100 + i as u64)).collect();
        let refs: Vec<&[f32]> = workers.iter().map(|w| w.as_slice()).collect();
        let true_mean = fda_tensor::vector::mean(&refs);
        let recon: Vec<Vec<f32>> = workers.iter().map(|w| codec.roundtrip(w)).collect();
        let rrefs: Vec<&[f32]> = recon.iter().map(|w| w.as_slice()).collect();
        let approx_mean = fda_tensor::vector::mean(&rrefs);
        for (a, b) in true_mean.iter().zip(&approx_mean) {
            assert!(
                (a - b).abs() < 0.02,
                "averaged quantization error too large"
            );
        }
    }
}
