//! Byte accounting and wall-time cost models.

/// How AllReduce traffic is charged to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountingMode {
    /// Each worker transmits its payload once per AllReduce
    /// (`payload_bytes` per worker). This matches the paper's headline
    /// metric, which scales as `K · payload` per synchronization.
    PerWorkerPayload,
    /// Bandwidth-optimal ring AllReduce: each worker transmits
    /// `2·(K−1)/K · payload` bytes.
    RingAllReduce,
}

impl AccountingMode {
    /// Bytes charged to **one** worker for an AllReduce of `payload_bytes`
    /// across `k` workers.
    pub fn per_worker_bytes(&self, payload_bytes: u64, k: usize) -> u64 {
        assert!(k >= 1, "accounting: k must be >= 1");
        if k == 1 {
            // Degenerate single-worker cluster: nothing leaves the node.
            return 0;
        }
        match self {
            AccountingMode::PerWorkerPayload => payload_bytes,
            AccountingMode::RingAllReduce => {
                // 2(K−1)/K · payload, rounded up.
                (2 * (k as u64 - 1) * payload_bytes).div_ceil(k as u64)
            }
        }
    }
}

/// A deployment environment translating (bytes, steps) into wall-time.
///
/// Figure 12 derives Θ guidelines for three regimes; the constants below
/// give the same *relative* cost structure: HPC is bandwidth-rich (compute
/// dominates), FL is bandwidth-starved (communication dominates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Regime name.
    pub name: &'static str,
    /// Usable per-worker bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-message overhead in seconds (connection setup, latency).
    pub latency: f64,
    /// Wall-time of one local training step in seconds.
    pub step_time: f64,
}

impl Environment {
    /// Federated regime: a shared 0.5 Gbps channel (§4.3), high latency.
    pub fn fl() -> Environment {
        Environment {
            name: "FL",
            bandwidth: 0.5e9 / 8.0,
            latency: 20e-3,
            step_time: 5e-3,
        }
    }

    /// Balanced regime: communication and computation comparable.
    pub fn balanced() -> Environment {
        Environment {
            name: "Balanced",
            bandwidth: 5e9 / 8.0,
            latency: 2e-3,
            step_time: 5e-3,
        }
    }

    /// The paper's ARIS-HPC regime: InfiniBand FDR14 (~56 Gbps), compute
    /// dominates.
    pub fn hpc() -> Environment {
        Environment {
            name: "ARIS-HPC",
            bandwidth: 56e9 / 8.0,
            latency: 0.2e-3,
            step_time: 5e-3,
        }
    }

    /// All three regimes in Figure 12 order.
    pub fn all() -> [Environment; 3] {
        [
            Environment::fl(),
            Environment::balanced(),
            Environment::hpc(),
        ]
    }

    /// Estimated wall-time of a training run for one worker.
    pub fn wall_time(&self, per_worker_bytes: u64, steps: u64, messages: u64) -> f64 {
        steps as f64 * self.step_time
            + per_worker_bytes as f64 / self.bandwidth
            + messages as f64 * self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_payload_is_identity_for_multiworker() {
        let m = AccountingMode::PerWorkerPayload;
        assert_eq!(m.per_worker_bytes(1000, 8), 1000);
        assert_eq!(m.per_worker_bytes(1000, 2), 1000);
    }

    #[test]
    fn single_worker_costs_nothing() {
        for m in [
            AccountingMode::PerWorkerPayload,
            AccountingMode::RingAllReduce,
        ] {
            assert_eq!(m.per_worker_bytes(12345, 1), 0);
        }
    }

    #[test]
    fn ring_is_cheaper_for_small_k_and_approaches_2x() {
        let m = AccountingMode::RingAllReduce;
        // K = 2: 2·(1)/2 = 1× payload.
        assert_eq!(m.per_worker_bytes(1000, 2), 1000);
        // Large K: → 2× payload.
        assert_eq!(m.per_worker_bytes(1000, 1000), 1998);
    }

    #[test]
    fn fl_pays_more_for_bytes_than_hpc() {
        let bytes = 100_000_000u64;
        let t_fl = Environment::fl().wall_time(bytes, 0, 0);
        let t_hpc = Environment::hpc().wall_time(bytes, 0, 0);
        assert!(
            t_fl > 50.0 * t_hpc,
            "FL should be ≥ 2 orders slower per byte: {t_fl} vs {t_hpc}"
        );
    }

    #[test]
    fn wall_time_components_add() {
        let env = Environment {
            name: "t",
            bandwidth: 100.0,
            latency: 1.0,
            step_time: 2.0,
        };
        assert_eq!(env.wall_time(200, 3, 4), 3.0 * 2.0 + 2.0 + 4.0);
    }
}
