//! Dataset containers.

use fda_tensor::Matrix;

/// A labelled dataset: one flattened sample per row of `x`.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Matrix,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if row counts mismatch or any label is out of range.
    pub fn new(x: Matrix, y: Vec<usize>, classes: usize) -> Dataset {
        assert_eq!(x.rows(), y.len(), "dataset: x/y size mismatch");
        assert!(classes >= 2, "dataset: need at least two classes");
        assert!(
            y.iter().all(|&label| label < classes),
            "dataset: label out of range"
        );
        Dataset { x, y, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True iff the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension per sample.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Features of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        self.x.row(i)
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.y[i]
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Gathers the given sample indices into a dense batch.
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn gather(&self, indices: &[usize]) -> (Matrix, Vec<usize>) {
        assert!(!indices.is_empty(), "gather: empty index set");
        let mut xb = Matrix::zeros(indices.len(), self.dim());
        let mut yb = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            xb.row_mut(row).copy_from_slice(self.x.row(i));
            yb.push(self.y[i]);
        }
        (xb, yb)
    }

    /// Gathers the given sample indices directly into a **channel-major**
    /// batch (`channels × batch·spatial`, per-sample column blocks) — the
    /// native input layout of convolutional models, produced here so the
    /// training hot path never pays a layout-conversion pass. Feature order
    /// within each stored sample row is `(channel, y, x)`, so this is a
    /// pure regrouping of the same plane copies `gather` performs.
    ///
    /// # Panics
    /// Panics if any index is out of bounds, `indices` is empty, or the
    /// feature dimension does not divide into `channels` planes.
    pub fn gather_channel_major(&self, indices: &[usize], channels: usize) -> (Matrix, Vec<usize>) {
        assert!(!indices.is_empty(), "gather: empty index set");
        assert!(channels >= 1, "gather: zero channels");
        assert_eq!(
            self.dim() % channels,
            0,
            "gather: dim {} not divisible by {} channels",
            self.dim(),
            channels
        );
        let spatial = self.dim() / channels;
        let batch = indices.len();
        let mut xb = Matrix::zeros(channels, batch * spatial);
        let mut yb = Vec::with_capacity(batch);
        for (s, &i) in indices.iter().enumerate() {
            let row = self.x.row(i);
            for ch in 0..channels {
                xb.row_mut(ch)[s * spatial..(s + 1) * spatial]
                    .copy_from_slice(&row[ch * spatial..(ch + 1) * spatial]);
            }
            yb.push(self.y[i]);
        }
        (xb, yb)
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &label in &self.y {
            h[label] += 1;
        }
        h
    }
}

/// A train/test pair produced by the synthetic generators.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split (drives the paper's Accuracy Target criterion).
    pub test: Dataset,
    /// Short task identifier (e.g. `synth-mnist`).
    pub name: String,
}

impl TaskData {
    /// Feature dimension (identical across splits).
    pub fn dim(&self) -> usize {
        self.train.dim()
    }

    /// Number of classes (identical across splits).
    pub fn classes(&self) -> usize {
        self.train.classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        Dataset::new(x, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.sample(2), &[2.0, 2.0]);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.class_histogram(), vec![2, 2]);
    }

    #[test]
    fn gather_builds_batches() {
        let d = toy();
        let (xb, yb) = d.gather(&[3, 0]);
        assert_eq!(xb.row(0), &[3.0, 3.0]);
        assert_eq!(xb.row(1), &[0.0, 0.0]);
        assert_eq!(yb, vec![1, 0]);
    }

    #[test]
    fn gather_channel_major_matches_converted_gather() {
        // 3 samples of 2 channels × 3 spatial positions.
        let x = Matrix::from_vec(3, 6, (0..18).map(|i| i as f32).collect());
        let d = Dataset::new(x, vec![0, 1, 0], 2);
        let idx = [2usize, 0];
        let (sm, y_sm) = d.gather(&idx);
        let (cm, y_cm) = d.gather_channel_major(&idx, 2);
        assert_eq!(y_sm, y_cm);
        assert_eq!((cm.rows(), cm.cols()), (2, 2 * 3));
        assert_eq!(
            cm,
            sm.to_channel_major(2),
            "direct channel-major gather must equal gather + conversion"
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn gather_channel_major_indivisible_panics() {
        let d = toy(); // dim 2
        let _ = d.gather_channel_major(&[0], 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let x = Matrix::zeros(1, 1);
        let _ = Dataset::new(x, vec![5], 2);
    }
}
