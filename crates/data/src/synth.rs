//! Synthetic classification-task generators.
//!
//! Each class is a mixture of `modes_per_class` Gaussian prototypes in
//! feature space; samples are `prototype · amplitude + noise`. Difficulty
//! is controlled by `noise_std` relative to the typical prototype distance
//! (≈ `prototype_scale · √(2·dim)`), and the amplitude jitter adds
//! within-class variability so models need several epochs rather than a
//! single nearest-centroid-like step.

use crate::dataset::{Dataset, TaskData};
use fda_tensor::{Matrix, Rng};

/// Configuration of a synthetic classification task.
#[derive(Debug, Clone, Copy)]
pub struct SynthSpec {
    /// Number of classes.
    pub classes: usize,
    /// Gaussian prototypes per class (multi-modality).
    pub modes_per_class: usize,
    /// Feature dimension (flattened image size or extractor width).
    pub dim: usize,
    /// For image tasks: the `(channels, height, width)` interpretation of
    /// `dim`. When set, prototypes are spatially smoothed so they exhibit
    /// the local correlation structure convolutional models rely on
    /// (white-noise prototypes are adversarial for weight-sharing filters).
    pub spatial: Option<(usize, usize, usize)>,
    /// Number of 3×3 box-blur passes applied to spatial prototypes.
    pub smooth_passes: usize,
    /// Std-dev of additive noise.
    pub noise_std: f32,
    /// Scale of prototype entries (prototypes are normalized to
    /// `scale · √dim` after smoothing, i.e. per-entry RMS = `scale`).
    pub prototype_scale: f32,
    /// Amplitude jitter half-width: amplitude ~ U(1−j, 1+j).
    pub amplitude_jitter: f32,
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Generator seed (prototypes and draws).
    pub seed: u64,
}

/// One in-place 3×3 box-blur pass over a `h × w` plane (clamped borders).
fn blur_plane(plane: &mut [f32], h: usize, w: usize) {
    let src = plane.to_vec();
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            let mut cnt = 0.0f32;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let ny = y as isize + dy;
                    let nx = x as isize + dx;
                    if ny >= 0 && ny < h as isize && nx >= 0 && nx < w as isize {
                        acc += src[ny as usize * w + nx as usize];
                        cnt += 1.0;
                    }
                }
            }
            plane[y * w + x] = acc / cnt;
        }
    }
}

impl SynthSpec {
    /// MNIST stand-in: 10 classes, 1×12×12 "images", easy task
    /// (the paper reaches 98.5%+ on MNIST).
    pub fn synth_mnist() -> SynthSpec {
        SynthSpec {
            classes: 10,
            modes_per_class: 3,
            dim: 144,
            spatial: Some((1, 12, 12)),
            smooth_passes: 2,
            noise_std: 1.0,
            prototype_scale: 0.55,
            amplitude_jitter: 0.35,
            n_train: 4_000,
            n_test: 1_000,
            seed: 0xA11CE,
        }
    }

    /// CIFAR-10 stand-in: 10 classes, 3×8×8 "images", harder than the
    /// MNIST stand-in (the paper's CIFAR targets stop at ~0.81).
    pub fn synth_cifar10() -> SynthSpec {
        SynthSpec {
            classes: 10,
            modes_per_class: 4,
            dim: 192,
            spatial: Some((3, 8, 8)),
            smooth_passes: 2,
            noise_std: 1.0,
            prototype_scale: 0.40,
            amplitude_jitter: 0.45,
            n_train: 4_000,
            n_test: 1_000,
            seed: 0xC1FA8,
        }
    }

    /// CIFAR-100 transfer stand-in: 100 classes over 128-dim "extractor
    /// features" with heavy overlap, calibrated so a linear probe lands
    /// near the paper's 60% pre-fine-tuning accuracy.
    pub fn synth_cifar100_features() -> SynthSpec {
        SynthSpec {
            classes: 100,
            modes_per_class: 1,
            dim: 128,
            spatial: None,
            smooth_passes: 0,
            noise_std: 2.4,
            prototype_scale: 1.0,
            amplitude_jitter: 0.2,
            n_train: 6_000,
            n_test: 1_500,
            seed: 0xFEA7,
        }
    }

    /// Generates the train/test task.
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero classes/dim/samples).
    pub fn generate(&self, name: &str) -> TaskData {
        assert!(self.classes >= 2, "synth: need >= 2 classes");
        assert!(self.modes_per_class >= 1, "synth: need >= 1 mode");
        assert!(self.dim >= 1, "synth: need >= 1 feature");
        assert!(self.n_train > 0 && self.n_test > 0, "synth: empty split");
        let mut rng = Rng::new(self.seed);

        // Fixed prototypes, shared by both splits.
        let n_protos = self.classes * self.modes_per_class;
        let mut prototypes = Matrix::zeros(n_protos, self.dim);
        rng.fill_normal(prototypes.as_mut_slice(), 0.0, 1.0);
        if let Some((c, h, w)) = self.spatial {
            assert_eq!(
                c * h * w,
                self.dim,
                "synth: spatial shape {c}x{h}x{w} must flatten to dim {}",
                self.dim
            );
            for p in 0..n_protos {
                let row = prototypes.row_mut(p);
                for ch in 0..c {
                    let plane = &mut row[ch * h * w..(ch + 1) * h * w];
                    for _ in 0..self.smooth_passes {
                        blur_plane(plane, h, w);
                    }
                }
            }
        }
        // Normalize every prototype to ‖p‖ = scale·√dim so task difficulty
        // (separation vs noise) is independent of the smoothing, which
        // shrinks variance.
        let target_norm = self.prototype_scale * (self.dim as f32).sqrt();
        for p in 0..n_protos {
            let row = prototypes.row_mut(p);
            let norm = fda_tensor::vector::norm(row);
            if norm > 0.0 {
                fda_tensor::vector::scale(row, target_norm / norm);
            }
        }

        let gen_split = |n: usize, rng: &mut Rng| -> Dataset {
            let mut x = Matrix::zeros(n, self.dim);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                // Round-robin over classes keeps splits near-balanced.
                let class = i % self.classes;
                let mode = rng.index(self.modes_per_class);
                let proto = prototypes.row(class * self.modes_per_class + mode);
                let amp =
                    rng.uniform_range(1.0 - self.amplitude_jitter, 1.0 + self.amplitude_jitter);
                let row = x.row_mut(i);
                for (out, &p) in row.iter_mut().zip(proto) {
                    *out = amp * p + rng.normal(0.0, self.noise_std);
                }
                y.push(class);
            }
            Dataset::new(x, y, self.classes)
        };

        let train = gen_split(self.n_train, &mut rng);
        let test = gen_split(self.n_test, &mut rng);
        TaskData {
            train,
            test,
            name: name.to_string(),
        }
    }
}

/// Convenience constructors for the three standard tasks.
pub fn synth_mnist() -> TaskData {
    SynthSpec::synth_mnist().generate("synth-mnist")
}

/// CIFAR-10 stand-in task.
pub fn synth_cifar10() -> TaskData {
    SynthSpec::synth_cifar10().generate("synth-cifar10")
}

/// CIFAR-100 transfer-features stand-in task.
pub fn synth_cifar100_features() -> TaskData {
    SynthSpec::synth_cifar100_features().generate("synth-cifar100-features")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_have_requested_sizes_and_balance() {
        let task = SynthSpec {
            n_train: 500,
            n_test: 200,
            ..SynthSpec::synth_mnist()
        }
        .generate("t");
        assert_eq!(task.train.len(), 500);
        assert_eq!(task.test.len(), 200);
        let hist = task.train.class_histogram();
        let (min, max) = (hist.iter().min().unwrap(), hist.iter().max().unwrap());
        assert!(
            max - min <= 1,
            "round-robin classes must be balanced: {hist:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthSpec::synth_mnist().generate("a");
        let b = SynthSpec::synth_mnist().generate("b");
        assert_eq!(a.train.features().as_slice(), b.train.features().as_slice());
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthSpec::synth_mnist().generate("a");
        let b = SynthSpec {
            seed: 999,
            ..SynthSpec::synth_mnist()
        }
        .generate("b");
        assert_ne!(a.train.features().as_slice(), b.train.features().as_slice());
    }

    #[test]
    fn nearest_centroid_sanity() {
        // The task must be learnable: a nearest-class-centroid classifier
        // (fit on train, eval on test) should beat chance by a wide margin
        // on the MNIST stand-in and be clearly harder on the CIFAR-100
        // features stand-in.
        fn centroid_accuracy(task: &TaskData) -> f64 {
            let classes = task.classes();
            let dim = task.dim();
            let mut centroids = vec![vec![0.0f64; dim]; classes];
            let mut counts = vec![0usize; classes];
            for i in 0..task.train.len() {
                let label = task.train.label(i);
                counts[label] += 1;
                for (acc, &v) in centroids[label].iter_mut().zip(task.train.sample(i)) {
                    *acc += v as f64;
                }
            }
            for (c, count) in centroids.iter_mut().zip(&counts) {
                for v in c.iter_mut() {
                    *v /= (*count).max(1) as f64;
                }
            }
            let mut correct = 0usize;
            for i in 0..task.test.len() {
                let s = task.test.sample(i);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (ci, c) in centroids.iter().enumerate() {
                    let d: f64 = s
                        .iter()
                        .zip(c)
                        .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                        .sum();
                    if d < best_d {
                        best_d = d;
                        best = ci;
                    }
                }
                if best == task.test.label(i) {
                    correct += 1;
                }
            }
            correct as f64 / task.test.len() as f64
        }

        let mnist = synth_mnist();
        let acc_mnist = centroid_accuracy(&mnist);
        assert!(
            acc_mnist > 0.5,
            "mnist stand-in should be separable: {acc_mnist}"
        );

        let transfer = synth_cifar100_features();
        let acc_tr = centroid_accuracy(&transfer);
        assert!(
            acc_tr > 0.2 && acc_tr < 0.95,
            "transfer stand-in should be hard but learnable: {acc_tr}"
        );
    }

    #[test]
    fn feature_dims_match_model_expectations() {
        assert_eq!(synth_mnist().dim(), 144); // 1×12×12
        assert_eq!(synth_cifar10().dim(), 192); // 3×8×8
        assert_eq!(synth_cifar100_features().dim(), 128);
        assert_eq!(synth_cifar100_features().classes(), 100);
    }
}
