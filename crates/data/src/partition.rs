//! Data-heterogeneity partitioners (§4.1 "Data Distribution").
//!
//! All three schemes divide the training set into `K` near-equal shards;
//! they differ in how label-skewed those shards are:
//!
//! * [`Partition::Iid`] — uniform random split.
//! * [`Partition::NonIidPercent`] — `X%` of the data is sorted by label and
//!   dealt sequentially to workers (so some workers see long runs of one
//!   label); the remaining `(100−X)%` is spread IID.
//! * [`Partition::NonIidLabel`] — every sample of label `Y` is concentrated
//!   on a few workers; the rest is IID.

use crate::dataset::Dataset;
use fda_tensor::Rng;

/// A data-distribution scheme across `K` workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Independent and identically distributed shards.
    Iid,
    /// `fraction` ∈ (0, 1]: that portion is sorted by label and dealt
    /// sequentially; the rest is IID. (The paper's "Non-IID: X%".)
    NonIidPercent(f32),
    /// All samples of the given label go to a small group of workers
    /// (the paper's "Non-IID: Label Y").
    NonIidLabel(usize),
}

impl Partition {
    /// Short display name matching the paper's figure captions.
    pub fn label(&self) -> String {
        match self {
            Partition::Iid => "IID".to_string(),
            Partition::NonIidPercent(f) => format!("Non-IID: {:.0}%", f * 100.0),
            Partition::NonIidLabel(y) => format!("Non-IID: Label \"{y}\""),
        }
    }

    /// Splits `dataset` into `k` shards of sample indices.
    ///
    /// Every shard is non-empty and the shards exactly cover the dataset
    /// (sizes differ by at most the skew the scheme demands).
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > dataset.len()`, or the scheme is
    /// ill-configured (fraction outside (0,1], label out of range).
    pub fn shards(&self, dataset: &Dataset, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k >= 1, "partition: need at least one worker");
        assert!(
            k <= dataset.len(),
            "partition: more workers ({k}) than samples ({})",
            dataset.len()
        );
        let mut rng = Rng::new(seed);
        let shards = match self {
            Partition::Iid => {
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                rng.shuffle(&mut idx);
                deal_round_robin(&idx, k)
            }
            Partition::NonIidPercent(fraction) => {
                assert!(
                    *fraction > 0.0 && *fraction <= 1.0,
                    "partition: fraction must be in (0, 1], got {fraction}"
                );
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                rng.shuffle(&mut idx);
                let n_sorted = ((dataset.len() as f32) * fraction).round() as usize;
                let (sorted_part, iid_part) = idx.split_at(n_sorted.min(idx.len()));
                // Sort the skewed portion by label, then deal it in
                // contiguous blocks so each worker receives label runs.
                let mut sorted: Vec<usize> = sorted_part.to_vec();
                sorted.sort_by_key(|&i| dataset.label(i));
                let mut shards = deal_contiguous(&sorted, k);
                // Spread the remainder IID (round-robin after shuffle).
                for (j, &i) in iid_part.iter().enumerate() {
                    shards[j % k].push(i);
                }
                shards
            }
            Partition::NonIidLabel(y) => {
                assert!(
                    *y < dataset.classes(),
                    "partition: label {y} out of range {}",
                    dataset.classes()
                );
                let mut label_idx = Vec::new();
                let mut rest_idx = Vec::new();
                for i in 0..dataset.len() {
                    if dataset.label(i) == *y {
                        label_idx.push(i);
                    } else {
                        rest_idx.push(i);
                    }
                }
                rng.shuffle(&mut rest_idx);
                // "Assigned to a few workers": concentrate label Y on
                // max(1, K/10) workers, matching the paper's description.
                let few = (k / 10).max(1);
                let mut shards = vec![Vec::new(); k];
                for (j, &i) in label_idx.iter().enumerate() {
                    shards[j % few].push(i);
                }
                for (j, &i) in rest_idx.iter().enumerate() {
                    shards[j % k].push(i);
                }
                shards
            }
        };
        debug_assert_eq!(shards.len(), k);
        assert!(
            shards.iter().all(|s| !s.is_empty()),
            "partition produced an empty shard (k too large for scheme?)"
        );
        shards
    }
}

/// Deals indices round-robin into `k` shards (balanced to within 1).
fn deal_round_robin(idx: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut shards = vec![Vec::with_capacity(idx.len() / k + 1); k];
    for (j, &i) in idx.iter().enumerate() {
        shards[j % k].push(i);
    }
    shards
}

/// Deals indices as contiguous blocks into `k` shards (balanced to within 1).
fn deal_contiguous(idx: &[usize], k: usize) -> Vec<Vec<usize>> {
    let n = idx.len();
    let base = n / k;
    let extra = n % k;
    let mut shards = Vec::with_capacity(k);
    let mut start = 0usize;
    for j in 0..k {
        let size = base + usize::from(j < extra);
        shards.push(idx[start..start + size].to_vec());
        start += size;
    }
    shards
}

/// A label-skew score in `[0, 1]`: mean over shards of
/// `(max class share − uniform share) / (1 − uniform share)`.
/// 0 ⇒ perfectly mixed shards, 1 ⇒ each shard single-label.
pub fn label_skew(dataset: &Dataset, shards: &[Vec<usize>]) -> f64 {
    let classes = dataset.classes();
    let uniform = 1.0 / classes as f64;
    let mut total = 0.0;
    for shard in shards {
        let mut hist = vec![0usize; classes];
        for &i in shard {
            hist[dataset.label(i)] += 1;
        }
        let max_share = hist.iter().copied().max().unwrap_or(0) as f64 / shard.len().max(1) as f64;
        total += (max_share - uniform) / (1.0 - uniform);
    }
    (total / shards.len() as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fda_tensor::Matrix;

    fn labelled_dataset(n: usize, classes: usize) -> Dataset {
        let x = Matrix::zeros(n, 2);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    fn assert_exact_cover(n: usize, shards: &[Vec<usize>]) {
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "shards must cover exactly");
    }

    #[test]
    fn iid_cover_and_balance() {
        let d = labelled_dataset(103, 10);
        let shards = Partition::Iid.shards(&d, 7, 1);
        assert_exact_cover(103, &shards);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn percent_partition_covers_and_skews() {
        let d = labelled_dataset(1000, 10);
        let iid = Partition::Iid.shards(&d, 10, 2);
        let skewed = Partition::NonIidPercent(0.6).shards(&d, 10, 2);
        assert_exact_cover(1000, &skewed);
        let s_iid = label_skew(&d, &iid);
        let s_skew = label_skew(&d, &skewed);
        assert!(
            s_skew > s_iid + 0.1,
            "60% sorted should be measurably more skewed: {s_iid} vs {s_skew}"
        );
    }

    #[test]
    fn full_sort_is_maximally_skewed() {
        let d = labelled_dataset(1000, 10);
        let shards = Partition::NonIidPercent(1.0).shards(&d, 10, 3);
        assert_exact_cover(1000, &shards);
        let skew = label_skew(&d, &shards);
        assert!(
            skew > 0.9,
            "fully sorted deal should be near single-label: {skew}"
        );
    }

    #[test]
    fn label_partition_concentrates_label() {
        let d = labelled_dataset(1000, 10);
        let k = 20;
        let shards = Partition::NonIidLabel(0).shards(&d, k, 4);
        assert_exact_cover(1000, &shards);
        let few = (k / 10).max(1);
        // All the label-0 samples must sit on the first `few` shards.
        for (j, shard) in shards.iter().enumerate() {
            let zero_count = shard.iter().filter(|&&i| d.label(i) == 0).count();
            if j >= few {
                assert_eq!(zero_count, 0, "shard {j} should hold no label-0 samples");
            }
        }
        let total_zero: usize = shards
            .iter()
            .take(few)
            .map(|s| s.iter().filter(|&&i| d.label(i) == 0).count())
            .sum();
        assert_eq!(total_zero, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = labelled_dataset(200, 5);
        let a = Partition::NonIidPercent(0.5).shards(&d, 4, 42);
        let b = Partition::NonIidPercent(0.5).shards(&d, 4, 42);
        assert_eq!(a, b);
        let c = Partition::NonIidPercent(0.5).shards(&d, 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_render_like_paper_captions() {
        assert_eq!(Partition::Iid.label(), "IID");
        assert_eq!(Partition::NonIidPercent(0.6).label(), "Non-IID: 60%");
        assert_eq!(Partition::NonIidLabel(0).label(), "Non-IID: Label \"0\"");
    }

    #[test]
    #[should_panic(expected = "more workers")]
    fn too_many_workers_panics() {
        let d = labelled_dataset(3, 2);
        let _ = Partition::Iid.shards(&d, 5, 0);
    }
}
