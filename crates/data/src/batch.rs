//! Mini-batch sampling over a worker's shard.
//!
//! Two modes are used by the training strategies:
//!
//! * **Per-step sampling** ([`BatchSampler::sample`]) — Algorithm 1 line 4:
//!   "sample a batch of size b from D_k" at every step. Sampling is
//!   without replacement within an epoch (reshuffled between epochs),
//!   which matches the framework semantics the paper builds on.
//! * **Epoch iteration** ([`BatchSampler::epoch_batches`]) — the FedOpt
//!   baselines run `E` full local epochs between rounds.

use crate::dataset::Dataset;
use fda_tensor::{Matrix, Rng};

/// A shuffling mini-batch sampler over a fixed index shard.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    indices: Vec<usize>,
    cursor: usize,
    batch: usize,
    rng: Rng,
}

impl BatchSampler {
    /// Creates a sampler over `shard` with the given batch size.
    ///
    /// # Panics
    /// Panics if the shard is empty or the batch size is zero.
    pub fn new(shard: Vec<usize>, batch: usize, rng: Rng) -> BatchSampler {
        assert!(!shard.is_empty(), "sampler: empty shard");
        assert!(batch >= 1, "sampler: zero batch size");
        let mut s = BatchSampler {
            indices: shard,
            cursor: 0,
            batch,
            rng,
        };
        s.reshuffle();
        s
    }

    /// Number of samples in the shard.
    pub fn shard_len(&self) -> usize {
        self.indices.len()
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Mini-batches per epoch (ceiling division; the paper's "steps per
    /// epoch" for a worker).
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch)
    }

    fn reshuffle(&mut self) {
        self.rng.shuffle(&mut self.indices);
        self.cursor = 0;
    }

    /// Advances the cursor (wrapping and reshuffling at epoch end) and
    /// returns the index range of the next mini-batch.
    fn advance(&mut self) -> std::ops::Range<usize> {
        let n = self.indices.len();
        let take = self.batch.min(n);
        if self.cursor + take > n {
            self.reshuffle();
        }
        let start = self.cursor;
        self.cursor += take;
        start..start + take
    }

    /// Draws the next mini-batch (wrapping and reshuffling at epoch end).
    pub fn sample(&mut self, dataset: &Dataset) -> (Matrix, Vec<usize>) {
        let r = self.advance();
        dataset.gather(&self.indices[r])
    }

    /// Like [`BatchSampler::sample`], but gathers the batch directly into
    /// the layout a model declares as native: channel-major
    /// (`Some(channels)`) or sample-major rows (`None`). The index stream —
    /// and therefore the RNG state and the sampled values — is identical to
    /// [`BatchSampler::sample`]; only the destination arrangement differs,
    /// so switching a training loop to this entry is trajectory-preserving.
    pub fn sample_native(
        &mut self,
        dataset: &Dataset,
        channels: Option<usize>,
    ) -> (Matrix, Vec<usize>) {
        let r = self.advance();
        let idx = &self.indices[r];
        match channels {
            Some(c) => dataset.gather_channel_major(idx, c),
            None => dataset.gather(idx),
        }
    }

    /// Returns all batch index-ranges of one fresh epoch (shuffled).
    /// The final batch may be smaller than `batch`.
    pub fn epoch_batches(&mut self) -> Vec<Vec<usize>> {
        self.reshuffle();
        self.indices
            .chunks(self.batch)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::new(x, y, 2)
    }

    #[test]
    fn batches_have_requested_size() {
        let d = dataset(50);
        let mut s = BatchSampler::new((0..50).collect(), 8, Rng::new(1));
        for _ in 0..20 {
            let (x, y) = s.sample(&d);
            assert_eq!(x.rows(), 8);
            assert_eq!(y.len(), 8);
        }
    }

    #[test]
    fn epoch_covers_shard_exactly_once() {
        let d = dataset(23);
        let shard: Vec<usize> = (0..23).collect();
        let mut s = BatchSampler::new(shard, 5, Rng::new(2));
        let batches = s.epoch_batches();
        assert_eq!(batches.len(), 5); // ceil(23/5)
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        let _ = d;
    }

    #[test]
    fn within_epoch_sampling_has_no_repeats() {
        let d = dataset(40);
        let mut s = BatchSampler::new((0..40).collect(), 10, Rng::new(3));
        let mut seen = Vec::new();
        for _ in 0..4 {
            let (x, _) = s.sample(&d);
            for r in 0..x.rows() {
                seen.push(x.row(r)[0] as usize);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40, "one epoch of sampling covers the shard");
    }

    #[test]
    fn batch_larger_than_shard_clamps() {
        let d = dataset(3);
        let mut s = BatchSampler::new(vec![0, 1, 2], 32, Rng::new(4));
        let (x, y) = s.sample(&d);
        assert_eq!(x.rows(), 3);
        assert_eq!(y.len(), 3);
        assert_eq!(s.batches_per_epoch(), 1);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let d = dataset(30);
        let mut a = BatchSampler::new((0..30).collect(), 4, Rng::new(9));
        let mut b = BatchSampler::new((0..30).collect(), 4, Rng::new(9));
        for _ in 0..10 {
            let (xa, ya) = a.sample(&d);
            let (xb, yb) = b.sample(&d);
            assert_eq!(xa.as_slice(), xb.as_slice());
            assert_eq!(ya, yb);
        }
    }

    /// `sample_native` must consume the identical index stream as `sample`
    /// — same RNG state, same samples — differing only in the batch layout,
    /// so switching a training loop between the two entries is
    /// trajectory-preserving.
    #[test]
    fn sample_native_matches_sample_stream() {
        // 2-channel samples: dim 4 = 2 planes of 2.
        let x = Matrix::from_vec(12, 4, (0..48).map(|i| i as f32).collect());
        let d = Dataset::new(x, (0..12).map(|i| i % 2).collect(), 2);
        let mut plain = BatchSampler::new((0..12).collect(), 5, Rng::new(21));
        let mut native = BatchSampler::new((0..12).collect(), 5, Rng::new(21));
        for step in 0..7 {
            let (xs, ys) = plain.sample(&d);
            let (xc, yc) = native.sample_native(&d, Some(2));
            assert_eq!(ys, yc, "step {step}: labels diverged");
            assert_eq!(
                xc,
                xs.to_channel_major(2),
                "step {step}: batch values diverged"
            );
        }
        // And the sample-major native path is the plain gather.
        let (xs, ys) = plain.sample(&d);
        let (xn, yn) = native.sample_native(&d, None);
        assert_eq!((xs, ys), (xn, yn));
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_panics() {
        let _ = BatchSampler::new(vec![], 4, Rng::new(0));
    }
}
