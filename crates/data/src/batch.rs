//! Mini-batch sampling over a worker's shard.
//!
//! Two modes are used by the training strategies:
//!
//! * **Per-step sampling** ([`BatchSampler::sample`]) — Algorithm 1 line 4:
//!   "sample a batch of size b from D_k" at every step. Sampling is
//!   without replacement within an epoch (reshuffled between epochs),
//!   which matches the framework semantics the paper builds on.
//! * **Epoch iteration** ([`BatchSampler::epoch_batches`]) — the FedOpt
//!   baselines run `E` full local epochs between rounds.

use crate::dataset::Dataset;
use fda_tensor::{Matrix, Rng};

/// A shuffling mini-batch sampler over a fixed index shard.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    indices: Vec<usize>,
    cursor: usize,
    batch: usize,
    rng: Rng,
}

impl BatchSampler {
    /// Creates a sampler over `shard` with the given batch size.
    ///
    /// # Panics
    /// Panics if the shard is empty or the batch size is zero.
    pub fn new(shard: Vec<usize>, batch: usize, rng: Rng) -> BatchSampler {
        assert!(!shard.is_empty(), "sampler: empty shard");
        assert!(batch >= 1, "sampler: zero batch size");
        let mut s = BatchSampler {
            indices: shard,
            cursor: 0,
            batch,
            rng,
        };
        s.reshuffle();
        s
    }

    /// Number of samples in the shard.
    pub fn shard_len(&self) -> usize {
        self.indices.len()
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Mini-batches per epoch (ceiling division; the paper's "steps per
    /// epoch" for a worker).
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch)
    }

    fn reshuffle(&mut self) {
        self.rng.shuffle(&mut self.indices);
        self.cursor = 0;
    }

    /// Draws the next mini-batch (wrapping and reshuffling at epoch end).
    pub fn sample(&mut self, dataset: &Dataset) -> (Matrix, Vec<usize>) {
        let n = self.indices.len();
        let take = self.batch.min(n);
        if self.cursor + take > n {
            self.reshuffle();
        }
        let slice = &self.indices[self.cursor..self.cursor + take];
        let out = dataset.gather(slice);
        self.cursor += take;
        out
    }

    /// Returns all batch index-ranges of one fresh epoch (shuffled).
    /// The final batch may be smaller than `batch`.
    pub fn epoch_batches(&mut self) -> Vec<Vec<usize>> {
        self.reshuffle();
        self.indices
            .chunks(self.batch)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::new(x, y, 2)
    }

    #[test]
    fn batches_have_requested_size() {
        let d = dataset(50);
        let mut s = BatchSampler::new((0..50).collect(), 8, Rng::new(1));
        for _ in 0..20 {
            let (x, y) = s.sample(&d);
            assert_eq!(x.rows(), 8);
            assert_eq!(y.len(), 8);
        }
    }

    #[test]
    fn epoch_covers_shard_exactly_once() {
        let d = dataset(23);
        let shard: Vec<usize> = (0..23).collect();
        let mut s = BatchSampler::new(shard, 5, Rng::new(2));
        let batches = s.epoch_batches();
        assert_eq!(batches.len(), 5); // ceil(23/5)
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        let _ = d;
    }

    #[test]
    fn within_epoch_sampling_has_no_repeats() {
        let d = dataset(40);
        let mut s = BatchSampler::new((0..40).collect(), 10, Rng::new(3));
        let mut seen = Vec::new();
        for _ in 0..4 {
            let (x, _) = s.sample(&d);
            for r in 0..x.rows() {
                seen.push(x.row(r)[0] as usize);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40, "one epoch of sampling covers the shard");
    }

    #[test]
    fn batch_larger_than_shard_clamps() {
        let d = dataset(3);
        let mut s = BatchSampler::new(vec![0, 1, 2], 32, Rng::new(4));
        let (x, y) = s.sample(&d);
        assert_eq!(x.rows(), 3);
        assert_eq!(y.len(), 3);
        assert_eq!(s.batches_per_epoch(), 1);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let d = dataset(30);
        let mut a = BatchSampler::new((0..30).collect(), 4, Rng::new(9));
        let mut b = BatchSampler::new((0..30).collect(), 4, Rng::new(9));
        for _ in 0..10 {
            let (xa, ya) = a.sample(&d);
            let (xb, yb) = b.sample(&d);
            assert_eq!(xa.as_slice(), xb.as_slice());
            assert_eq!(ya, yb);
        }
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_panics() {
        let _ = BatchSampler::new(vec![], 4, Rng::new(0));
    }
}
