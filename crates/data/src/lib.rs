//! # fda-data
//!
//! Datasets and partitioners for the FDA reproduction.
//!
//! The paper trains on MNIST, CIFAR-10 and CIFAR-100 features. Those
//! datasets are not available in this offline environment, so this crate
//! generates **synthetic classification tasks** with the same shape:
//! multi-class, multi-modal, noisy, with controllable difficulty and a
//! train/test split (see `DESIGN.md` §4 for the substitution argument:
//! FDA's synchronization decisions depend on the drift geometry induced by
//! SGD over heterogeneous shards, not on pixel semantics).
//!
//! Heterogeneity follows the paper's §4.1 "Data Distribution" exactly:
//!
//! 1. **IID** — shuffle and split equally.
//! 2. **Non-IID X%** — a fraction X% is sorted by label and dealt
//!    sequentially to workers; the rest is IID.
//! 3. **Non-IID Label Y** — all samples of label Y go to a few workers,
//!    the rest IID.

pub mod batch;
pub mod dataset;
pub mod partition;
pub mod synth;

pub use dataset::{Dataset, TaskData};
pub use partition::Partition;
pub use synth::SynthSpec;
