//! A minimal drop-in for the subset of the `criterion` API this workspace
//! uses. The workspace is intentionally dependency-free (see DESIGN.md), so
//! this shim keeps every `benches/` target compiling and producing useful
//! wall-clock numbers with zero external dependencies; swap the path
//! dependency for the real criterion if statistical analysis is wanted.
//!
//! Supported surface:
//!
//! * [`black_box`] (re-export of `std::hint::black_box`),
//! * [`Criterion::benchmark_group`] → [`BenchmarkGroup`] with
//!   `sample_size`, `measurement_time`, `bench_function`, `finish`,
//! * [`Bencher::iter`],
//! * [`criterion_group!`] / [`criterion_main!`].
//!
//! Behavioural notes:
//!
//! * Passing `--test` on the bench command line (as the real criterion
//!   accepts, and as CI smoke runs do) executes each routine exactly once
//!   and skips timing.
//! * Any other positional argument acts as a substring filter on
//!   `group/name` ids, mirroring criterion's filter behaviour. Known
//!   limitation: value-taking flags of the real criterion
//!   (e.g. `--sample-size 10`) are not understood — the flag is ignored
//!   and its value is treated as a filter, which typically matches
//!   nothing. Pass only filters and/or `--test`.
//! * Reports are printed as `group/name  median  mean  (N samples)` lines.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level handle; collects CLI configuration shared by all groups.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds a handle from the process arguments (`--test`, filters).
    pub fn from_args() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass through that we can ignore.
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    /// Compatibility no-op (the real API reconfigures from args here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Prints a final summary (no-op in the shim; `criterion_main!` calls it).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine given to `iter`.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a warm-up estimate sizes the per-sample iteration
    /// count so each sample runs long enough to be measurable, then
    /// `sample_size` samples are collected (or one bare call in
    /// `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: find how long one call takes.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(100));
        let per_sample = budget / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        let deadline = Instant::now() + budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("{id:<48} ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<48} (no samples collected)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<48} median {:>12?}  mean {:>12?}  ({} samples)",
            median,
            mean,
            sorted.len()
        );
    }
}

/// Mirrors criterion's `criterion_group!`: defines a function running the
/// listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors criterion's `criterion_main!`: defines `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            samples: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }
}
