//! Registry, span, JSON, event-schema, and scrape-endpoint tests. Every
//! test enables telemetry (the flag is process-global; the disabled path
//! is exercised by the separate `zero_alloc` binary).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use fda_obs::json;
use fda_obs::metrics::{bucket_index, bucket_upper_bound};
use fda_obs::{DropRecord, Json, ManualClock, MembershipRecord, RoundEvent, RunEvent};

#[test]
fn counter_and_gauge_basics() {
    fda_obs::set_enabled(true);
    let c = fda_obs::registry().counter("test_basic_counter");
    c.add(3);
    c.inc();
    assert_eq!(c.get(), 4);
    // Same name returns the same handle.
    let c2 = fda_obs::registry().counter("test_basic_counter");
    assert!(std::ptr::eq(c, c2));

    let g = fda_obs::registry().gauge("test_basic_gauge");
    g.set(-7);
    assert_eq!(g.get(), -7);
}

#[test]
fn macro_handles_are_cached() {
    fda_obs::set_enabled(true);
    let a = fda_obs::counter!("test_macro_counter");
    let b = fda_obs::counter!("test_macro_counter");
    assert!(std::ptr::eq(a, b));
}

#[test]
fn concurrent_counter_and_histogram_updates_are_exact() {
    fda_obs::set_enabled(true);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let c = fda_obs::registry().counter("test_concurrent_counter");
    let h = fda_obs::registry().histogram("test_concurrent_hist");
    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    c.add(1);
                    h.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(c.get(), n);
    assert_eq!(h.count(), n);
    // Sum of 0..n
    assert_eq!(h.sum(), n * (n - 1) / 2);
    let bucket_total: u64 = (0..fda_obs::HIST_BUCKETS).map(|i| h.bucket(i)).sum();
    assert_eq!(bucket_total, n);
}

#[test]
fn histogram_bucket_boundaries_are_exact() {
    // bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for k in 1..62 {
        let v = 1u64 << k;
        assert_eq!(bucket_index(v), k + 1, "2^{k} lower edge");
        assert_eq!(bucket_index(v - 1), k, "2^{k}-1 upper edge");
    }
    // Saturation into the final bucket.
    assert_eq!(bucket_index(u64::MAX), fda_obs::HIST_BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 63), fda_obs::HIST_BUCKETS - 1);
    // Upper bounds agree with the index function: a value equal to the
    // bound lands in the bucket, bound+1 does not.
    for i in 1..fda_obs::HIST_BUCKETS - 1 {
        let ub = bucket_upper_bound(i);
        assert_eq!(bucket_index(ub), i);
        assert_eq!(bucket_index(ub + 1), i + 1);
    }
}

#[test]
fn span_records_elapsed_micros_with_manual_clock() {
    fda_obs::set_enabled(true);
    let h = fda_obs::registry().histogram("test_span_hist");
    let clock = ManualClock::new();
    {
        let _span = h.span_with(&clock);
        clock.advance_us(1500);
    }
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 1500);
    assert_eq!(h.bucket(bucket_index(1500)), 1);
}

#[test]
fn json_parse_and_accessors() {
    let v = json::parse(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e3}"#).unwrap();
    assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
    let arr = v.get("b").unwrap().as_arr().unwrap();
    assert_eq!(arr[0].as_bool(), Some(true));
    assert_eq!(arr[1], Json::Null);
    assert_eq!(arr[2].as_str(), Some("x\n"));
    assert_eq!(v.get("c").unwrap().as_f64(), Some(-2500.0));
    assert!(json::parse("{").is_err());
    assert!(json::parse("[1,]").is_err());
    assert!(json::parse("\"unterminated").is_err());
}

#[test]
fn json_number_literals_survive_round_trip() {
    let src = r#"{"a":1.2300,"b":1e9,"c":-0.5,"d":42}"#;
    let v = json::parse(src).unwrap();
    assert_eq!(v.to_string(), src);
}

fn sample_round_event() -> RoundEvent {
    RoundEvent {
        source: "net".into(),
        round: 3,
        epoch: 2,
        alive: 3,
        decision: true,
        estimate: 0.04321,
        theta: 0.02,
        codec: "uniform8".into(),
        state_bytes: 1024,
        model_bytes: 247_640,
        charged_bytes: 300_000,
        measured_bytes: 300_000,
        deposit_us: vec![(0, 120), (1, 95), (3, 4000)],
        drops: vec![DropRecord {
            worker: 2,
            reason: "timeout".into(),
        }],
    }
}

#[test]
fn round_event_round_trip_is_byte_identical() {
    let ev = sample_round_event();
    let line = ev.to_json().to_string();
    let parsed = json::parse(&line).unwrap();
    let ev2 = RoundEvent::from_json(&parsed).unwrap();
    assert_eq!(ev, ev2);
    assert_eq!(ev2.to_json().to_string(), line);
}

#[test]
fn run_event_round_trip_is_byte_identical() {
    let ev = RunEvent {
        source: "net".into(),
        workers: 4,
        variant: "sketch".into(),
        theta: 0.02,
        steps: 20,
        syncs: 5,
        decisions: "00101".into(),
        codec: "dense32".into(),
        charged_bytes: 123_456,
        measured_payload_bytes: 123_456,
        raw_tx_bytes: 200_000,
        raw_rx_bytes: 199_000,
        survivors: vec![0, 1, 3],
        membership: vec![
            MembershipRecord {
                round: 0,
                worker: 0,
                event: "join".into(),
            },
            MembershipRecord {
                round: 3,
                worker: 2,
                event: "drop-timeout".into(),
            },
        ],
    };
    let line = ev.to_json().to_string();
    let parsed = json::parse(&line).unwrap();
    let ev2 = RunEvent::from_json(&parsed).unwrap();
    assert_eq!(ev, ev2);
    assert_eq!(ev2.to_json().to_string(), line);
    assert!(parsed
        .get("measured_equals_charged")
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn non_finite_estimate_serializes_as_null_and_parses_as_nan() {
    let mut ev = sample_round_event();
    ev.estimate = f32::NAN;
    let line = ev.to_json().to_string();
    assert!(line.contains("\"estimate\":null"));
    let ev2 = RoundEvent::from_json(&json::parse(&line).unwrap()).unwrap();
    assert!(ev2.estimate.is_nan());
}

#[test]
fn jsonl_writer_and_reader_round_trip() {
    let path = std::env::temp_dir().join(format!("fda_obs_jsonl_{}.jsonl", std::process::id()));
    {
        let mut w = fda_obs::JsonlWriter::create(&path).unwrap();
        w.write(&sample_round_event().to_json()).unwrap();
        w.write(&Json::Obj(vec![("x".into(), Json::u64(1))]))
            .unwrap();
    }
    let lines = fda_obs::event::read_jsonl(&path).unwrap();
    assert_eq!(lines.len(), 2);
    assert_eq!(
        RoundEvent::from_json(&lines[0]).unwrap(),
        sample_round_event()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn scrape_endpoint_serves_prometheus_text() {
    fda_obs::set_enabled(true);
    let c = fda_obs::registry().counter("test_scrape_counter");
    c.add(41);
    let h = fda_obs::registry().histogram("test_scrape_hist");
    h.record(5);
    h.record(900);

    let server = fda_obs::MetricsServer::bind("127.0.0.1:0").unwrap();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();

    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("# TYPE test_scrape_counter counter"));
    assert!(response.contains("test_scrape_counter 41"));
    assert!(response.contains("# TYPE test_scrape_hist histogram"));
    assert!(response.contains("test_scrape_hist_count 2"));
    assert!(response.contains("test_scrape_hist_sum 905"));
    assert!(response.contains("test_scrape_hist_bucket{le=\"+Inf\"} 2"));
}
