//! Disabled-path contract: with telemetry off (the default), metric
//! updates and spans perform zero heap allocations and store nothing.
//! Lives in its own test binary so the counting global allocator and the
//! process-global enable flag are isolated from the other suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_allocates_nothing_and_records_nothing() {
    assert!(!fda_obs::enabled(), "telemetry must default to off");

    // Registration is the only allocating operation; do it up front.
    let c = fda_obs::registry().counter("zero_alloc_counter");
    let g = fda_obs::registry().gauge("zero_alloc_gauge");
    let h = fda_obs::registry().histogram("zero_alloc_hist");

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..1000 {
        c.add(7);
        g.set(i);
        h.record(i as u64);
        let span = h.span();
        assert_eq!(span.elapsed_ns(), 0);
        drop(span);
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(after - before, 0, "disabled path must not allocate");
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);

    // Flipping the flag on makes the same handles live.
    fda_obs::set_enabled(true);
    c.add(2);
    h.record(3);
    assert_eq!(c.get(), 2);
    assert_eq!(h.count(), 1);
    fda_obs::set_enabled(false);
}
