//! Process-global metrics: counters, gauges, and log₂-bucket histograms.
//!
//! Handles are `&'static` (leaked on registration, once per name for the
//! process lifetime) so hot paths hold a direct pointer and never take the
//! registry lock. Every mutation is gated on the global enable flag; the
//! disabled path is a relaxed load + branch and performs no stores and no
//! allocation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock::{self, Clock};
use crate::span::Span;

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket additionally absorbs
/// everything above its lower bound.
pub const HIST_BUCKETS: usize = 64;

/// Monotonically increasing u64 counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicI64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn set(&self, value: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed log₂-bucket histogram of u64 samples (by convention microseconds
/// for span timings, bytes for payload sizes).
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`, clamped
/// to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Start a span that records elapsed microseconds into this histogram
    /// when dropped. When telemetry is disabled the span is inert (no clock
    /// read, no allocation).
    pub fn span(&'static self) -> Span<'static> {
        self.span_with(clock::monotonic())
    }

    /// Like [`Histogram::span`] with an explicit clock (for tests).
    pub fn span_with<'c>(&'static self, clock: &'c dyn Clock) -> Span<'c> {
        Span::start(self, clock)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Named metric store. `counter`/`gauge`/`histogram` get-or-register under a
/// mutex and hand back `&'static` handles; see the [`crate::counter!`]-style
/// macros for call-site caching.
pub struct Registry {
    metrics: Mutex<Vec<(&'static str, Metric)>>,
}

/// A point-in-time copy of every registered metric, for rendering.
pub enum MetricSnapshot {
    Counter {
        name: &'static str,
        value: u64,
    },
    Gauge {
        name: &'static str,
        value: i64,
    },
    Histogram {
        name: &'static str,
        buckets: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

impl Registry {
    pub(crate) fn new() -> Self {
        Self {
            metrics: Mutex::new(Vec::new()),
        }
    }

    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut metrics = self.metrics.lock().unwrap();
        for (n, m) in metrics.iter() {
            if *n == name {
                match m {
                    Metric::Counter(c) => return c,
                    _ => panic!("metric {name:?} already registered with a different type"),
                }
            }
        }
        let handle: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        metrics.push((name, Metric::Counter(handle)));
        handle
    }

    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        for (n, m) in metrics.iter() {
            if *n == name {
                match m {
                    Metric::Gauge(g) => return g,
                    _ => panic!("metric {name:?} already registered with a different type"),
                }
            }
        }
        let handle: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
        metrics.push((name, Metric::Gauge(handle)));
        handle
    }

    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        for (n, m) in metrics.iter() {
            if *n == name {
                match m {
                    Metric::Histogram(h) => return h,
                    _ => panic!("metric {name:?} already registered with a different type"),
                }
            }
        }
        let handle: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
        metrics.push((name, Metric::Histogram(handle)));
        handle
    }

    /// Snapshot every metric in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(_, m)| match m {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: c.name,
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSnapshot::Gauge {
                    name: g.name,
                    value: g.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: h.name,
                    buckets: (0..HIST_BUCKETS).map(|i| h.bucket(i)).collect(),
                    sum: h.sum(),
                    count: h.count(),
                },
            })
            .collect()
    }
}
