//! Injectable monotonic clock so span timings are testable without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond source. Spans take `&dyn Clock` so tests can
/// substitute [`ManualClock`] and assert exact recorded durations.
pub trait Clock: Send + Sync {
    fn now_ns(&self) -> u64;
}

/// Wall clock: nanoseconds since the first observation in this process.
pub struct MonotonicClock;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        epoch().elapsed().as_nanos() as u64
    }
}

/// The process-global monotonic clock used by `Histogram::span()`.
pub fn monotonic() -> &'static MonotonicClock {
    static CLOCK: MonotonicClock = MonotonicClock;
    &CLOCK
}

/// Test clock: time advances only when told to.
#[derive(Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self {
            ns: AtomicU64::new(0),
        }
    }

    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::SeqCst);
    }

    pub fn advance_us(&self, delta: u64) {
        self.advance_ns(delta * 1_000);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}
