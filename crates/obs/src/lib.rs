//! `fda_obs` — zero-dependency observability for the FDA stack.
//!
//! Three layers, all optional at runtime:
//!
//! 1. **Metrics registry** ([`Registry`]): process-global named counters,
//!    gauges, and log₂-bucket histograms backed by relaxed atomics. Every
//!    update is gated on one relaxed [`AtomicBool`] load, so the disabled
//!    path is a predictable branch that allocates nothing and never touches
//!    model arithmetic — bit-identity invariants (`golden_trajectory`,
//!    `net_parity`, `codec_parity`) hold with telemetry on or off because
//!    telemetry only *reads* timings and byte counts, never values.
//! 2. **Spans** ([`span::Span`]): RAII guards that record elapsed
//!    microseconds into a histogram on drop. The clock is behind the
//!    [`clock::Clock`] trait so tests can drive time deterministically.
//! 3. **Events** ([`event`]): a versioned JSONL schema for per-round and
//!    end-of-run records, identical between the simulator and the socket
//!    transport, plus a Prometheus text-exposition scrape endpoint
//!    ([`scrape`]) for live inspection of the registry.
//!
//! Telemetry is **off by default**; `set_enabled(true)` turns the whole
//! layer on. Handles may be registered while disabled (registration is the
//! only allocating operation) and update cheaply in either state.

pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
pub mod scrape;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{
    read_jsonl, DropRecord, JsonlWriter, MembershipRecord, RoundEvent, RunEvent, SCHEMA_VERSION,
};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, Registry, HIST_BUCKETS};
pub use scrape::MetricsServer;
pub use span::Span;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable telemetry. Cheap; callable at any time.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently enabled (one relaxed atomic load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Resolve (and cache at the call site) a `&'static Counter` by name.
///
/// The `OnceLock` makes the steady-state cost of a hot-path counter update
/// one pointer load + one relaxed atomic add, with no registry lookup.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolve (and cache at the call site) a `&'static Gauge` by name.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolve (and cache at the call site) a `&'static Histogram` by name.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}
