//! Prometheus text-exposition rendering of the registry, served over a
//! plain TCP listener (`--metrics-addr` on `fda_node`). One background
//! thread, nonblocking accept loop, one response per connection — enough
//! for a scraper, with zero dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{bucket_upper_bound, MetricSnapshot, HIST_BUCKETS};

/// Render every registered metric in Prometheus text exposition format
/// (version 0.0.4). Histogram buckets are emitted cumulatively with
/// power-of-two `le` bounds.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for m in crate::registry().snapshot() {
        match m {
            MetricSnapshot::Counter { name, value } => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
            }
            MetricSnapshot::Gauge { name, value } => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
            }
            MetricSnapshot::Histogram {
                name,
                buckets,
                sum,
                count,
            } => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, c) in buckets.iter().enumerate() {
                    cumulative += c;
                    // Skip interior empty buckets to keep scrapes small;
                    // always emit the first and last for shape.
                    if *c == 0 && i != 0 && i != HIST_BUCKETS - 1 {
                        continue;
                    }
                    let le = if i == HIST_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        bucket_upper_bound(i).to_string()
                    };
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{name}_sum {sum}\n{name}_count {count}\n"));
            }
        }
    }
    out
}

/// Background scrape endpoint. Binds immediately; serves until dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving scrapes on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fda-obs-scrape".into())
            .spawn(move || serve(listener, stop_flag))
            .expect("spawn scrape thread");
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut conn, _)) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = conn.set_write_timeout(Some(Duration::from_millis(500)));
                // Drain whatever request line arrives; respond regardless
                // of path so `curl addr` and Prometheus both work.
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let body = render_prometheus();
                let response = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = conn.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
