//! RAII span timing: a guard that records elapsed microseconds into a
//! histogram when dropped. Disabled telemetry yields an inert guard that
//! never reads the clock.

use crate::clock::Clock;
use crate::metrics::Histogram;

pub struct Span<'c> {
    active: Option<(&'static Histogram, &'c dyn Clock, u64)>,
}

impl<'c> Span<'c> {
    pub(crate) fn start(hist: &'static Histogram, clock: &'c dyn Clock) -> Self {
        if crate::enabled() {
            let t0 = clock.now_ns();
            Span {
                active: Some((hist, clock, t0)),
            }
        } else {
            Span { active: None }
        }
    }

    /// Elapsed nanoseconds so far (0 when telemetry is disabled).
    pub fn elapsed_ns(&self) -> u64 {
        match self.active {
            Some((_, clock, t0)) => clock.now_ns().saturating_sub(t0),
            None => 0,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((hist, clock, t0)) = self.active.take() {
            let elapsed_us = clock.now_ns().saturating_sub(t0) / 1_000;
            hist.record(elapsed_us);
        }
    }
}
