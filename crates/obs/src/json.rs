//! Minimal JSON value, writer, and parser — enough for the telemetry
//! schema, with one deliberate property: numbers are stored as their
//! source *literal* (`Json::Num(String)`), so parse → re-serialize is
//! byte-identical. Floats we produce ourselves use Rust's shortest
//! round-trip formatting (`{:?}`), which is also stable under re-parse.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A JSON number kept as its literal text.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key/value list — serialization preserves
    /// insertion order, which the byte-identical round-trip relies on.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    pub fn i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// Finite floats serialize via shortest round-trip formatting;
    /// non-finite values have no JSON representation and become `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    pub fn f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(lit) => out.push_str(lit),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact single-line serialization (no spaces), suitable for JSONL.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(pos: usize, msg: &str) -> ParseError {
    ParseError {
        pos,
        msg: msg.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed by the schema;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(*pos, "expected digits"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(*pos, "expected fraction digits"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(*pos, "expected exponent digits"));
        }
    }
    let lit = std::str::from_utf8(&bytes[start..*pos])
        .unwrap()
        .to_string();
    Ok(Json::Num(lit))
}
