//! Versioned telemetry event schema, emitted as JSONL.
//!
//! Two record kinds share one stream: a `"round"` event per FDA round and
//! one `"run"` summary event at the end. The simulator and the socket
//! transport emit the *same* schema (same keys, same JSON types, same
//! order) so downstream tooling never branches on the source; the `source`
//! field is the only difference. Bump [`SCHEMA_VERSION`] on any key
//! addition, removal, or type change.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::json::{self, Json};

/// Version stamped into every event as `"v"`.
pub const SCHEMA_VERSION: u64 = 1;

/// A worker dropped from a round, with the coordinator's drop bucket
/// (`"timeout"`, `"disconnect"`, `"protocol"`).
#[derive(Debug, Clone, PartialEq)]
pub struct DropRecord {
    pub worker: u32,
    pub reason: String,
}

/// One FDA round as observed at the aggregation point.
///
/// Byte fields follow the accounting convention shared by the simulator
/// and the coordinator: `state_bytes`/`model_bytes` are this round's
/// charged-equivalent payload bytes by frame kind, while `charged_bytes`
/// and `measured_bytes` are cumulative run totals after the round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEvent {
    /// `"sim"` or `"net"`.
    pub source: String,
    pub round: u32,
    /// Membership epoch (constant 1 in the simulator).
    pub epoch: u32,
    /// Workers participating in this round's reduce.
    pub alive: u32,
    /// Whether `H(S̄) > Θ` triggered a model sync.
    pub decision: bool,
    /// The variance estimate `H(S̄)` (serialized as `null` if non-finite).
    pub estimate: f32,
    pub theta: f32,
    pub codec: String,
    /// This round's state-frame payload bytes (accounting convention).
    pub state_bytes: u64,
    /// This round's model-frame payload bytes (0 on non-sync rounds).
    pub model_bytes: u64,
    /// Cumulative charged bytes after this round.
    pub charged_bytes: u64,
    /// Cumulative measured payload bytes after this round (the simulator
    /// reports its charged total here; net runs report socket-measured).
    pub measured_bytes: u64,
    /// `[worker, microseconds]` deposit latency pairs (empty in the
    /// simulator, which has no deposits).
    pub deposit_us: Vec<(u32, u64)>,
    /// Workers dropped during this round.
    pub drops: Vec<DropRecord>,
}

impl RoundEvent {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".into(), Json::u64(SCHEMA_VERSION)),
            ("kind".into(), Json::str("round")),
            ("source".into(), Json::str(&self.source)),
            ("round".into(), Json::u64(self.round as u64)),
            ("epoch".into(), Json::u64(self.epoch as u64)),
            ("alive".into(), Json::u64(self.alive as u64)),
            ("decision".into(), Json::Bool(self.decision)),
            ("estimate".into(), Json::f32(self.estimate)),
            ("theta".into(), Json::f32(self.theta)),
            ("codec".into(), Json::str(&self.codec)),
            ("state_bytes".into(), Json::u64(self.state_bytes)),
            ("model_bytes".into(), Json::u64(self.model_bytes)),
            ("charged_bytes".into(), Json::u64(self.charged_bytes)),
            ("measured_bytes".into(), Json::u64(self.measured_bytes)),
            (
                "deposit_us".into(),
                Json::Arr(
                    self.deposit_us
                        .iter()
                        .map(|(w, us)| Json::Arr(vec![Json::u64(*w as u64), Json::u64(*us)]))
                        .collect(),
                ),
            ),
            (
                "drops".into(),
                Json::Arr(
                    self.drops
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("worker".into(), Json::u64(d.worker as u64)),
                                ("reason".into(), Json::str(&d.reason)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<RoundEvent, String> {
        expect_kind(v, "round")?;
        let deposit_us = req_arr(v, "deposit_us")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or("deposit_us entry must be an array")?;
                if pair.len() != 2 {
                    return Err("deposit_us entry must be [worker, us]".to_string());
                }
                let w = pair[0]
                    .as_u64()
                    .ok_or("deposit_us worker must be a number")?;
                let us = pair[1]
                    .as_u64()
                    .ok_or("deposit_us value must be a number")?;
                Ok((w as u32, us))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let drops = req_arr(v, "drops")?
            .iter()
            .map(|d| {
                Ok(DropRecord {
                    worker: req_u64(d, "worker")? as u32,
                    reason: req_str(d, "reason")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RoundEvent {
            source: req_str(v, "source")?,
            round: req_u64(v, "round")? as u32,
            epoch: req_u64(v, "epoch")? as u32,
            alive: req_u64(v, "alive")? as u32,
            decision: req_bool(v, "decision")?,
            estimate: req_f32_or_null(v, "estimate")?,
            theta: req_f32_or_null(v, "theta")?,
            codec: req_str(v, "codec")?,
            state_bytes: req_u64(v, "state_bytes")?,
            model_bytes: req_u64(v, "model_bytes")?,
            charged_bytes: req_u64(v, "charged_bytes")?,
            measured_bytes: req_u64(v, "measured_bytes")?,
            deposit_us,
            drops,
        })
    }
}

/// A membership change over the run (`"join"`, `"rejoin"`,
/// `"drop-timeout"`, `"drop-disconnect"`, `"drop-protocol"`).
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipRecord {
    pub round: u32,
    pub worker: u32,
    pub event: String,
}

/// End-of-run summary — the schema'd replacement for `NetReport`'s
/// hand-rolled JSON printing, shared verbatim by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEvent {
    pub source: String,
    pub workers: u32,
    pub variant: String,
    pub theta: f32,
    pub steps: u32,
    pub syncs: u64,
    /// One `'0'`/`'1'` character per round.
    pub decisions: String,
    pub codec: String,
    pub charged_bytes: u64,
    pub measured_payload_bytes: u64,
    pub raw_tx_bytes: u64,
    pub raw_rx_bytes: u64,
    pub survivors: Vec<u32>,
    pub membership: Vec<MembershipRecord>,
}

impl RunEvent {
    pub fn measured_equals_charged(&self) -> bool {
        self.measured_payload_bytes == self.charged_bytes
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".into(), Json::u64(SCHEMA_VERSION)),
            ("kind".into(), Json::str("run")),
            ("source".into(), Json::str(&self.source)),
            ("workers".into(), Json::u64(self.workers as u64)),
            ("variant".into(), Json::str(&self.variant)),
            ("theta".into(), Json::f32(self.theta)),
            ("steps".into(), Json::u64(self.steps as u64)),
            ("syncs".into(), Json::u64(self.syncs)),
            ("decisions".into(), Json::str(&self.decisions)),
            ("codec".into(), Json::str(&self.codec)),
            ("charged_bytes".into(), Json::u64(self.charged_bytes)),
            (
                "measured_payload_bytes".into(),
                Json::u64(self.measured_payload_bytes),
            ),
            ("raw_tx_bytes".into(), Json::u64(self.raw_tx_bytes)),
            ("raw_rx_bytes".into(), Json::u64(self.raw_rx_bytes)),
            (
                "measured_equals_charged".into(),
                Json::Bool(self.measured_equals_charged()),
            ),
            (
                "survivors".into(),
                Json::Arr(
                    self.survivors
                        .iter()
                        .map(|w| Json::u64(*w as u64))
                        .collect(),
                ),
            ),
            (
                "membership".into(),
                Json::Arr(
                    self.membership
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("round".into(), Json::u64(m.round as u64)),
                                ("worker".into(), Json::u64(m.worker as u64)),
                                ("event".into(), Json::str(&m.event)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<RunEvent, String> {
        expect_kind(v, "run")?;
        let survivors = req_arr(v, "survivors")?
            .iter()
            .map(|w| {
                w.as_u64()
                    .map(|w| w as u32)
                    .ok_or("survivor must be a number")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let membership = req_arr(v, "membership")?
            .iter()
            .map(|m| {
                Ok(MembershipRecord {
                    round: req_u64(m, "round")? as u32,
                    worker: req_u64(m, "worker")? as u32,
                    event: req_str(m, "event")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunEvent {
            source: req_str(v, "source")?,
            workers: req_u64(v, "workers")? as u32,
            variant: req_str(v, "variant")?,
            theta: req_f32_or_null(v, "theta")?,
            steps: req_u64(v, "steps")? as u32,
            syncs: req_u64(v, "syncs")?,
            decisions: req_str(v, "decisions")?,
            codec: req_str(v, "codec")?,
            charged_bytes: req_u64(v, "charged_bytes")?,
            measured_payload_bytes: req_u64(v, "measured_payload_bytes")?,
            raw_tx_bytes: req_u64(v, "raw_tx_bytes")?,
            raw_rx_bytes: req_u64(v, "raw_rx_bytes")?,
            survivors,
            membership,
        })
    }
}

fn expect_kind(v: &Json, kind: &str) -> Result<(), String> {
    let got_v = req_u64(v, "v")?;
    if got_v != SCHEMA_VERSION {
        return Err(format!("unsupported schema version {got_v}"));
    }
    let got_kind = req_str(v, "kind")?;
    if got_kind != kind {
        return Err(format!("expected kind {kind:?}, got {got_kind:?}"));
    }
    Ok(())
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a u64"))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a bool"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    req(v, key)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn req_f32_or_null(v: &Json, key: &str) -> Result<f32, String> {
    match req(v, key)? {
        Json::Null => Ok(f32::NAN),
        other => other
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| format!("field {key:?} must be a number or null")),
    }
}

/// Buffered JSONL sink; flushes on drop.
pub struct JsonlWriter {
    out: BufWriter<File>,
}

impl JsonlWriter {
    pub fn create(path: &Path) -> io::Result<JsonlWriter> {
        Ok(JsonlWriter {
            out: BufWriter::new(File::create(path)?),
        })
    }

    pub fn write(&mut self, event: &Json) -> io::Result<()> {
        self.out.write_all(event.to_string().as_bytes())?;
        self.out.write_all(b"\n")
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Read every line of a JSONL file as parsed JSON (for tests and CI
/// validation). Fails on the first malformed line.
pub fn read_jsonl(path: &Path) -> io::Result<Vec<Json>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        out.push(v);
    }
    Ok(out)
}
