//! Process-wide allocator tuning for the training hot path.
//!
//! Layer outputs are ~100 KiB matrices allocated and freed every step. With
//! glibc's default `M_TRIM_THRESHOLD` (128 KiB), freeing one of them often
//! shrinks the heap, so the very next allocation grows it again and takes a
//! page-fault storm re-zeroing fresh pages — measured at ~50 µs per
//! pool/ReLU backward on an otherwise sub-15 µs operation. Telling malloc
//! to retain freed memory makes steady-state training allocation-cheap
//! without touching any call site.
//!
//! On non-glibc targets this is a no-op, and the default `retain-heap`
//! cargo feature can be disabled by embedders that need freed memory
//! returned to the OS mid-process.

use std::sync::Once;

static INIT: Once = Once::new();

/// Configures the process allocator to retain freed memory (idempotent,
/// thread-safe, called lazily from hot-path constructors).
pub fn retain_heap() {
    INIT.call_once(|| {
        #[cfg(all(target_os = "linux", target_env = "gnu", feature = "retain-heap"))]
        unsafe {
            extern "C" {
                fn mallopt(param: i32, value: i32) -> i32;
            }
            // M_TRIM_THRESHOLD = -1: never give heap pages back mid-run.
            mallopt(-1, i32::MAX);
            // M_TOP_PAD = -2: grow the heap in 16 MiB strides to amortize
            // sbrk page faults.
            mallopt(-2, 16 * 1024 * 1024);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_heap_is_idempotent() {
        retain_heap();
        retain_heap();
    }
}
