//! Process-wide allocator tuning for the training hot path.
//!
//! Layer outputs are ~100 KiB matrices allocated and freed every step. With
//! glibc's default `M_TRIM_THRESHOLD` (128 KiB), freeing one of them often
//! shrinks the heap, so the very next allocation grows it again and takes a
//! page-fault storm re-zeroing fresh pages — measured at ~50 µs per
//! pool/ReLU backward on an otherwise sub-15 µs operation. Telling malloc
//! to retain freed memory makes steady-state training allocation-cheap
//! without touching any call site.
//!
//! On non-glibc targets this is a no-op, and the default `retain-heap`
//! cargo feature can be disabled by embedders that need freed memory
//! returned to the OS mid-process.

use std::sync::Once;

static INIT: Once = Once::new();

/// Configures the process allocator to retain freed memory (idempotent,
/// thread-safe, called lazily from hot-path constructors).
pub fn retain_heap() {
    INIT.call_once(|| {
        #[cfg(all(target_os = "linux", target_env = "gnu", feature = "retain-heap"))]
        unsafe {
            extern "C" {
                fn mallopt(param: i32, value: i32) -> i32;
            }
            // M_TRIM_THRESHOLD = -1: never give heap pages back mid-run.
            mallopt(-1, i32::MAX);
            // M_TOP_PAD = -2: grow the heap in 16 MiB strides to amortize
            // sbrk page faults.
            mallopt(-2, 16 * 1024 * 1024);
        }
    });
}

// ---------------------------------------------------------------------------
// Cache-line-aligned f32 buffers
// ---------------------------------------------------------------------------

/// A growable `f32` buffer whose allocation is 64-byte aligned.
///
/// `Vec<f32>` only guarantees 4-byte alignment, so the GEMM packing panels
/// it used to back could straddle cache lines at their base; the SIMD
/// kernel layer wants panel bases on cache-line (and AVX-512 vector)
/// boundaries. Contents are **not** preserved across growth — the panels
/// are fully repacked before every read, so preserving old bytes would be
/// pure memcpy waste. Grown regions are zeroed.
#[derive(Debug, Default)]
pub struct AlignedBuf {
    ptr: Option<std::ptr::NonNull<f32>>,
    cap: usize,
}

// The buffer owns plain f32s; moving it between threads is safe.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    /// Guaranteed base alignment in bytes (one cache line, one zmm lane).
    pub const ALIGN: usize = 64;

    /// An empty buffer (no allocation until first use).
    pub fn new() -> AlignedBuf {
        AlignedBuf::default()
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        // Layout::array is overflow-checked: an absurd capacity fails here
        // instead of wrapping the byte size and handing out a huge slice
        // over a tiny allocation.
        std::alloc::Layout::array::<f32>(cap)
            .and_then(|l| l.align_to(Self::ALIGN))
            .expect("AlignedBuf: layout overflow")
    }

    /// Returns a zero-initialized-on-growth slice of exactly `n` elements,
    /// reallocating (aligned, without preserving contents) only when the
    /// capacity is exceeded — the capacity-keyed scratch idiom.
    pub fn ensure(&mut self, n: usize) -> &mut [f32] {
        if n > self.cap {
            unsafe {
                if let Some(p) = self.ptr.take() {
                    std::alloc::dealloc(p.as_ptr() as *mut u8, Self::layout(self.cap));
                }
                let raw = std::alloc::alloc_zeroed(Self::layout(n)) as *mut f32;
                let p = std::ptr::NonNull::new(raw)
                    .unwrap_or_else(|| std::alloc::handle_alloc_error(Self::layout(n)));
                debug_assert_eq!(
                    p.as_ptr() as usize % Self::ALIGN,
                    0,
                    "AlignedBuf: allocator returned a misaligned block"
                );
                self.ptr = Some(p);
                self.cap = n;
            }
        }
        match self.ptr {
            Some(p) => unsafe { std::slice::from_raw_parts_mut(p.as_ptr(), n) },
            // n == 0 and nothing allocated yet.
            None => &mut [],
        }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if let Some(p) = self.ptr {
            unsafe { std::alloc::dealloc(p.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_heap_is_idempotent() {
        retain_heap();
        retain_heap();
    }

    #[test]
    fn aligned_buf_is_64_byte_aligned_and_reuses() {
        let mut buf = AlignedBuf::new();
        assert_eq!(buf.ensure(0).len(), 0);
        let s = buf.ensure(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.as_ptr() as usize % AlignedBuf::ALIGN, 0);
        assert!(s.iter().all(|&v| v == 0.0), "fresh region must be zeroed");
        s.iter_mut().for_each(|v| *v = 1.0);
        let ptr = buf.ensure(100).as_ptr();
        // Shrink within capacity: same allocation.
        let s = buf.ensure(40);
        assert_eq!(s.len(), 40);
        assert_eq!(s.as_ptr(), ptr, "within-capacity ensure must not realloc");
        assert_eq!(buf.capacity(), 100);
        // Growth realigns and zero-fills (contents not preserved).
        let s = buf.ensure(1000);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.as_ptr() as usize % AlignedBuf::ALIGN, 0);
        assert_eq!(buf.capacity(), 1000);
    }
}
